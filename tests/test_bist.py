"""Tests for the BIST hardware model: memory, counters, controller, MISR,
cost model and the full session."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bist.controller import ExpansionController
from repro.bist.cost import BistCostModel, CostComparison
from repro.bist.counters import RepetitionCounter, UpDownCounter
from repro.bist.memory import TestMemory
from repro.bist.misr import Misr
from repro.bist.session import BistSession
from repro.core.ops import ExpansionConfig, expand
from repro.core.sequence import TestSequence
from repro.errors import HardwareModelError
from repro.logic.values import ONE, X, ZERO

bits = st.integers(min_value=0, max_value=1)


class TestMemoryModel:
    def test_load_and_read(self):
        memory = TestMemory(3, 4)
        cycles = memory.load(TestSequence.from_strings(["010", "111"]))
        assert cycles == 2
        assert memory.read(0) == (0, 1, 0)
        assert memory.read(1) == (1, 1, 1)
        assert memory.used_words == 2

    def test_capacity_enforced(self):
        memory = TestMemory(2, 1)
        with pytest.raises(HardwareModelError):
            memory.load(TestSequence.from_strings(["00", "11"]))

    def test_word_width_enforced(self):
        memory = TestMemory(2, 4)
        with pytest.raises(HardwareModelError):
            memory.load(TestSequence.from_strings(["000"]))

    def test_load_cycles_accumulate(self):
        memory = TestMemory(2, 4)
        memory.load(TestSequence.from_strings(["00", "01"]))
        memory.load(TestSequence.from_strings(["10"]))
        assert memory.load_cycles == 3

    def test_total_bits(self):
        assert TestMemory(4, 10).total_bits == 40

    def test_read_out_of_range(self):
        memory = TestMemory(2, 4)
        memory.load(TestSequence.from_strings(["00"]))
        with pytest.raises(HardwareModelError):
            memory.read(1)

    def test_invalid_construction(self):
        with pytest.raises(HardwareModelError):
            TestMemory(0, 4)
        with pytest.raises(HardwareModelError):
            TestMemory(4, 0)


class TestCounters:
    def test_up_counting_and_wrap(self):
        counter = UpDownCounter(3)
        counter.reset()
        values = [counter.value]
        wraps = []
        for _ in range(5):
            wraps.append(counter.step())
            values.append(counter.value)
        assert values[:4] == [0, 1, 2, 0]
        assert wraps[:3] == [False, False, True]

    def test_down_counting(self):
        counter = UpDownCounter(3)
        counter.set_mode(down=True)
        counter.reset()
        assert counter.value == 2
        assert counter.step() is False
        assert counter.value == 1
        counter.step()
        assert counter.step() is True  # wrap from 0
        assert counter.value == 2

    def test_single_entry_counter_wraps_every_step(self):
        counter = UpDownCounter(1)
        counter.reset()
        assert counter.step() is True
        assert counter.value == 0

    def test_repetition_counter(self):
        rep = RepetitionCounter(3)
        assert rep.step() is False
        assert rep.step() is False
        assert rep.step() is True
        assert rep.value == 0  # auto-reset after completion

    def test_invalid_construction(self):
        with pytest.raises(HardwareModelError):
            UpDownCounter(0)
        with pytest.raises(HardwareModelError):
            RepetitionCounter(0)


class TestController:
    def _hardware_expand(self, sequence: TestSequence, config: ExpansionConfig):
        memory = TestMemory(sequence.width, len(sequence))
        memory.load(sequence)
        return TestSequence(ExpansionController(memory, config).generate_all())

    def test_paper_table1_via_hardware(self):
        s = TestSequence.from_strings(["000", "110"])
        config = ExpansionConfig(repetitions=2)
        assert self._hardware_expand(s, config) == expand(s, config)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.lists(bits, min_size=3, max_size=3), min_size=1, max_size=6),
        st.integers(min_value=1, max_value=4),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )
    def test_hardware_equals_math_for_all_configs(
        self, rows, n, use_complement, use_shift, use_reverse
    ):
        sequence = TestSequence(rows)
        config = ExpansionConfig(
            repetitions=n,
            use_complement=use_complement,
            use_shift=use_shift,
            use_reverse=use_reverse,
        )
        assert self._hardware_expand(sequence, config) == expand(sequence, config)

    def test_expanded_length_prediction(self):
        s = TestSequence.from_strings(["01", "11", "00"])
        memory = TestMemory(2, 3)
        memory.load(s)
        controller = ExpansionController(memory, ExpansionConfig(repetitions=4))
        assert controller.expanded_length() == 8 * 4 * 3
        assert len(controller.generate_all()) == 8 * 4 * 3

    def test_empty_memory_rejected(self):
        memory = TestMemory(2, 3)
        controller = ExpansionController(memory, ExpansionConfig(2))
        with pytest.raises(HardwareModelError):
            list(controller.run())


class TestMisr:
    def test_deterministic(self):
        a = Misr(16, 2)
        b = Misr(16, 2)
        for _ in range(10):
            a.capture([ONE, ZERO])
            b.capture([ONE, ZERO])
        assert a.signature() == b.signature()

    def test_different_streams_differ(self):
        a = Misr(16, 2)
        b = Misr(16, 2)
        for _ in range(10):
            a.capture([ONE, ZERO])
            b.capture([ZERO, ONE])
        assert a.signature() != b.signature()

    def test_single_bit_flip_changes_signature(self):
        a = Misr(24, 3)
        b = Misr(24, 3)
        stream = [[ONE, ZERO, ONE], [ZERO, ZERO, ONE], [ONE, ONE, ZERO]]
        for row in stream:
            a.capture(list(row))
        stream[1][0] = ONE  # flip one observed bit
        for row in stream:
            b.capture(list(row))
        assert a.signature() != b.signature()

    def test_x_captured_as_zero(self):
        a = Misr(8, 1)
        b = Misr(8, 1)
        a.capture([X])
        b.capture([ZERO])
        assert a.signature() == b.signature()

    def test_reset(self):
        misr = Misr(8, 1)
        misr.capture([ONE])
        misr.reset()
        assert misr.signature() == 0
        assert misr.captures == 0

    def test_wide_bus_folding(self):
        misr = Misr(4, 10)  # more inputs than stages: folds mod length
        misr.capture([ONE] * 10)
        assert 0 <= misr.signature() < 16

    def test_input_count_checked(self):
        with pytest.raises(HardwareModelError):
            Misr(8, 2).capture([ONE])

    def test_invalid_construction(self):
        with pytest.raises(HardwareModelError):
            Misr(1, 1)
        with pytest.raises(HardwareModelError):
            Misr(8, 0)


class TestCostModel:
    def _model(self):
        return BistCostModel(
            num_inputs=4,
            t0_length=100,
            total_loaded_length=40,
            max_loaded_length=10,
            expansion=ExpansionConfig(repetitions=2),
        )

    def test_memory_figures(self):
        model = self._model()
        assert model.memory_bits == 40
        assert model.t0_memory_bits == 400
        assert model.memory_ratio == 0.1

    def test_load_figures(self):
        model = self._model()
        assert model.load_cycles == 40
        assert model.load_ratio == 0.4
        assert model.at_speed_cycles == 8 * 2 * 40

    def test_comparison(self):
        comparison = CostComparison(self._model())
        assert comparison.memory_saving_versus_t0 == pytest.approx(0.9)
        assert comparison.load_saving_versus_t0 == pytest.approx(0.6)
        assert comparison.at_speed_amplification == pytest.approx(16.0)


class TestSession:
    @pytest.fixture(scope="class")
    def session(self, s27, s27_t0):
        from repro.core.config import SelectionConfig
        from repro.core.scheme import LoadAndExpandScheme

        config = SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=7)
        run = LoadAndExpandScheme(s27).run(s27_t0, config)
        return BistSession(
            s27, run.selection.test_sequences(), config.expansion
        )

    def test_fault_free_device_passes(self, session):
        report = session.test_device(None)
        assert not report.fails
        assert not report.detected_without_compaction

    def test_all_covered_faults_flagged(self, session, s27_universe):
        flagged = 0
        for fault in s27_universe.faults():
            if session.test_device(fault).fails:
                flagged += 1
        assert flagged == 32

    def test_signature_agrees_with_po_compare_on_s27(self, session, s27_universe):
        for fault in list(s27_universe.faults())[:10]:
            report = session.test_device(fault)
            assert report.fails == report.detected_without_compaction

    def test_cycle_accounting(self, session):
        report = session.test_device(None)
        assert report.total_load_cycles == sum(v.loaded_length for v in report.verdicts)
        for verdict in report.verdicts:
            assert verdict.applied_length == 16 * verdict.loaded_length

    def test_cost_for_t0(self, session):
        cost = session.cost_for_t0(10)
        assert cost.t0_length == 10
        assert cost.load_ratio <= 1.0

    def test_empty_sequences_rejected(self, s27):
        with pytest.raises(HardwareModelError):
            BistSession(s27, [], ExpansionConfig(2))

    def test_golden_signatures_stable(self, session):
        assert session.golden_signatures() == session.golden_signatures()
