"""Tests for the fault-free sequential logic simulator."""

from __future__ import annotations

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.logic.values import ONE, X, ZERO
from repro.sim.logicsim import LogicSimulator


def _comb(gate_adder):
    builder = CircuitBuilder("c")
    builder.add_input("a")
    builder.add_input("b")
    gate_adder(builder)
    builder.add_output("y")
    return builder.build()


@pytest.mark.parametrize(
    "gate,table",
    [
        ("add_and", {(0, 0): ZERO, (0, 1): ZERO, (1, 0): ZERO, (1, 1): ONE}),
        ("add_nand", {(0, 0): ONE, (0, 1): ONE, (1, 0): ONE, (1, 1): ZERO}),
        ("add_or", {(0, 0): ZERO, (0, 1): ONE, (1, 0): ONE, (1, 1): ONE}),
        ("add_nor", {(0, 0): ONE, (0, 1): ZERO, (1, 0): ZERO, (1, 1): ZERO}),
        ("add_xor", {(0, 0): ZERO, (0, 1): ONE, (1, 0): ONE, (1, 1): ZERO}),
    ],
)
def test_two_input_gate_truth_tables(gate, table):
    circuit = _comb(lambda b: getattr(b, gate)("y", "a", "b"))
    simulator = LogicSimulator(circuit)
    for (a, b), expected in table.items():
        trace = simulator.run(TestSequence([[a, b]]))
        assert trace.po_values[0][0] is expected, (gate, a, b)


def test_not_and_buf():
    builder = CircuitBuilder("c")
    builder.add_input("a")
    builder.add_not("n", "a")
    builder.add_buf("y", "n")
    builder.add_output("y")
    builder.add_output("n")
    simulator = LogicSimulator(builder.build())
    trace = simulator.run(TestSequence([[0], [1]]))
    assert trace.po_values[0] == [ONE, ONE]
    assert trace.po_values[1] == [ZERO, ZERO]


def test_xnor_three_inputs_parity():
    builder = CircuitBuilder("c")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_input("c")
    builder.add_gate("y", __import__("repro.circuit.types", fromlist=["GateType"]).GateType.XNOR, ["a", "b", "c"])
    builder.add_output("y")
    simulator = LogicSimulator(builder.build())
    for a in (0, 1):
        for b in (0, 1):
            for c in (0, 1):
                trace = simulator.run(TestSequence([[a, b, c]]))
                parity = (a + b + c) % 2
                expected = ZERO if parity else ONE
                assert trace.po_values[0][0] is expected


class TestSequentialBehavior:
    def test_flops_start_unknown(self, toggle_circuit):
        trace = LogicSimulator(toggle_circuit).run(TestSequence([[0]]))
        # q is X, so out = BUF(q) is X; XOR keeps it X forever.
        assert trace.po_values[0][0] is X

    def test_reset_then_toggle(self, resettable_toggle):
        # rst_n=0 forces d=0; then en=1 toggles every cycle.
        seq = TestSequence([[0, 0], [1, 1], [1, 1], [0, 1]])
        trace = LogicSimulator(resettable_toggle).run(seq)
        # out = NOT(q): q starts X -> X; after reset q=0 -> out=1;
        # en=1 toggles q to 1 -> out=0; q toggles to 0 -> out=1.
        assert [row[0] for row in trace.po_values] == [X, ONE, ZERO, ONE]
        assert trace.final_state == [ZERO]  # en=0 holds q=0

    def test_initial_state_override(self, toggle_circuit):
        simulator = LogicSimulator(toggle_circuit)
        trace = simulator.run(TestSequence([[0]]), initial_state=[ONE])
        assert trace.po_values[0][0] is ONE

    def test_initial_state_length_checked(self, toggle_circuit):
        with pytest.raises(SimulationError):
            LogicSimulator(toggle_circuit).run(
                TestSequence([[0]]), initial_state=[ONE, ZERO]
            )

    def test_final_state_feeds_continuation(self, resettable_toggle):
        simulator = LogicSimulator(resettable_toggle)
        full = simulator.run(TestSequence([[0, 0], [1, 1], [1, 1]]))
        first = simulator.run(TestSequence([[0, 0]]))
        second = simulator.run(
            TestSequence([[1, 1], [1, 1]]), initial_state=first.final_state
        )
        assert full.po_values[1:] == second.po_values
        assert full.final_state == second.final_state


class TestTraces:
    def test_record_signals(self, s27, s27_t0):
        trace = LogicSimulator(s27).run(s27_t0, record_signals=True)
        assert trace.signal_values is not None
        assert len(trace.signal_values) == len(s27_t0)
        assert len(trace.signal_values[0]) == 17

    def test_known_output_fraction(self, s27, s27_t0):
        trace = LogicSimulator(s27).run(s27_t0)
        # Paper trace: PO is X at time 0, binary afterwards.
        assert trace.known_output_fraction() == pytest.approx(0.9)

    def test_width_mismatch_rejected(self, s27):
        with pytest.raises(SimulationError):
            LogicSimulator(s27).run(TestSequence([[0, 1]]))

    def test_empty_sequence(self, s27):
        trace = LogicSimulator(s27).run(TestSequence([]))
        assert trace.po_values == []
        assert trace.final_state == [X, X, X]
