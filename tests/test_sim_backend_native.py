"""The native backend's availability machinery and graceful fallback.

Bit-level parity of the C kernel is covered by the registry-parametrized
suites (`test_sim_backend_parity.py` and the shard/scanplan suites); this
module covers what happens *around* the kernel: the ``REPRO_NO_NATIVE``
escape hatch, ``auto`` silently avoiding an unavailable engine,
``backend="native"`` raising the documented configuration error, the CLI
surfacing a readable message, and the build/cache plumbing.
"""

from __future__ import annotations

import pytest

from repro.circuits.catalog import load_circuit
from repro.errors import SimulationError
from repro.sim.backend import (
    available_backends,
    backend_unavailable_reason,
    get_backend,
    resolve_backend_name,
)
from repro.sim.compiled import CompiledCircuit
from repro.sim import native_build
from repro.sim.native_build import (
    CACHE_DIR_ENV,
    NATIVE_ABI_VERSION,
    NO_NATIVE_ENV,
    find_compiler,
    load_native_library,
    native_unavailable_reason,
    toolchain_info,
)

pytest.importorskip("numpy")


@pytest.fixture
def no_native(monkeypatch):
    """Hide the compiled kernel, as a machine without a compiler would."""
    monkeypatch.setenv(NO_NATIVE_ENV, "1")


@pytest.fixture
def compiled() -> CompiledCircuit:
    # Fresh per test: get_backend memoizes instances on the compiled
    # circuit, which would mask availability transitions.
    return CompiledCircuit(load_circuit("syn298"))


class TestEnvKnob:
    def test_reason_names_the_knob(self, no_native):
        reason = native_unavailable_reason()
        assert reason is not None and NO_NATIVE_ENV in reason
        registry_reason = backend_unavailable_reason("native")
        assert registry_reason is not None and NO_NATIVE_ENV in registry_reason

    def test_hidden_from_available_backends(self, no_native):
        assert "native" not in available_backends()
        assert "python" in available_backends()

    def test_knob_is_reread_each_call(self, monkeypatch):
        monkeypatch.setenv(NO_NATIVE_ENV, "1")
        assert native_unavailable_reason() is not None
        monkeypatch.delenv(NO_NATIVE_ENV)
        # Without the knob the remaining answer depends on the machine's
        # toolchain; it must simply not be the knob-reason anymore.
        reason = native_unavailable_reason()
        assert reason is None or NO_NATIVE_ENV not in reason

    def test_auto_silently_avoids_native(self, no_native, compiled):
        # syn298 (119 gates) resolves to native when it is available ...
        assert resolve_backend_name(compiled, "auto") in ("python", "numpy")
        assert resolve_backend_name(compiled, "auto", paired=True) in (
            "python",
            "numpy",
        )
        # ... and auto still produces a working simulator.
        from repro.sim.faultsim import FaultSimulator

        simulator = FaultSimulator(compiled, backend="auto")
        assert simulator.backend.name in ("python", "numpy")

    def test_explicit_native_raises_documented_error(self, no_native, compiled):
        with pytest.raises(SimulationError, match="'native'.*unavailable"):
            get_backend(compiled, "native")
        with pytest.raises(SimulationError, match=NO_NATIVE_ENV):
            load_native_library()

    def test_cli_surfaces_readable_message(self, no_native, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["atpg", "--circuit", "s27", "--backend", "native"])
        assert excinfo.value.code != 0
        message = capsys.readouterr().err
        assert "--backend native" in message
        assert "unavailable" in message
        assert NO_NATIVE_ENV in message


class TestBuildPlumbing:
    def test_toolchain_info_shape(self):
        info = toolchain_info()
        assert "compiler" in info
        if info["compiler"] is not None:
            assert info["compiler_version"]

    def test_missing_compiler_reported(self, monkeypatch):
        # The env knob outranks every other reason; clear it so this
        # test also passes under an ambient REPRO_NO_NATIVE=1 run.
        monkeypatch.delenv(NO_NATIVE_ENV, raising=False)
        monkeypatch.setattr(native_build, "find_compiler", lambda: None)
        monkeypatch.setattr(native_build, "_LIBRARY", None)
        reason = native_unavailable_reason()
        assert reason is not None and "compiler" in reason

    def test_cc_env_overrides_compiler_choice(self, monkeypatch):
        monkeypatch.setenv("CC", "definitely-not-a-compiler-xyz")
        assert find_compiler() is None

    def test_build_failure_is_sticky(self, monkeypatch):
        monkeypatch.delenv(NO_NATIVE_ENV, raising=False)
        monkeypatch.setattr(native_build, "_LIBRARY", None)
        monkeypatch.setattr(native_build, "_BUILD_FAILURE", "boom: simulated")
        assert native_unavailable_reason() == "boom: simulated"
        with pytest.raises(SimulationError, match="boom: simulated"):
            load_native_library()


class TestLoadedKernel:
    """Checks that require a working toolchain; skip otherwise."""

    @pytest.fixture(autouse=True)
    def _need_native(self, require_backend):
        require_backend("native")

    def test_abi_version_matches(self):
        library = load_native_library()
        assert library.repro_abi_version() == NATIVE_ABI_VERSION

    def test_library_is_memoized(self):
        assert load_native_library() is load_native_library()

    def test_backend_instance_shape(self, compiled):
        backend = get_backend(compiled, "native")
        assert backend.name == "native"
        assert backend.word_width == 64
        # Flat op arrays cover the whole program.
        assert len(backend.c_codes) == len(compiled.ops)
        assert int(backend.c_in_off[-1]) == sum(
            len(ins) for _, _, ins in compiled.ops
        )

    def test_native_program_patch_arrays(self, compiled):
        from repro.faults.universe import FaultUniverse

        backend = get_backend(compiled, "native")
        faults = tuple(FaultUniverse(compiled.circuit).faults())[:12]
        program = backend.program(faults)
        # Patch op positions arrive sorted, as the C cursor walk requires.
        pins = list(program.pin_ops)
        stems = list(program.stem_ops)
        assert pins == sorted(pins)
        assert stems == sorted(stems)
        # The fault-free program carries no patches.
        clean = backend.program(None)
        assert len(clean.pin_ops) == 0 and len(clean.stem_ops) == 0


class TestAbiGuard:
    """A stale cached kernel must be rebuilt or rejected, never driven.

    ``repro_scan`` changed the export surface (ABI 2): a ``.so`` built
    for an older ABI must not be loadable as the current one.  Two
    independent defenses are checked — the content-addressed cache path
    diverges on an ABI bump (so a stale object is simply never found),
    and a library whose baked-in version disagrees anyway (hand-copied
    cache, doctored build) is rejected with the documented error instead
    of being called with the wrong marshaling.
    """

    @pytest.fixture(autouse=True)
    def _need_native(self, require_backend):
        require_backend("native")

    def test_cache_path_diverges_on_abi_bump(self, monkeypatch):
        source = b"int kernel;"
        current = native_build._library_path(source)
        monkeypatch.setattr(
            native_build, "NATIVE_ABI_VERSION", NATIVE_ABI_VERSION + 1
        )
        assert native_build._library_path(source) != current

    def test_stale_abi_library_rejected(self, tmp_path, monkeypatch):
        source_text = native_build._SOURCE_PATH.read_text()
        marker = f"#define REPRO_NATIVE_ABI {NATIVE_ABI_VERSION}"
        assert marker in source_text, "ABI marker drifted from the C source"
        doctored = tmp_path / "repro_kernel_stale.c"
        doctored.write_text(
            source_text.replace(marker, "#define REPRO_NATIVE_ABI 0", 1)
        )
        # Plant the stale build exactly where the loader will look for
        # the *current* source in a private cache directory.
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        target = native_build._library_path(
            native_build._SOURCE_PATH.read_bytes()
        )
        native_build._compile(find_compiler(), doctored, target)
        monkeypatch.setattr(native_build, "_LIBRARY", None)
        monkeypatch.setattr(native_build, "_BUILD_FAILURE", None)
        with pytest.raises(SimulationError, match="ABI mismatch"):
            load_native_library()
        # The mismatch sticks as this process's unavailability reason.
        reason = native_unavailable_reason()
        assert reason is not None and "ABI mismatch" in reason
