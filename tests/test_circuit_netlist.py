"""Tests for the netlist model, gate records and structural validation."""

from __future__ import annotations

import pytest

from repro.circuit.netlist import Circuit, Gate
from repro.circuit.types import GateType
from repro.errors import NetlistError


def _circuit(gates: dict[str, Gate], **overrides) -> Circuit:
    defaults = dict(
        name="t",
        inputs=["a", "b"],
        outputs=["y"],
        flops=[],
        gates=gates,
    )
    defaults.update(overrides)
    return Circuit(**defaults)


class TestGate:
    def test_valid_gate(self):
        gate = Gate("y", GateType.AND, ("a", "b"))
        assert gate.inputs == ("a", "b")

    def test_not_requires_single_input(self):
        with pytest.raises(NetlistError):
            Gate("y", GateType.NOT, ("a", "b"))

    def test_and_requires_two_inputs(self):
        with pytest.raises(NetlistError):
            Gate("y", GateType.AND, ("a",))

    def test_wide_gate_allowed(self):
        gate = Gate("y", GateType.NOR, tuple("abcdefgh"))
        assert len(gate.inputs) == 8


class TestGateTypeProperties:
    def test_inverting(self):
        assert GateType.NAND.is_inverting
        assert GateType.NOR.is_inverting
        assert GateType.NOT.is_inverting
        assert GateType.XNOR.is_inverting
        assert not GateType.AND.is_inverting
        assert not GateType.BUF.is_inverting

    def test_controlling_values(self):
        assert GateType.AND.controlling_value == 0
        assert GateType.NAND.controlling_value == 0
        assert GateType.OR.controlling_value == 1
        assert GateType.NOR.controlling_value == 1
        assert GateType.XOR.controlling_value is None
        assert GateType.NOT.controlling_value is None


class TestValidation:
    def test_valid_circuit_passes(self):
        circuit = _circuit({"y": Gate("y", GateType.AND, ("a", "b"))})
        circuit.validate()

    def test_undriven_gate_input(self):
        circuit = _circuit({"y": Gate("y", GateType.AND, ("a", "ghost"))})
        with pytest.raises(NetlistError, match="undriven"):
            circuit.validate()

    def test_undriven_output(self):
        circuit = _circuit(
            {"z": Gate("z", GateType.AND, ("a", "b"))}, outputs=["nope"]
        )
        with pytest.raises(NetlistError, match="undriven"):
            circuit.validate()

    def test_undriven_flop_input(self):
        circuit = _circuit(
            {"y": Gate("y", GateType.AND, ("a", "b"))},
            flops=[("q", "missing_d")],
        )
        with pytest.raises(NetlistError, match="undriven"):
            circuit.validate()

    def test_double_driver(self):
        circuit = _circuit(
            {"a": Gate("a", GateType.AND, ("a", "b"))}, outputs=["a"]
        )
        with pytest.raises(NetlistError, match="twice"):
            circuit.validate()

    def test_no_outputs(self):
        circuit = _circuit({"y": Gate("y", GateType.AND, ("a", "b"))}, outputs=[])
        with pytest.raises(NetlistError, match="no primary outputs"):
            circuit.validate()

    def test_combinational_cycle_detected(self):
        gates = {
            "u": Gate("u", GateType.AND, ("a", "v")),
            "v": Gate("v", GateType.AND, ("b", "u")),
            "y": Gate("y", GateType.BUF, ("u",)),
        }
        circuit = _circuit(gates)
        with pytest.raises(NetlistError, match="cycle"):
            circuit.validate()

    def test_cycle_through_flop_is_legal(self):
        gates = {"d": Gate("d", GateType.NOT, ("q",)), "y": Gate("y", GateType.BUF, ("q",))}
        circuit = _circuit(gates, flops=[("q", "d")], inputs=["a", "b"])
        circuit.validate()


class TestDerivedViews:
    def test_topo_order_respects_dependencies(self, s27):
        seen: set[str] = set(s27.inputs) | set(s27.flop_outputs())
        for gate in s27.topo_order():
            for source in gate.inputs:
                assert source in seen, f"{gate.output} before its input {source}"
            seen.add(gate.output)

    def test_topo_order_cached(self, s27):
        assert s27.topo_order() is s27.topo_order()

    def test_signals_enumeration(self, s27):
        signals = s27.signals()
        assert len(signals) == 4 + 3 + 10
        assert len(set(signals)) == len(signals)

    def test_fanout_covers_all_loads(self, s27):
        fanout = s27.fanout()
        total_gate_pins = sum(len(g.inputs) for g in s27.gates.values())
        total_loads = sum(len(loads) for loads in fanout.values())
        assert total_loads == total_gate_pins + s27.num_flops + s27.num_outputs

    def test_fanout_branch_example(self, s27):
        # G11 feeds G17, G10 and flop G6 in the real netlist.
        sinks = {load.sink for load in s27.fanout()["G11"]}
        assert sinks == {"G17", "G10", "G6"}

    def test_driver_kind(self, s27):
        assert s27.driver_kind("G0") == "pi"
        assert s27.driver_kind("G5") == "ff"
        assert s27.driver_kind("G11") == "gate"

    def test_driver_kind_unknown(self, s27):
        with pytest.raises(NetlistError):
            s27.driver_kind("nope")

    def test_counts(self, s27):
        assert s27.num_inputs == 4
        assert s27.num_outputs == 1
        assert s27.num_flops == 3
        assert s27.num_gates == 10

    def test_flop_views(self, s27):
        assert s27.flop_outputs() == ["G5", "G6", "G7"]
        assert s27.flop_inputs() == ["G10", "G11", "G13"]
