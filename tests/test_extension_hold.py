"""Tests for the hold-cycles extension operator (beyond the paper).

The paper cites Nachman et al. [3], where holding input vectors for
several clock cycles raises sequential fault coverage.  The extension
adds a hold stage below the paper's four operators; ``hold_cycles=1``
must reproduce the paper's behaviour bit for bit.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bist.controller import ExpansionController
from repro.bist.memory import TestMemory
from repro.core.config import SelectionConfig
from repro.core.ops import ExpansionConfig, expand, hold
from repro.core.scheme import LoadAndExpandScheme
from repro.core.sequence import TestSequence

bits = st.integers(min_value=0, max_value=1)


class TestHoldPrimitive:
    def test_example(self):
        s = TestSequence.from_strings(["01", "10"])
        assert hold(s, 2).to_strings() == ["01", "01", "10", "10"]

    def test_identity_at_one(self):
        s = TestSequence.from_strings(["01", "10"])
        assert hold(s, 1) is s

    def test_invalid(self):
        with pytest.raises(ValueError):
            hold(TestSequence.from_strings(["0"]), 0)

    @given(
        st.lists(st.lists(bits, min_size=2, max_size=2), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=5),
    )
    def test_length_property(self, rows, k):
        s = TestSequence(rows)
        held = hold(s, k)
        assert len(held) == k * len(s)
        # Every vector appears in a block of k identical copies.
        for index, vector in enumerate(s):
            block = held.vectors()[index * k : (index + 1) * k]
            assert all(v == vector for v in block)


class TestHoldInExpansion:
    def test_hold_one_reproduces_paper(self):
        s = TestSequence.from_strings(["000", "110"])
        paper = expand(s, ExpansionConfig(repetitions=2))
        with_hold_field = expand(s, ExpansionConfig(repetitions=2, hold_cycles=1))
        assert paper == with_hold_field

    def test_multiplier_includes_hold(self):
        config = ExpansionConfig(repetitions=2, hold_cycles=3)
        assert config.length_multiplier == 48
        s = TestSequence.from_strings(["01"])
        assert len(expand(s, config)) == 48

    def test_hold_applied_before_repetition(self):
        s = TestSequence.from_strings(["01", "10"])
        config = ExpansionConfig(
            repetitions=2,
            hold_cycles=2,
            use_complement=False,
            use_shift=False,
            use_reverse=False,
        )
        assert expand(s, config).to_strings() == [
            "01", "01", "10", "10", "01", "01", "10", "10",
        ]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExpansionConfig(hold_cycles=0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.lists(bits, min_size=3, max_size=3), min_size=1, max_size=5),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
    )
    def test_hardware_matches_math_with_hold(self, rows, n, hold_cycles):
        sequence = TestSequence(rows)
        config = ExpansionConfig(repetitions=n, hold_cycles=hold_cycles)
        memory = TestMemory(3, len(sequence))
        memory.load(sequence)
        controller = ExpansionController(memory, config)
        assert TestSequence(controller.generate_all()) == expand(sequence, config)
        assert controller.expanded_length() == len(sequence) * config.length_multiplier


class TestHoldInScheme:
    def test_hold_scheme_accounts_for_every_fault(self, s27, s27_t0):
        """With hold, Sexp no longer starts with S, so Procedure 2's
        worst-case fallback is gone: faults are either covered or
        explicitly reported as uncoverable — never silently lost."""
        config = SelectionConfig(
            expansion=ExpansionConfig(repetitions=2, hold_cycles=2), seed=7
        )
        run = LoadAndExpandScheme(s27).run(s27_t0, config)
        covered = run.result.detected_by_scheme
        uncoverable = len(run.selection.uncoverable)
        assert covered + uncoverable >= run.result.detected_by_t0
        assert run.result.applied_test_length == (
            32 * run.result.total_length_after
        )

    def test_hold_one_has_empty_uncoverable(self, s27, s27_t0):
        config = SelectionConfig(
            expansion=ExpansionConfig(repetitions=2, hold_cycles=1), seed=7
        )
        run = LoadAndExpandScheme(s27).run(s27_t0, config)
        assert run.selection.uncoverable == []
        assert run.result.coverage_preserved
