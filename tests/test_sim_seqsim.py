"""Tests for the parallel-sequence (one fault, many candidates) simulator."""

from __future__ import annotations

import pytest

from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.universe import FaultUniverse
from repro.sim.faultsim import FaultSimulator
from repro.sim.seqsim import SequenceBatchSimulator
from repro.util.rng import SplitMix64


def _random_sequences(seed, width, count, max_len):
    rng = SplitMix64(seed)
    out = []
    for _ in range(count):
        length = rng.randint(1, max_len)
        out.append(
            TestSequence(
                [[rng.next_u64() & 1 for _ in range(width)] for _ in range(length)]
            )
        )
    return out


class TestAgainstFaultSimulator:
    def test_s27_all_faults_random_candidates(self, s27, s27_universe):
        batch_sim = SequenceBatchSimulator(s27, batch_width=16)
        fault_sim = FaultSimulator(s27)
        candidates = _random_sequences(5, 4, 20, 12)
        for fault in list(s27_universe.faults())[:8]:
            batched = batch_sim.detects(fault, candidates)
            singly = [fault_sim.detects(c, fault) for c in candidates]
            assert batched == singly, str(fault)

    def test_synthetic_circuit(self, small_synthetic):
        universe = FaultUniverse(small_synthetic)
        batch_sim = SequenceBatchSimulator(small_synthetic, batch_width=8)
        fault_sim = FaultSimulator(small_synthetic)
        candidates = _random_sequences(9, small_synthetic.num_inputs, 12, 20)
        for fault in list(universe.faults())[::7]:
            batched = batch_sim.detects(fault, candidates)
            singly = [fault_sim.detects(c, fault) for c in candidates]
            assert batched == singly, str(fault)


class TestBatchMechanics:
    @pytest.mark.parametrize("width", [1, 2, 5, 64])
    def test_batch_width_invariance(self, s27, s27_universe, width):
        fault = s27_universe.fault(3)
        candidates = _random_sequences(13, 4, 17, 9)
        baseline = SequenceBatchSimulator(s27, batch_width=128).detects(
            fault, candidates
        )
        other = SequenceBatchSimulator(s27, batch_width=width).detects(
            fault, candidates
        )
        assert baseline == other

    def test_mixed_lengths_padding_is_harmless(self, s27, s27_universe, s27_t0):
        # A candidate equal to a T0 prefix must behave identically whether
        # batched with longer candidates or alone.
        fault = s27_universe.fault(0)
        prefix = s27_t0.subsequence(0, 2)
        longer = s27_t0
        simulator = SequenceBatchSimulator(s27)
        alone = simulator.detects(fault, [prefix])
        together = simulator.detects(fault, [prefix, longer])
        assert together[0] == alone[0]

    def test_empty_candidate_list(self, s27, s27_universe):
        assert SequenceBatchSimulator(s27).detects(s27_universe.fault(0), []) == []

    def test_zero_length_candidate_detects_nothing(self, s27, s27_universe):
        simulator = SequenceBatchSimulator(s27)
        assert simulator.detects(s27_universe.fault(0), [TestSequence([])]) == [False]

    def test_width_mismatch_rejected(self, s27, s27_universe):
        with pytest.raises(SimulationError):
            SequenceBatchSimulator(s27).detects(
                s27_universe.fault(0), [TestSequence([[0, 1]])]
            )

    def test_invalid_batch_width(self, s27):
        with pytest.raises(SimulationError):
            SequenceBatchSimulator(s27, batch_width=0)
