"""Tests for the parallel-sequence (one fault, many candidates) simulator."""

from __future__ import annotations

import pytest

from repro.core.ops import ExpansionConfig, expand
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.universe import FaultUniverse
from repro.sim.faultsim import FaultSimulator
from repro.sim.seqsim import SequenceBatchSimulator
from repro.util.rng import SplitMix64


def _random_sequences(seed, width, count, max_len):
    rng = SplitMix64(seed)
    out = []
    for _ in range(count):
        length = rng.randint(1, max_len)
        out.append(
            TestSequence(
                [[rng.next_u64() & 1 for _ in range(width)] for _ in range(length)]
            )
        )
    return out


class TestAgainstFaultSimulator:
    def test_s27_all_faults_random_candidates(self, s27, s27_universe):
        batch_sim = SequenceBatchSimulator(s27, batch_width=16)
        fault_sim = FaultSimulator(s27)
        candidates = _random_sequences(5, 4, 20, 12)
        for fault in list(s27_universe.faults())[:8]:
            batched = batch_sim.detects(fault, candidates)
            singly = [fault_sim.detects(c, fault) for c in candidates]
            assert batched == singly, str(fault)

    def test_synthetic_circuit(self, small_synthetic):
        universe = FaultUniverse(small_synthetic)
        batch_sim = SequenceBatchSimulator(small_synthetic, batch_width=8)
        fault_sim = FaultSimulator(small_synthetic)
        candidates = _random_sequences(9, small_synthetic.num_inputs, 12, 20)
        for fault in list(universe.faults())[::7]:
            batched = batch_sim.detects(fault, candidates)
            singly = [fault_sim.detects(c, fault) for c in candidates]
            assert batched == singly, str(fault)


class TestBatchMechanics:
    @pytest.mark.parametrize("width", [1, 2, 5, 64])
    def test_batch_width_invariance(self, s27, s27_universe, width):
        fault = s27_universe.fault(3)
        candidates = _random_sequences(13, 4, 17, 9)
        baseline = SequenceBatchSimulator(s27, batch_width=128).detects(
            fault, candidates
        )
        other = SequenceBatchSimulator(s27, batch_width=width).detects(
            fault, candidates
        )
        assert baseline == other

    def test_mixed_lengths_padding_is_harmless(self, s27, s27_universe, s27_t0):
        # A candidate equal to a T0 prefix must behave identically whether
        # batched with longer candidates or alone.
        fault = s27_universe.fault(0)
        prefix = s27_t0.subsequence(0, 2)
        longer = s27_t0
        simulator = SequenceBatchSimulator(s27)
        alone = simulator.detects(fault, [prefix])
        together = simulator.detects(fault, [prefix, longer])
        assert together[0] == alone[0]

    def test_empty_candidate_list(self, s27, s27_universe):
        assert SequenceBatchSimulator(s27).detects(s27_universe.fault(0), []) == []

    def test_zero_length_candidate_detects_nothing(self, s27, s27_universe):
        simulator = SequenceBatchSimulator(s27)
        assert simulator.detects(s27_universe.fault(0), [TestSequence([])]) == [False]

    def test_width_mismatch_rejected(self, s27, s27_universe):
        with pytest.raises(SimulationError):
            SequenceBatchSimulator(s27).detects(
                s27_universe.fault(0), [TestSequence([[0, 1]])]
            )

    def test_invalid_batch_width(self, s27):
        with pytest.raises(SimulationError):
            SequenceBatchSimulator(s27, batch_width=0)

    def test_unknown_pipeline_rejected(self, s27):
        with pytest.raises(SimulationError, match="pipeline"):
            SequenceBatchSimulator(s27, pipeline="turbo")


#: Expansion configurations covering every operator-toggle combination the
#: derived packer has to map (the paper's default plus ablations and the
#: hold-cycles extension).
EXPANSIONS = [
    ExpansionConfig(repetitions=1),
    ExpansionConfig(repetitions=2),
    ExpansionConfig(repetitions=2, use_complement=False),
    ExpansionConfig(repetitions=1, use_shift=False, use_reverse=False),
    ExpansionConfig(repetitions=2, hold_cycles=2),
]


class TestDerivedCandidates:
    """detects_windows / detects_omissions vs materialized expansion."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("expansion", EXPANSIONS)
    def test_windows_match_materialized_expansion(
        self, s27, s27_universe, s27_t0, backend, expansion
    ):
        pytest.importorskip("numpy")
        simulator = SequenceBatchSimulator(s27, batch_width=9, backend=backend)
        udet = len(s27_t0) - 1
        spans = [(u, udet) for u in range(udet, -1, -1)]
        for fault in list(s27_universe.faults())[::5]:
            derived = simulator.detects_windows(fault, s27_t0, spans, expansion)
            materialized = simulator.detects(
                fault,
                [
                    expand(s27_t0.subsequence(start, end), expansion)
                    for start, end in spans
                ],
            )
            assert derived == materialized, str(fault)

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("expansion", EXPANSIONS)
    def test_omissions_match_materialized_expansion(
        self, s27, s27_universe, s27_t0, backend, expansion
    ):
        pytest.importorskip("numpy")
        simulator = SequenceBatchSimulator(s27, batch_width=7, backend=backend)
        base = s27_t0.subsequence(1, len(s27_t0) - 2)
        omissions = list(range(len(base)))
        for fault in list(s27_universe.faults())[::5]:
            derived = simulator.detects_omissions(fault, base, omissions, expansion)
            materialized = simulator.detects(
                fault, [expand(base.omit(index), expansion) for index in omissions]
            )
            assert derived == materialized, str(fault)

    def test_single_vector_base_omission_is_empty_candidate(
        self, s27, s27_universe
    ):
        """Omitting the only vector yields the empty (never-detecting) case."""
        simulator = SequenceBatchSimulator(s27)
        base = TestSequence([[0, 1, 0, 1]])
        assert simulator.detects_omissions(
            s27_universe.fault(0), base, [0], ExpansionConfig(repetitions=2)
        ) == [False]

    def test_window_span_out_of_range_rejected(self, s27, s27_universe, s27_t0):
        simulator = SequenceBatchSimulator(s27)
        expansion = ExpansionConfig(repetitions=1)
        with pytest.raises(SimulationError, match="window"):
            simulator.detects_windows(
                s27_universe.fault(0), s27_t0, [(0, len(s27_t0))], expansion
            )
        with pytest.raises(SimulationError, match="omit index"):
            simulator.detects_omissions(
                s27_universe.fault(0), s27_t0, [len(s27_t0)], expansion
            )


class TestLegacyPipelineParity:
    """The preserved legacy pipeline and the packed one must agree."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_outcomes_identical(self, s27, s27_universe, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        candidates = _random_sequences(21, 4, 30, 11)
        for fault in list(s27_universe.faults())[::6]:
            packed = SequenceBatchSimulator(
                s27, batch_width=8, backend=backend
            ).detects(fault, candidates)
            legacy = SequenceBatchSimulator(
                s27, batch_width=8, backend=backend, pipeline="legacy"
            ).detects(fault, candidates)
            assert packed == legacy, str(fault)


class TestPartialBatchProgramCache:
    """Partial batches pad up a stable ladder, so a handful of cached
    programs (not one per trailing size) serves a whole search."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_one_program_per_fault_regardless_of_partial_batches(
        self, s27_compiled, s27_universe, backend
    ):
        simulator = SequenceBatchSimulator(
            s27_compiled, batch_width=8, backend=backend
        )
        cache = simulator.backend._programs
        cache.clear()
        fault = s27_universe.fault(2)
        # 21 candidates = two full batches of 8 plus a trailing 5, which
        # pads back up to the 8-slot rung (8/2 = 4 < 5): one program.
        candidates = _random_sequences(33, 4, 21, 6)
        simulator.detects(fault, candidates)
        keys = [key for key in cache if key is not None]
        assert keys == [(fault,) * 8]
        # A repeat against the same fault recompiles nothing.
        program = cache[(fault,) * 8]
        simulator.detects(fault, candidates[:6])
        assert cache[(fault,) * 8] is program
        # A far smaller batch drops to its own ladder rung instead of
        # simulating 8 slots for 2 candidates.
        simulator.detects(fault, candidates[:2])
        assert (fault,) * 2 in cache

    def test_half_width_chunks_pad_to_their_own_rung(
        self, s27_compiled, s27_universe
    ):
        """A caller chunking below batch_width is not padded up to it."""
        simulator = SequenceBatchSimulator(s27_compiled, batch_width=16)
        cache = simulator.backend._programs
        cache.clear()
        fault = s27_universe.fault(4)
        # Procedure 1's shape: an omission-sized simulator fed
        # search-sized (half-width) window chunks.
        candidates = _random_sequences(41, 4, 8, 6)
        simulator.detects(fault, candidates)
        assert [key for key in cache if key is not None] == [(fault,) * 8]
