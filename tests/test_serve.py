"""Serving layer: session lifecycle, fair scheduling, service parity.

The contract under test is the ISSUE's acceptance criterion: a warm
service handling concurrent submissions from several tenants returns
results *bit-identical* (equal :meth:`RunResult.fingerprint`) to running
the same :class:`RunRequest` directly on a local :class:`repro.Session`,
while the good-machine trace cache proves the second request for a
circuit reused the first one's fault-free trace.

No ``pytest-asyncio`` in the image — async tests drive their own event
loop with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import pytest

import repro
from repro.atpg.config import AtpgConfig
from repro.core.request import RunRequest
from repro.core.session import Session, use_session
from repro.errors import ReproError
from repro.serve import FairScheduler, HttpFrontend, JobService, plan_execution
from repro.sim.autotune import MachineProfile, static_profile
from repro.sim.faultsim import FaultSimulator
from repro.sim.sharding import ShardedFaultSimulator

S27_REQUEST = RunRequest(kind="scheme", circuit="s27")


def calibrated_profile(workers: int) -> MachineProfile:
    """A hand-built calibrated profile (no measurement in unit tests)."""
    base = static_profile()
    return MachineProfile(
        cpu_count=base.cpu_count,
        workers=workers,
        backend=base.backend,
        fault_batch_width=base.fault_batch_width,
        search_batch_width=base.search_batch_width,
        omission_batch_width=base.omission_batch_width,
        fault_shard_speedup=2.0 if workers > 1 else 0.5,
        candidate_shard_speedup=2.0 if workers > 1 else 0.5,
        source="calibrated",
        notes=("synthetic test profile",),
    )


class TestFairScheduler:
    def test_round_robin_across_tenants(self):
        scheduler = FairScheduler()
        for job in ("a1", "a2", "a3"):
            scheduler.push("tenant-a", job)
        scheduler.push("tenant-b", "b1")
        scheduler.push("tenant-c", "c1")
        order = []
        while True:
            entry = scheduler.pop()
            if entry is None:
                break
            order.append(entry[1])
        # One job per tenant per rotation: b and c are served before a's
        # backlog drains, so a's burst cannot starve them.
        assert order == ["a1", "b1", "c1", "a2", "a3"]

    def test_pending_and_len(self):
        scheduler = FairScheduler()
        assert len(scheduler) == 0
        assert scheduler.pop() is None
        scheduler.push("t1", 1)
        scheduler.push("t1", 2)
        scheduler.push("t2", 3)
        assert len(scheduler) == 3
        assert scheduler.pending() == {"t1": 2, "t2": 1}
        scheduler.pop()
        assert len(scheduler) == 2


class TestPlanExecution:
    def test_no_profile_passes_request_through(self):
        plan = plan_execution(S27_REQUEST, None)
        assert plan.request is S27_REQUEST
        assert plan.source == "client"
        assert plan.workers == 1

    def test_calibrated_serial_overrides_explicit_shard_request(self):
        """The measured verdict beats the client's workers=4 ask."""
        profile = calibrated_profile(workers=1)
        request = RunRequest(
            kind="scheme",
            circuit="s27",
            selection=repro.SelectionConfig(workers=4),
        )
        plan = plan_execution(request, profile)
        assert plan.workers == 1
        assert plan.request.selection.workers == 1
        assert any("overrode" in note for note in plan.notes)

    def test_auto_workers_resolve_to_measured_recommendation(self):
        profile = calibrated_profile(workers=2)
        request = RunRequest(
            kind="scheme",
            circuit="s27",
            selection=repro.SelectionConfig(workers=0),
        )
        plan = plan_execution(request, profile)
        assert plan.workers == 2
        assert plan.request.selection.workers == 2
        assert plan.source == "calibrated"

    def test_static_profile_leaves_explicit_request_alone(self):
        request = RunRequest(
            kind="atpg",
            circuit="s27",
            atpg=AtpgConfig(workers=3),
        )
        plan = plan_execution(request, static_profile())
        assert plan.workers == 3
        assert plan.request.atpg.workers == 3

    def test_plan_json_carries_the_tier(self):
        payload = plan_execution(S27_REQUEST, None).to_json()
        assert payload["parallel"] == "auto"

    def test_single_lane_leaves_process_tier_alone(self):
        profile = replace(
            calibrated_profile(workers=4),
            parallel_mode="processes",
            fault_thread_speedup=1.5,
        )
        request = RunRequest(
            kind="scheme",
            circuit="s27",
            selection=repro.SelectionConfig(workers=4, parallel="processes"),
        )
        plan = plan_execution(request, profile, lanes=1)
        assert plan.parallel == "processes"
        assert plan.request.selection.parallel == "processes"

    def test_lanes_pin_process_tier_to_threads(self):
        """Concurrent lanes must never contend for the shared worker pool."""
        profile = replace(
            calibrated_profile(workers=4),
            parallel_mode="processes",
            fault_thread_speedup=1.5,
        )
        request = RunRequest(
            kind="scheme",
            circuit="s27",
            selection=repro.SelectionConfig(workers=4, parallel="processes"),
        )
        plan = plan_execution(request, profile, lanes=2)
        assert plan.parallel == "threads"
        assert plan.request.selection.parallel == "threads"
        assert plan.workers == 4
        assert any("lanes=2" in note for note in plan.notes)

    def test_lanes_pin_to_serial_without_a_measured_thread_win(self):
        profile = replace(
            calibrated_profile(workers=4),
            parallel_mode="processes",
            fault_thread_speedup=0.5,
            candidate_thread_speedup=0.6,
        )
        request = RunRequest(
            kind="scheme",
            circuit="s27",
            selection=repro.SelectionConfig(workers=4),
        )
        plan = plan_execution(request, profile, lanes=2)
        assert plan.parallel == "serial"
        assert plan.workers == 1
        assert plan.request.selection.workers == 1

    def test_lanes_pin_auto_tier_too(self):
        """'auto' could resolve to processes downstream, so it is pinned."""
        profile = replace(
            calibrated_profile(workers=4), fault_thread_speedup=1.5
        )
        request = RunRequest(
            kind="scheme",
            circuit="s27",
            selection=repro.SelectionConfig(workers=0),
        )
        plan = plan_execution(request, profile, lanes=2)
        assert plan.parallel == "threads"

    def test_lanes_leave_explicit_serial_and_threads_alone(self):
        profile = replace(
            calibrated_profile(workers=4), fault_thread_speedup=1.5
        )
        for tier in ("serial", "threads"):
            request = RunRequest(
                kind="scheme",
                circuit="s27",
                selection=repro.SelectionConfig(workers=4, parallel=tier),
            )
            plan = plan_execution(request, profile, lanes=2)
            assert plan.parallel == tier


class TestSessionLifecycle:
    def test_close_is_idempotent(self):
        session = Session()
        session.close()
        session.close()  # silent no-op, never raises
        assert session.closed

    def test_closed_session_rejects_use(self, s27):
        session = Session()
        session.close()
        with pytest.raises(ReproError, match="closed"):
            session.compile(s27)

    def test_scope_closes_only_scoped_simulators(self, s27):
        with Session() as session:
            outer = session.fault_simulator(s27)
            with session.scope():
                inner = session.fault_simulator(s27)
            # Closing inner twice (scope + session close) must stay silent.
            inner.close()
            outer.run(repro.paper_t0_s27(), [])

    def test_use_session_borrowed_keeps_caller_session_open(self):
        with Session() as session:
            with use_session(session) as sess:
                assert sess is session
            assert not session.closed

    def test_use_session_private_closes_on_exit(self):
        with use_session(None) as sess:
            assert not sess.closed
            private = sess
        assert private.closed

    def test_compile_shares_by_content_hash(self, s27):
        with Session() as session:
            by_object = session.compile(s27)
            by_name = session.compile("s27")
            assert by_object is by_name

    def test_profile_force_shard_overrides_static_single_core_fallback(
        self, s27, monkeypatch
    ):
        """Calibration demonstrably replaces the static threshold.

        On a 1-CPU machine the static policy always falls back to a
        serial simulator even for workers=2; a calibrated profile that
        measured a sharding win forces the sharded path.
        """
        monkeypatch.setenv("REPRO_ASSUME_CPUS", "1")
        with Session() as session:
            static_sim = session.fault_simulator(s27, workers=2)
            assert isinstance(static_sim, FaultSimulator)
            assert not isinstance(static_sim, ShardedFaultSimulator)
        with Session(profile=calibrated_profile(workers=2)) as session:
            forced = session.fault_simulator(s27, workers=2)
            assert isinstance(forced, ShardedFaultSimulator)


class TestJobService:
    def test_two_tenants_bit_identical_to_direct_session(self):
        async def main():
            async with JobService(profile=static_profile()) as service:
                job_a = await service.submit("tenant-a", S27_REQUEST)
                job_b = await service.submit("tenant-b", S27_REQUEST)
                return await service.wait(job_a), await service.wait(job_b)

        done_a, done_b = asyncio.run(main())
        assert done_a.status == "done", done_a.error
        assert done_b.status == "done", done_b.error

        with Session() as session:
            direct = session.run(S27_REQUEST)
        assert done_a.result.fingerprint() == direct.fingerprint()
        assert done_b.result.fingerprint() == direct.fingerprint()

    def test_second_request_reuses_first_requests_trace(self):
        async def main():
            async with JobService(profile=static_profile()) as service:
                first = await service.wait(
                    await service.submit("tenant-a", S27_REQUEST)
                )
                second = await service.wait(
                    await service.submit("tenant-b", S27_REQUEST)
                )
                return first, second

        first, second = asyncio.run(main())
        stats_a, stats_b = first.result.trace_stats, second.result.trace_stats
        # Counters are cumulative across the shared cache: the second
        # job's delta must show hits (reuse) and fewer cold misses than
        # the first job paid.
        delta_hits = stats_b["trace_hits"] - stats_a["trace_hits"]
        delta_misses = stats_b["trace_misses"] - stats_a["trace_misses"]
        assert delta_hits > 0
        assert delta_misses < stats_a["trace_misses"]

    def test_failed_job_reports_error_and_service_survives(self):
        async def main():
            async with JobService(profile=static_profile()) as service:
                bad = await service.wait(
                    await service.submit("t", RunRequest(kind="scheme", circuit="no-such"))
                )
                good = await service.wait(await service.submit("t", S27_REQUEST))
                return bad, good, service.stats()

        bad, good, stats = asyncio.run(main())
        assert bad.status == "failed"
        assert bad.error
        assert good.status == "done"
        assert stats["jobs_failed"] == 1
        assert stats["jobs_completed"] == 1

    def test_submit_before_start_rejected(self):
        async def main():
            service = JobService(profile=static_profile())
            with pytest.raises(ReproError, match="before start"):
                await service.submit("t", S27_REQUEST)

        asyncio.run(main())

    def test_lanes_validation(self):
        with pytest.raises(ReproError, match="lane"):
            JobService(lanes=0)

    def test_two_lanes_serve_two_tenants_bit_identical(self):
        """The acceptance criterion: lanes=2, concurrent tenants, exact
        fingerprints against a direct Session.run of the same request."""

        async def main():
            async with JobService(profile=static_profile(), lanes=2) as service:
                results = await asyncio.gather(
                    service.run("tenant-a", S27_REQUEST),
                    service.run("tenant-b", S27_REQUEST),
                )
                return results, service.stats()

        (result_a, result_b), stats = asyncio.run(main())
        with Session() as session:
            direct = session.run(S27_REQUEST)
        assert result_a.fingerprint() == direct.fingerprint()
        assert result_b.fingerprint() == direct.fingerprint()
        assert stats["lanes"] == 2
        assert stats["jobs_completed"] == 2
        assert stats["jobs_running"] == 0

    def test_two_lanes_actually_overlap(self):
        """Both lanes must be in flight at once, not serialized.

        Each job blocks on a two-party barrier before running: the
        barrier only releases when *both* lanes are inside their job at
        the same moment.  A serialized service would break the barrier
        (timeout) and fail both jobs.
        """
        import threading

        barrier = threading.Barrier(2, timeout=30)

        async def main():
            async with JobService(profile=static_profile(), lanes=2) as service:
                real_run = service._session.run

                def rendezvous_run(request):
                    barrier.wait()
                    return real_run(request)

                service._session.run = rendezvous_run
                return await asyncio.gather(
                    service.run("tenant-a", S27_REQUEST),
                    service.run("tenant-b", S27_REQUEST),
                )

        result_a, result_b = asyncio.run(main())
        assert result_a.fingerprint() == result_b.fingerprint()

    def test_plan_recorded_on_job(self):
        async def main():
            profile = calibrated_profile(workers=1)
            async with JobService(profile=profile) as service:
                request = RunRequest(
                    kind="scheme",
                    circuit="s27",
                    selection=repro.SelectionConfig(workers=4),
                )
                return await service.wait(await service.submit("t", request))

        job = asyncio.run(main())
        assert job.status == "done", job.error
        assert job.plan.workers == 1
        assert job.plan.source == "calibrated"


class TestConcurrentSession:
    def test_concurrent_runs_bit_identical_to_serial(self):
        """Satellite: N threads hammering one Session agree bit-for-bit."""
        with Session() as session:
            reference = session.run(S27_REQUEST).fingerprint()
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(session.run, S27_REQUEST) for _ in range(8)
                ]
                fingerprints = {f.result().fingerprint() for f in futures}
        assert fingerprints == {reference}

    def test_concurrent_scopes_close_only_their_own_simulators(self, s27):
        """Each thread's scope frame is private: a scope exiting on one
        thread must not close the simulator another thread still runs."""
        import threading

        with Session() as session:
            ready = threading.Barrier(2)
            errors = []

            def worker():
                try:
                    with session.scope():
                        simulator = session.fault_simulator(s27)
                        ready.wait()  # both scopes hold a live simulator
                        simulator.run(repro.paper_t0_s27(), [])
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            workers = [threading.Thread(target=worker) for _ in range(2)]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()
        assert errors == []


async def _http_request(port: int, method: str, path: str, payload=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    writer.write(
        f"{method} {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n".encode()
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, data = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, json.loads(data)


class TestHttpFrontend:
    def test_full_round_trip_matches_direct_run(self):
        async def main():
            async with JobService(profile=static_profile()) as service:
                async with HttpFrontend(service) as http:
                    port = http.port
                    status, health = await _http_request(port, "GET", "/healthz")
                    assert (status, health) == (200, {"status": "ok"})

                    status, prof = await _http_request(port, "GET", "/profile")
                    assert status == 200
                    assert prof["profile"]["source"] == "static"

                    status, submitted = await _http_request(
                        port,
                        "POST",
                        "/jobs",
                        {"tenant": "http-tenant", "request": S27_REQUEST.to_json()},
                    )
                    assert status == 202
                    job_id = submitted["id"]

                    status, job = await _http_request(
                        port, "GET", f"/jobs/{job_id}?wait=1"
                    )
                    assert status == 200
                    assert job["status"] == "done"

                    status, stats = await _http_request(port, "GET", "/stats")
                    assert status == 200
                    assert stats["completed_by_tenant"] == {"http-tenant": 1}
                    return job

        job = asyncio.run(main())
        with Session() as session:
            direct = session.run(S27_REQUEST)
        assert job["result"]["fingerprint"] == direct.fingerprint()

    def test_error_paths(self):
        async def main():
            async with JobService(profile=static_profile()) as service:
                async with HttpFrontend(service) as http:
                    port = http.port
                    status, _ = await _http_request(port, "GET", "/jobs/nope")
                    assert status == 404
                    status, _ = await _http_request(port, "GET", "/no-route")
                    assert status == 404
                    status, body = await _http_request(
                        port, "POST", "/jobs", {"tenant": "t"}
                    )
                    assert status == 400
                    assert "request" in body["error"]

        asyncio.run(main())
