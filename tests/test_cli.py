"""Tests for the command line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--circuit", "s27"])
        assert args.n == 4
        assert args.seed == 1999

    def test_tables_n_override(self):
        args = build_parser().parse_args(["tables", "--n", "2", "4"])
        assert args.n == [2, 4]

    def test_tables_suite_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--suite", "nope"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out
        assert "syn298" in out

    def test_run_s27(self, capsys):
        assert main(["run", "--circuit", "s27", "--n", "2"]) == 0
        out = capsys.readouterr().out
        assert "coverage preserved: True" in out
        assert "32/32" in out

    def test_run_with_figure(self, capsys):
        assert main(["run", "--circuit", "s27", "--n", "1", "--figure"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_atpg_s27(self, capsys, tmp_path):
        output = tmp_path / "t0.txt"
        assert (
            main(
                [
                    "atpg",
                    "--circuit",
                    "s27",
                    "--max-length",
                    "120",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "faults" in out
        lines = output.read_text().splitlines()
        assert all(set(line) <= {"0", "1"} for line in lines)
        assert all(len(line) == 4 for line in lines)

    def test_figure1_command(self, capsys):
        assert main(["figure1", "--circuit", "s27", "--n", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out
