"""Public API surface checks and behavioural round-trips."""

from __future__ import annotations

import pytest

import repro
from repro.circuit.bench_io import parse_bench, write_bench
from repro.core.sequence import TestSequence
from repro.sim.detection import DetectionRecord, FaultSimResult
from repro.sim.logicsim import GoodTrace, LogicSimulator
from repro.util.rng import SplitMix64


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_matches_package_metadata(self):
        assert repro.__version__ == "1.0.0"

    def test_key_entry_points_importable(self):
        from repro import (
            CircuitBuilder,
            ExpansionConfig,
            FaultSimulator,
            LoadAndExpandScheme,
            SelectionConfig,
            TestSequence,
            expand,
            load_circuit,
        )

        entry_points = (
            CircuitBuilder,
            ExpansionConfig,
            FaultSimulator,
            LoadAndExpandScheme,
            SelectionConfig,
            TestSequence,
        )
        assert all(isinstance(obj, type) for obj in entry_points)
        assert callable(expand)
        assert callable(load_circuit)


class TestSessionFacadeSurface:
    def test_facade_exports(self):
        from repro import (
            MachineProfile,
            RunOutcome,
            RunRequest,
            RunResult,
            Session,
            calibrate,
            use_session,
        )

        assert all(
            isinstance(obj, type)
            for obj in (MachineProfile, RunOutcome, RunRequest, RunResult, Session)
        )
        assert callable(calibrate)
        assert callable(use_session)
        for name in (
            "Session",
            "RunRequest",
            "RunResult",
            "RunOutcome",
            "MachineProfile",
            "use_session",
            "calibrate",
        ):
            assert name in repro.__all__, name

    def test_deprecated_factories_warn_and_delegate(self, s27):
        with pytest.warns(DeprecationWarning, match="Session.fault_simulator"):
            simulator = repro.make_fault_simulator(s27)
        simulator.close()
        with pytest.warns(DeprecationWarning, match="Session.sequence_simulator"):
            simulator = repro.make_sequence_simulator(s27)
        simulator.close()
        with repro.Session() as session:
            compiled = session.compile(s27)
        with pytest.warns(DeprecationWarning, match="Session.trace_cache"):
            cache = repro.get_trace_cache(compiled)
        assert cache is not None

    def test_get_worker_pool_shim_warns(self):
        # workers=1 is rejected by the pool itself; the warning must fire
        # before that validation to prove the shim path is exercised.
        with pytest.warns(DeprecationWarning, match="Session.worker_pool"):
            with pytest.raises(Exception):
                repro.get_worker_pool(1)


class TestConfigJsonRoundTrips:
    def test_selection_config_round_trip(self):
        config = repro.SelectionConfig(
            expansion=repro.ExpansionConfig(repetitions=8),
            seed=7,
            workers=2,
        )
        payload = config.to_json()
        assert payload["expansion"]["repetitions"] == 8
        assert repro.SelectionConfig.from_json(payload) == config

    def test_atpg_config_round_trip(self):
        from repro.atpg.config import AtpgConfig

        config = AtpgConfig(seed=3, max_length=50, workers=2)
        assert AtpgConfig.from_json(config.to_json()) == config

    def test_run_request_round_trip(self):
        request = repro.RunRequest(
            kind="scheme",
            circuit="s27",
            selection=repro.SelectionConfig(
                expansion=repro.ExpansionConfig(repetitions=2)
            ),
            label="round-trip",
        )
        clone = repro.RunRequest.from_json(request.to_json())
        assert clone == request

    def test_run_result_fingerprint_guard(self):
        result = repro.RunResult(
            kind="scheme",
            circuit_name="s27",
            circuit_hash="abc",
            data={"n": 2},
            timings={"t0_simulation_seconds": 1.0},
        )
        payload = result.to_json()
        # Timings are observability, not identity.
        identical = dict(payload)
        identical["timings"] = {"t0_simulation_seconds": 9.9}
        assert (
            repro.RunResult.from_json(identical).fingerprint()
            == result.fingerprint()
        )
        tampered = dict(payload)
        tampered["data"] = {"n": 3}
        with pytest.raises(repro.ReproError):
            repro.RunResult.from_json(tampered)

    def test_run_request_validation(self):
        with pytest.raises(repro.ReproError):
            repro.RunRequest(kind="nonsense", circuit="s27")
        with pytest.raises(repro.ReproError):
            repro.RunRequest(kind="scheme")


class TestBenchBehavioralRoundTrip:
    def test_serialized_circuit_simulates_identically(self, small_synthetic):
        """write_bench -> parse_bench must preserve behaviour, not just text."""
        text = write_bench(small_synthetic)
        reparsed = parse_bench(text, name=small_synthetic.name)
        rng = SplitMix64(99)
        stimulus = TestSequence(
            [
                [rng.next_u64() & 1 for _ in range(small_synthetic.num_inputs)]
                for _ in range(25)
            ]
        )
        original = LogicSimulator(small_synthetic).run(stimulus)
        round_trip = LogicSimulator(reparsed).run(stimulus)
        assert original.po_values == round_trip.po_values
        assert original.final_state == round_trip.final_state


class TestDetectionRecords:
    def test_valid_records(self):
        from repro.faults.model import STEM, Fault, FaultSite

        fault = Fault(FaultSite("a", STEM), 0)
        DetectionRecord(fault=fault, detected=True, detection_time=3)
        DetectionRecord(fault=fault, detected=False, detection_time=None)

    def test_inconsistent_records_rejected(self):
        from repro.faults.model import STEM, Fault, FaultSite

        fault = Fault(FaultSite("a", STEM), 0)
        with pytest.raises(ValueError):
            DetectionRecord(fault=fault, detected=True, detection_time=None)
        with pytest.raises(ValueError):
            DetectionRecord(fault=fault, detected=False, detection_time=2)

    def test_result_coverage_empty(self):
        result = FaultSimResult(sequence_length=5, total_faults=0)
        assert result.coverage == 0.0
        assert result.num_detected == 0


class TestGoodTrace:
    def test_known_fraction_empty(self):
        trace = GoodTrace(po_values=[], final_state=[])
        assert trace.known_output_fraction() == 0.0
        assert trace.length == 0

    def test_length(self, s27, s27_t0):
        trace = LogicSimulator(s27).run(s27_t0)
        assert trace.length == 10
