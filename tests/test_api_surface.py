"""Public API surface checks and behavioural round-trips."""

from __future__ import annotations

import pytest

import repro
from repro.circuit.bench_io import parse_bench, write_bench
from repro.core.sequence import TestSequence
from repro.sim.detection import DetectionRecord, FaultSimResult
from repro.sim.logicsim import GoodTrace, LogicSimulator
from repro.util.rng import SplitMix64


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_matches_package_metadata(self):
        assert repro.__version__ == "1.0.0"

    def test_key_entry_points_importable(self):
        from repro import (
            CircuitBuilder,
            ExpansionConfig,
            FaultSimulator,
            LoadAndExpandScheme,
            SelectionConfig,
            TestSequence,
            expand,
            load_circuit,
        )

        entry_points = (
            CircuitBuilder,
            ExpansionConfig,
            FaultSimulator,
            LoadAndExpandScheme,
            SelectionConfig,
            TestSequence,
        )
        assert all(isinstance(obj, type) for obj in entry_points)
        assert callable(expand)
        assert callable(load_circuit)


class TestBenchBehavioralRoundTrip:
    def test_serialized_circuit_simulates_identically(self, small_synthetic):
        """write_bench -> parse_bench must preserve behaviour, not just text."""
        text = write_bench(small_synthetic)
        reparsed = parse_bench(text, name=small_synthetic.name)
        rng = SplitMix64(99)
        stimulus = TestSequence(
            [
                [rng.next_u64() & 1 for _ in range(small_synthetic.num_inputs)]
                for _ in range(25)
            ]
        )
        original = LogicSimulator(small_synthetic).run(stimulus)
        round_trip = LogicSimulator(reparsed).run(stimulus)
        assert original.po_values == round_trip.po_values
        assert original.final_state == round_trip.final_state


class TestDetectionRecords:
    def test_valid_records(self):
        from repro.faults.model import STEM, Fault, FaultSite

        fault = Fault(FaultSite("a", STEM), 0)
        DetectionRecord(fault=fault, detected=True, detection_time=3)
        DetectionRecord(fault=fault, detected=False, detection_time=None)

    def test_inconsistent_records_rejected(self):
        from repro.faults.model import STEM, Fault, FaultSite

        fault = Fault(FaultSite("a", STEM), 0)
        with pytest.raises(ValueError):
            DetectionRecord(fault=fault, detected=True, detection_time=None)
        with pytest.raises(ValueError):
            DetectionRecord(fault=fault, detected=False, detection_time=2)

    def test_result_coverage_empty(self):
        result = FaultSimResult(sequence_length=5, total_faults=0)
        assert result.coverage == 0.0
        assert result.num_detected == 0


class TestGoodTrace:
    def test_known_fraction_empty(self):
        trace = GoodTrace(po_values=[], final_state=[])
        assert trace.known_output_fraction() == 0.0
        assert trace.length == 0

    def test_length(self, s27, s27_t0):
        trace = LogicSimulator(s27).run(s27_t0)
        assert trace.length == 10
