"""Tests for the ATPG substrate: phases, compaction, engine contract."""

from __future__ import annotations

import pytest

from repro.atpg.compaction import compact_sequence
from repro.atpg.config import AtpgConfig
from repro.atpg.engine import generate_t0
from repro.atpg.genetic import attack_fault
from repro.atpg.observe import FaultObserver
from repro.atpg.random_gen import (
    crossover,
    mutate_sequence,
    random_sequence,
    random_vector,
    weighted_sequence,
)
from repro.atpg.restoration import restoration_compact
from repro.core.sequence import TestSequence
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator
from repro.util.rng import SplitMix64


class TestRandomGen:
    def test_random_vector_shape(self):
        rng = SplitMix64(1)
        vector = random_vector(rng, 16)
        assert len(vector) == 16
        assert set(vector) <= {0, 1}

    def test_random_sequence_shape(self):
        seq = random_sequence(SplitMix64(2), 5, 7)
        assert len(seq) == 7
        assert seq.width == 5

    def test_weighted_sequence_bias(self):
        heavy = weighted_sequence(SplitMix64(3), 50, 40, 0.9)
        ones = sum(sum(v) for v in heavy)
        assert ones > 0.7 * 50 * 40

    def test_mutation_preserves_shape(self):
        seq = random_sequence(SplitMix64(4), 6, 10)
        mutated = mutate_sequence(SplitMix64(5), seq, 0.3)
        assert len(mutated) == len(seq)
        assert mutated.width == seq.width

    def test_mutation_zero_probability_is_identity(self):
        seq = random_sequence(SplitMix64(6), 6, 10)
        assert mutate_sequence(SplitMix64(7), seq, 0.0) == seq

    def test_crossover_properties(self):
        left = random_sequence(SplitMix64(8), 4, 6)
        right = random_sequence(SplitMix64(9), 4, 9)
        child = crossover(SplitMix64(10), left, right)
        assert child.width == 4
        assert 1 <= len(child) <= len(left) + len(right)

    def test_crossover_with_empty(self):
        left = random_sequence(SplitMix64(11), 4, 5)
        child = crossover(SplitMix64(12), left, TestSequence.empty(4))
        assert child == left


class TestObserver:
    def test_detectable_fault_is_detected(self, s27, s27_universe, s27_t0):
        observer = FaultObserver(CompiledCircuit(s27))
        fault_sim = FaultSimulator(s27)
        result = fault_sim.run(s27_t0, list(s27_universe.faults()))
        fault = next(iter(result.detection_time))
        observation = observer.observe(fault, s27_t0)
        assert observation.detected
        assert observation.detected_at == result.detection_time[fault]

    def test_divergence_fields_nonnegative(self, s27, s27_universe, s27_t0):
        observer = FaultObserver(CompiledCircuit(s27))
        for fault in list(s27_universe.faults())[:5]:
            observation = observer.observe(fault, s27_t0)
            assert observation.max_state_divergence >= 0
            assert observation.divergence_area >= observation.final_state_divergence * 0

    def test_empty_sequence(self, s27, s27_universe):
        observer = FaultObserver(CompiledCircuit(s27))
        observation = observer.observe(s27_universe.fault(0), TestSequence([]))
        assert not observation.detected
        assert observation.max_state_divergence == 0


class TestGenetic:
    def test_ga_finds_an_s27_fault(self, s27, s27_universe):
        config = AtpgConfig(
            genetic_population=8, genetic_generations=6, genetic_sequence_length=10
        )
        outcome = attack_fault(CompiledCircuit(s27), s27_universe.fault(0), config, salt=0)
        assert outcome.succeeded
        assert FaultSimulator(s27).detects(outcome.sequence, s27_universe.fault(0))

    def test_ga_is_deterministic(self, s27, s27_universe):
        config = AtpgConfig(genetic_population=6, genetic_generations=4)
        a = attack_fault(CompiledCircuit(s27), s27_universe.fault(3), config, salt=1)
        b = attack_fault(CompiledCircuit(s27), s27_universe.fault(3), config, salt=1)
        assert a.sequence == b.sequence
        assert a.evaluations == b.evaluations


class TestCompaction:
    def test_omission_compaction_preserves_coverage(self, s27, s27_universe, s27_t0):
        compiled = CompiledCircuit(s27)
        faults = list(s27_universe.faults())
        padded = s27_t0.extend(s27_t0)  # redundant second half
        compacted, stats = compact_sequence(compiled, padded, faults, seed=1)
        before = set(FaultSimulator(s27).run(padded, faults).detection_time)
        after = set(FaultSimulator(s27).run(compacted, faults).detection_time)
        assert after >= before
        assert stats.final_length <= stats.original_length
        assert len(compacted) == stats.final_length

    def test_restoration_preserves_coverage(self, s27, s27_universe, s27_t0):
        compiled = CompiledCircuit(s27)
        faults = list(s27_universe.faults())
        padded = s27_t0.extend(s27_t0)
        compacted, stats = restoration_compact(compiled, padded, faults)
        before = set(FaultSimulator(s27).run(padded, faults).detection_time)
        after = set(FaultSimulator(s27).run(compacted, faults).detection_time)
        assert after >= before
        assert stats.final_length <= stats.original_length
        assert stats.restoration_events >= 1
        assert stats.ratio <= 1.0

    def test_restoration_on_undetecting_sequence(self, s27, s27_universe):
        compiled = CompiledCircuit(s27)
        constant = TestSequence([[0, 0, 0, 0]])
        compacted, stats = restoration_compact(
            compiled, constant, list(s27_universe.faults())
        )
        # The all-zero vector detects nothing by itself -> empty result.
        assert stats.final_length == len(compacted)


class TestEngine:
    def test_s27_full_coverage(self, s27, s27_universe):
        result = generate_t0(s27, AtpgConfig(max_length=200), universe=s27_universe)
        assert result.detected == 32
        assert result.coverage == 1.0
        assert result.length <= 200
        # The generated sequence really achieves what the result claims.
        sim = FaultSimulator(s27).run(result.sequence, list(s27_universe.faults()))
        assert sim.num_detected == 32

    def test_deterministic(self, s27):
        a = generate_t0(s27, AtpgConfig(max_length=150, seed=5))
        b = generate_t0(s27, AtpgConfig(max_length=150, seed=5))
        assert a.sequence == b.sequence

    def test_seed_changes_outcome(self, s27):
        a = generate_t0(s27, AtpgConfig(max_length=150, seed=5))
        b = generate_t0(s27, AtpgConfig(max_length=150, seed=6))
        assert a.sequence != b.sequence

    def test_max_length_respected(self, medium_synthetic):
        result = generate_t0(
            medium_synthetic,
            AtpgConfig(max_length=40, genetic_targets=0),
        )
        assert result.length <= 40

    def test_phase_log_populated(self, s27):
        result = generate_t0(s27, AtpgConfig(max_length=150))
        assert any(line.startswith("random:") for line in result.phase_log)
        assert any(
            line.startswith(("restoration:", "omission:")) for line in result.phase_log
        )

    def test_no_compaction_option(self, s27):
        result = generate_t0(s27, AtpgConfig(max_length=150, run_compaction=False))
        assert result.compaction is None

    def test_omission_method_option(self, s27):
        result = generate_t0(
            s27,
            AtpgConfig(max_length=120, compaction_method="omission"),
        )
        assert result.detected == 32

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AtpgConfig(max_length=0)
        with pytest.raises(ValueError):
            AtpgConfig(genetic_population=1)
        with pytest.raises(ValueError):
            AtpgConfig(compaction_method="magic")
