"""Tests for table rendering and the stopwatch."""

from __future__ import annotations

import time

import pytest

from repro.util.text import format_table, ratio
from repro.util.timing import Stopwatch


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["name", "x"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "22" in lines[3]

    def test_title_line(self):
        out = format_table(["c"], [["v"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_right_alignment_of_value_columns(self):
        out = format_table(["name", "val"], [["a", 1], ["b", 100]])
        rows = out.splitlines()[2:]
        # Both value cells end at the same column.
        assert rows[0].rstrip().endswith("1")
        assert rows[1].rstrip().endswith("100")
        assert len(rows[1].rstrip()) >= len(rows[0].rstrip())

    def test_float_formatting(self):
        out = format_table(["c", "r"], [["x", 0.4567]])
        assert "0.46" in out

    def test_column_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestRatio:
    def test_normal(self):
        assert ratio(1, 4) == 0.25

    def test_zero_denominator(self):
        assert ratio(5, 0) == 0.0


class TestStopwatch:
    def test_measures_time(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed >= 0.009

    def test_accumulates_across_intervals(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.005)
        first = watch.stop()
        watch.start()
        time.sleep(0.005)
        second = watch.stop()
        assert second > first

    def test_seconds_property_live(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        assert watch.seconds > 0.0

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.005)
        assert watch.seconds >= 0.004

    def test_stop_without_start_is_safe(self):
        assert Stopwatch().stop() == 0.0
