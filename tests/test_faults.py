"""Tests for the fault model: sites, collapsing, universe."""

from __future__ import annotations

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.faults.collapse import collapse_faults
from repro.faults.model import BRANCH, STEM, Fault, FaultSite
from repro.faults.sites import enumerate_faults, enumerate_sites


class TestModel:
    def test_fault_str(self):
        stem = Fault(FaultSite("G11", STEM), 1)
        assert str(stem) == "G11 SA1"
        branch = Fault(FaultSite("G11", BRANCH, sink="G17", pin=0, load_kind="gate"), 0)
        assert str(branch) == "G11->G17[0] SA0"

    def test_invalid_stuck_value(self):
        with pytest.raises(ValueError):
            Fault(FaultSite("a", STEM), 2)

    def test_is_stem(self):
        assert Fault(FaultSite("a", STEM), 0).is_stem
        assert not Fault(FaultSite("a", BRANCH, "g", 0, "gate"), 0).is_stem

    def test_faults_are_orderable_and_hashable(self):
        faults = enumerate_faults_for_simple()
        assert sorted(faults)
        assert len(set(faults)) == len(faults)


def enumerate_faults_for_simple():
    builder = CircuitBuilder("simple")
    builder.add_input("a").add_input("b")
    builder.add_and("y", "a", "b")
    builder.add_output("y")
    return enumerate_faults(builder.build())


class TestSites:
    def test_fanout_free_circuit_has_only_stems(self):
        sites = enumerate_sites(
            CircuitBuilder("c")
            .add_input("a")
            .add_input("b")
            .add_and("y", "a", "b")
            .add_output("y")
            .build()
        )
        assert all(site.kind == STEM for site in sites)
        assert {site.signal for site in sites} == {"a", "b", "y"}

    def test_branches_created_on_fanout(self):
        circuit = (
            CircuitBuilder("c")
            .add_input("a")
            .add_not("u", "a")
            .add_not("v", "a")
            .add_output("u")
            .add_output("v")
            .build()
        )
        sites = enumerate_sites(circuit)
        branches = [s for s in sites if s.kind == BRANCH]
        assert {(b.signal, b.sink) for b in branches} == {("a", "u"), ("a", "v")}

    def test_po_and_dff_loads_are_branch_sites(self, s27):
        sites = enumerate_sites(s27)
        # G11 fans out to gate G10, gate G17 and flop G6.
        g11_branches = [s for s in sites if s.signal == "G11" and s.kind == BRANCH]
        assert {b.load_kind for b in g11_branches} == {"gate", "dff"}

    def test_uncollapsed_count_s27(self, s27):
        # 17 stems + 9 branches (G8 x2, G11 x3, G12 x2, G14 x2), both values.
        assert len(enumerate_faults(s27)) == 52


class TestCollapse:
    def test_s27_collapses_to_paper_count(self, s27):
        result = collapse_faults(s27)
        assert result.total_uncollapsed == 52
        assert result.total_collapsed == 32  # matches the paper's Table 2

    def test_inverter_equivalence(self):
        circuit = (
            CircuitBuilder("c").add_input("a").add_not("y", "a").add_output("y").build()
        )
        result = collapse_faults(circuit)
        # a SA0 == y SA1 and a SA1 == y SA0 -> 2 classes from 4 faults.
        assert result.total_collapsed == 2
        rep_of = result.class_of
        a_sa0 = Fault(FaultSite("a", STEM), 0)
        y_sa1 = Fault(FaultSite("y", STEM), 1)
        assert rep_of[a_sa0] == rep_of[y_sa1]

    def test_buffer_equivalence_keeps_polarity(self):
        circuit = (
            CircuitBuilder("c").add_input("a").add_buf("y", "a").add_output("y").build()
        )
        rep_of = collapse_faults(circuit).class_of
        assert rep_of[Fault(FaultSite("a", STEM), 0)] == rep_of[
            Fault(FaultSite("y", STEM), 0)
        ]
        assert rep_of[Fault(FaultSite("a", STEM), 0)] != rep_of[
            Fault(FaultSite("y", STEM), 1)
        ]

    def test_and_gate_controlling_class(self):
        circuit = (
            CircuitBuilder("c")
            .add_input("a")
            .add_input("b")
            .add_and("y", "a", "b")
            .add_output("y")
            .build()
        )
        result = collapse_faults(circuit)
        rep_of = result.class_of
        # {a SA0, b SA0, y SA0} is one class; 6 -> 4 faults.
        assert result.total_collapsed == 4
        assert (
            rep_of[Fault(FaultSite("a", STEM), 0)]
            == rep_of[Fault(FaultSite("b", STEM), 0)]
            == rep_of[Fault(FaultSite("y", STEM), 0)]
        )

    def test_nor_gate_class(self):
        circuit = (
            CircuitBuilder("c")
            .add_input("a")
            .add_input("b")
            .add_nor("y", "a", "b")
            .add_output("y")
            .build()
        )
        rep_of = collapse_faults(circuit).class_of
        assert rep_of[Fault(FaultSite("a", STEM), 1)] == rep_of[
            Fault(FaultSite("y", STEM), 0)
        ]

    def test_xor_gate_not_collapsed(self):
        circuit = (
            CircuitBuilder("c")
            .add_input("a")
            .add_input("b")
            .add_xor("y", "a", "b")
            .add_output("y")
            .build()
        )
        assert collapse_faults(circuit).total_collapsed == 6

    def test_no_collapse_across_flops(self):
        circuit = (
            CircuitBuilder("c")
            .add_input("a")
            .add_flop("q", "a")
            .add_not("y", "q")
            .add_output("y")
            .build()
        )
        rep_of = collapse_faults(circuit).class_of
        # a (flop D side) and q (flop Q side) stay separate classes.
        assert rep_of[Fault(FaultSite("a", STEM), 0)] != rep_of[
            Fault(FaultSite("q", STEM), 0)
        ]

    def test_transitive_chain_collapse(self):
        circuit = (
            CircuitBuilder("c")
            .add_input("a")
            .add_not("u", "a")
            .add_not("v", "u")
            .add_output("v")
            .build()
        )
        result = collapse_faults(circuit)
        # a, u, v all equivalent pairwise -> 2 classes from 6 faults.
        assert result.total_collapsed == 2

    def test_representative_is_deterministic(self, s27):
        first = collapse_faults(s27).representatives
        second = collapse_faults(s27).representatives
        assert first == second

    def test_class_members_partition(self, s27):
        result = collapse_faults(s27)
        members_total = sum(
            len(result.class_members(rep)) for rep in result.representatives
        )
        assert members_total == result.total_uncollapsed


class TestUniverse:
    def test_ids_are_dense_and_stable(self, s27_universe):
        assert len(s27_universe) == 32
        for index, fault in enumerate(s27_universe.faults()):
            assert s27_universe.id_of(fault) == index
            assert s27_universe.fault(index) == fault

    def test_id_of_nonrepresentative_resolves_via_class(self, s27, s27_universe):
        collapse = s27_universe.collapse_result
        for member, representative in collapse.class_of.items():
            assert s27_universe.id_of(member) == s27_universe.id_of(representative)

    def test_subset_roundtrip(self, s27_universe):
        ids = [0, 5, 9]
        faults = s27_universe.subset(ids)
        assert s27_universe.ids(faults) == ids

    def test_total_uncollapsed(self, s27_universe):
        assert s27_universe.total_uncollapsed == 52
