"""Shared fixtures: reference circuits and sequences used across the suite."""

from __future__ import annotations

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.circuits.catalog import load_circuit, paper_t0_s27
from repro.circuits.generator import SyntheticSpec, generate_circuit
from repro.core.sequence import TestSequence
from repro.faults.universe import FaultUniverse
from repro.sim.backend import backend_unavailable_reason
from repro.sim.compiled import CompiledCircuit


@pytest.fixture
def require_backend():
    """Skip-with-reason gate for registry-parametrized backend axes.

    Suites parametrize over :func:`repro.sim.backend.registry_backends`
    (every registered engine, so new backends are auto-covered) and call
    this on the parameter: an engine unusable on this machine — numpy
    missing, no C compiler, ``REPRO_NO_NATIVE=1`` — becomes an explicit
    skip carrying its unavailability reason instead of a failure.
    """

    def _require(name: str) -> str:
        reason = backend_unavailable_reason(name)
        if reason is not None:
            pytest.skip(f"backend {name!r} unavailable: {reason}")
        return name

    return _require


@pytest.fixture(scope="session")
def s27() -> Circuit:
    """The real ISCAS-89 s27 netlist."""
    return load_circuit("s27")


@pytest.fixture(scope="session")
def s27_compiled(s27) -> CompiledCircuit:
    return CompiledCircuit(s27)


@pytest.fixture(scope="session")
def s27_universe(s27) -> FaultUniverse:
    return FaultUniverse(s27)


@pytest.fixture(scope="session")
def s27_t0() -> TestSequence:
    """The paper's Table 2 test sequence for s27."""
    return paper_t0_s27()


@pytest.fixture(scope="session")
def tiny_combinational() -> Circuit:
    """y = NAND(a, b) with no state — the smallest interesting circuit."""
    builder = CircuitBuilder("tiny_comb")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_nand("y", "a", "b")
    builder.add_output("y")
    return builder.build()


@pytest.fixture(scope="session")
def toggle_circuit() -> Circuit:
    """A one-flop toggle: q' = XOR(en, q), observed through a buffer."""
    builder = CircuitBuilder("toggle")
    builder.add_input("en")
    builder.add_flop("q", "d")
    builder.add_xor("d", "en", "q")
    builder.add_buf("out", "q")
    builder.add_output("out")
    return builder.build()


@pytest.fixture(scope="session")
def resettable_toggle() -> Circuit:
    """A toggle with a synchronous reset path so it initializes from all-X.

    ``d = AND(rst_n, XOR(en, q))`` — driving ``rst_n = 0`` forces the flop
    to a known 0 regardless of the X initial state.
    """
    builder = CircuitBuilder("resettable_toggle")
    builder.add_input("en")
    builder.add_input("rst_n")
    builder.add_flop("q", "d")
    builder.add_xor("t", "en", "q")
    builder.add_and("d", "rst_n", "t")
    builder.add_not("out", "q")
    builder.add_output("out")
    return builder.build()


@pytest.fixture(scope="session")
def small_synthetic() -> Circuit:
    """A small synthetic sequential circuit for cross-check tests."""
    spec = SyntheticSpec(
        name="mini",
        num_inputs=4,
        num_outputs=3,
        num_flops=4,
        num_gates=28,
        seed=424242,
    )
    return generate_circuit(spec)


@pytest.fixture(scope="session")
def medium_synthetic() -> Circuit:
    """A mid-size synthetic circuit for integration tests."""
    spec = SyntheticSpec(
        name="midi",
        num_inputs=5,
        num_outputs=4,
        num_flops=6,
        num_gates=60,
        seed=31337,
    )
    return generate_circuit(spec)
