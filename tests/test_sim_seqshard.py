"""Sharded-vs-serial parity for process-sharded candidate detection.

The contract of :mod:`repro.sim.seqshard` mirrors the fault axis's: the
worker count is a pure throughput knob.  Detection outcomes, first-hit
winners *and* the evaluated-candidate statistics must be bit-identical
to the serial :class:`~repro.sim.seqsim.SequenceBatchSimulator` for
every backend, worker count, transport (shared memory vs pickle
fallback) and start method.
"""

from __future__ import annotations

import pytest

from repro.circuits.catalog import load_circuit
from repro.core.config import SelectionConfig
from repro.core.ops import ExpansionConfig
from repro.core.procedure2 import build_subsequence_for_fault
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.universe import FaultUniverse
from repro.sim.backend import available_backends, registry_backends
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator
from repro.sim.seqshard import (
    NO_SHM_ENV,
    SERIAL_FALLBACK_CANDIDATES,
    ShardedSequenceBatchSimulator,
    make_sequence_simulator,
    plan_candidate_chunks,
)
from repro.sim.seqsim import SequenceBatchSimulator
from repro.sim.sharding import ShardedFaultSimulator, plan_chunks
from repro.sim.workerpool import get_worker_pool
from repro.util.rng import SplitMix64

#: Every test here exercises real multi-worker process pools; the quick
#: CI lane deselects them (tier-1 verify and the full matrix run all).
pytestmark = pytest.mark.slow

EXPANSION = ExpansionConfig(repetitions=2)


def _stimulus(circuit, length, seed=2026):
    rng = SplitMix64(seed)
    return TestSequence(
        [
            [rng.next_u64() & 1 for _ in range(circuit.num_inputs)]
            for _ in range(length)
        ]
    )


@pytest.fixture(scope="module")
def workload():
    """One syn298 fault with a deep detection time, plus candidate sets."""
    circuit = load_circuit("syn298")
    compiled = CompiledCircuit(circuit)
    t0 = _stimulus(circuit, 32)
    universe = FaultUniverse(circuit)
    detection = FaultSimulator(compiled).run(t0, list(universe.faults()))
    fault, udet = max(
        detection.detection_time.items(), key=lambda item: (item[1], str(item[0]))
    )
    undetected = [f for f in universe.faults() if f not in detection.detection_time]
    spans = [(u, udet) for u in range(udet, -1, -1)]
    base = t0.subsequence(0, udet)
    omissions = list(range(len(base)))
    return compiled, t0, fault, udet, spans, base, omissions, undetected


@pytest.fixture(scope="module")
def serial_reference(workload):
    """Serial outcomes per backend, computed once."""
    compiled, t0, fault, _udet, spans, base, omissions, _ = workload
    reference = {}
    for backend in available_backends():
        serial = SequenceBatchSimulator(compiled, batch_width=16, backend=backend)
        reference[backend] = {
            "windows": serial.detects_windows(fault, t0, spans, EXPANSION),
            "omissions": serial.detects_omissions(fault, base, omissions, EXPANSION),
            "first_window": serial.first_detecting_window(
                fault, t0, spans, EXPANSION, chunk=8
            ),
            "first_omission": serial.first_detecting_omission(
                fault, base, omissions, EXPANSION, chunk=8
            ),
        }
    return reference


class TestPlanCandidateChunks:
    def test_delegates_to_fault_axis_plan(self):
        assert plan_candidate_chunks(500, 4, 96) == plan_chunks(500, 4, 96)

    def test_covers_every_candidate_exactly_once(self):
        for num, workers, width in [(7, 4, 96), (385, 4, 96), (1000, 3, 128)]:
            chunks = plan_candidate_chunks(num, workers, width)
            assert chunks[0][0] == 0
            assert chunks[-1][1] == num
            for (_, prev_end), (start, end) in zip(chunks, chunks[1:]):
                assert start == prev_end
                assert end > start

    def test_empty(self):
        assert plan_candidate_chunks(0, 4, 96) == []


class TestFactory:
    def test_workers_one_is_plain_serial(self, workload):
        compiled = workload[0]
        simulator = make_sequence_simulator(compiled, workers=1)
        assert type(simulator) is SequenceBatchSimulator
        simulator.close()  # no-op on the serial class

    def test_workers_many_is_sharded(self, workload):
        # force_shard: this test must exercise the sharded class even on
        # a single-core runner, where the factory would fall back.
        compiled = workload[0]
        with make_sequence_simulator(
            compiled, workers=2, force_shard=True
        ) as simulator:
            assert isinstance(simulator, ShardedSequenceBatchSimulator)
            assert simulator.workers == 2

    def test_single_core_machine_falls_back_to_serial(self, workload, monkeypatch):
        compiled = workload[0]
        monkeypatch.setattr(
            "repro.sim.seqshard.single_core_machine", lambda: True
        )
        simulator = make_sequence_simulator(compiled, workers=4)
        assert type(simulator) is SequenceBatchSimulator
        simulator.close()

    def test_force_shard_overrides_single_core_fallback(
        self, workload, monkeypatch
    ):
        compiled = workload[0]
        monkeypatch.setattr(
            "repro.sim.seqshard.single_core_machine", lambda: True
        )
        with make_sequence_simulator(
            compiled, workers=2, force_shard=True
        ) as simulator:
            assert isinstance(simulator, ShardedSequenceBatchSimulator)
            assert simulator.workers == 2

    def test_multi_core_machine_keeps_sharding(self, workload, monkeypatch):
        compiled = workload[0]
        monkeypatch.setattr(
            "repro.sim.seqshard.single_core_machine", lambda: False
        )
        with make_sequence_simulator(compiled, workers=2) as simulator:
            assert isinstance(simulator, ShardedSequenceBatchSimulator)

    def test_default_floor_scales_with_batch_width(self, workload):
        compiled = workload[0]
        with ShardedSequenceBatchSimulator(
            compiled, batch_width=96, workers=2
        ) as simulator:
            # One bit-parallel pass has nothing to parallelize.
            assert not simulator.should_shard(96)
            assert simulator.should_shard(97)
        with ShardedSequenceBatchSimulator(
            compiled, batch_width=8, workers=2
        ) as simulator:
            assert not simulator.should_shard(SERIAL_FALLBACK_CANDIDATES - 1)
            assert simulator.should_shard(SERIAL_FALLBACK_CANDIDATES)

    def test_invalid_worker_count_rejected(self, workload):
        compiled = workload[0]
        with pytest.raises(SimulationError):
            ShardedSequenceBatchSimulator(compiled, workers=-2)

    def test_small_sets_run_serially(self, workload):
        compiled, t0, fault, udet, *_ = workload
        with ShardedSequenceBatchSimulator(compiled, workers=4) as simulator:
            # Below the floor nothing touches the pool: no context exists
            # after the call.
            outcome = simulator.detects_windows(fault, t0, [(udet, udet)], EXPANSION)
            assert outcome in ([True], [False])
            assert simulator._context is None


@pytest.mark.parametrize("backend", registry_backends())
@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("scan_mode", ["fused", "stepped"])
class TestShardedParity:
    """Worker count is a pure throughput knob — and so is scan mode.

    The serial reference is computed with the default (fused) scans, so
    the ``stepped`` points also prove the per-step reference loop and
    the whole-sequence kernels agree across process boundaries.
    """

    def test_windows_omissions_and_first_hits(
        self,
        workload,
        serial_reference,
        backend,
        workers,
        scan_mode,
        require_backend,
    ):
        require_backend(backend)
        compiled, t0, fault, _udet, spans, base, omissions, _ = workload
        reference = serial_reference[backend]
        with ShardedSequenceBatchSimulator(
            compiled,
            batch_width=16,
            backend=backend,
            workers=workers,
            scan_mode=scan_mode,
            min_shard_candidates=1,
        ) as simulator:
            assert simulator.should_shard(len(spans))
            assert (
                simulator.detects_windows(fault, t0, spans, EXPANSION)
                == reference["windows"]
            )
            assert (
                simulator.detects_omissions(fault, base, omissions, EXPANSION)
                == reference["omissions"]
            )
            # First-hit: same winner and the same evaluated count (the
            # serial chunked-scan formula), for any worker count.
            assert (
                simulator.first_detecting_window(fault, t0, spans, EXPANSION, chunk=8)
                == reference["first_window"]
            )
            assert (
                simulator.first_detecting_omission(
                    fault, base, omissions, EXPANSION, chunk=8
                )
                == reference["first_omission"]
            )

    def test_explicit_candidates(
        self,
        workload,
        serial_reference,
        backend,
        workers,
        scan_mode,
        require_backend,
    ):
        require_backend(backend)
        compiled, t0, fault, udet, *_ = workload
        candidates = [t0.subsequence(u, udet) for u in range(udet, -1, -1)] + [t0]
        serial = SequenceBatchSimulator(
            compiled, batch_width=16, backend=backend
        ).detects(fault, candidates)
        with ShardedSequenceBatchSimulator(
            compiled,
            batch_width=16,
            backend=backend,
            workers=workers,
            scan_mode=scan_mode,
            min_shard_candidates=1,
        ) as simulator:
            assert simulator.detects(fault, candidates) == serial


class TestFirstHitEdgeCases:
    def test_no_winner_evaluates_everything(self, workload):
        compiled, t0, _fault, _udet, spans, *_rest, undetected = workload
        assert undetected, "syn298 stimulus should leave some faults undetected"
        # A fault t0 misses may still be caught by an *expanded* window,
        # so scan for one whose whole window search comes up empty.
        identity = ExpansionConfig(
            repetitions=1, use_complement=False, use_shift=False, use_reverse=False
        )
        serial = SequenceBatchSimulator(compiled, batch_width=16)

        def never_detects(fault):
            outcome = serial.first_detecting_window(
                fault, t0, spans, identity, chunk=8
            )
            return outcome == (None, len(spans))

        ghost = next((fault for fault in undetected if never_detects(fault)), None)
        assert ghost is not None, "expected an expanded-window-proof fault"
        with ShardedSequenceBatchSimulator(
            compiled, batch_width=16, workers=2, min_shard_candidates=1
        ) as simulator:
            outcome = simulator.first_detecting_window(
                ghost, t0, spans, identity, chunk=8
            )
            assert outcome == (None, len(spans))

    def test_chunk_width_variants_agree_on_winner(self, workload):
        compiled, t0, fault, _udet, spans, *_ = workload
        serial = SequenceBatchSimulator(compiled, batch_width=16)
        with ShardedSequenceBatchSimulator(
            compiled, batch_width=16, workers=2, min_shard_candidates=1
        ) as simulator:
            for chunk in (1, 3, 16, None):
                expected = serial.first_detecting_window(
                    fault, t0, spans, EXPANSION, chunk=chunk
                )
                observed = simulator.first_detecting_window(
                    fault, t0, spans, EXPANSION, chunk=chunk
                )
                assert observed == expected, f"chunk={chunk}"


class TestTransports:
    def test_pickle_fallback_matches_shm(self, workload, monkeypatch):
        compiled, t0, fault, _udet, spans, base, omissions, _ = workload
        with ShardedSequenceBatchSimulator(
            compiled, batch_width=16, workers=2, min_shard_candidates=1
        ) as simulator:
            shm_windows = simulator.detects_windows(fault, t0, spans, EXPANSION)
            shm_omissions = simulator.detects_omissions(
                fault, base, omissions, EXPANSION
            )
        monkeypatch.setenv(NO_SHM_ENV, "1")
        with ShardedSequenceBatchSimulator(
            compiled, batch_width=16, workers=2, min_shard_candidates=1
        ) as simulator:
            assert (
                simulator.detects_windows(fault, t0, spans, EXPANSION) == shm_windows
            )
            assert (
                simulator.detects_omissions(fault, base, omissions, EXPANSION)
                == shm_omissions
            )

    def test_legacy_pipeline_ships_pickled_bases(self, workload):
        """The legacy pipeline shards too — through the pickle path."""
        compiled, t0, fault, _udet, spans, *_ = workload
        serial = SequenceBatchSimulator(
            compiled, batch_width=16, pipeline="legacy"
        ).detects_windows(fault, t0, spans, EXPANSION)
        with ShardedSequenceBatchSimulator(
            compiled,
            batch_width=16,
            pipeline="legacy",
            workers=2,
            min_shard_candidates=1,
        ) as simulator:
            assert simulator.detects_windows(fault, t0, spans, EXPANSION) == serial

    def test_spawn_start_method_parity(self, workload, monkeypatch):
        """The design must survive spawn (nothing inherited)."""
        compiled, t0, fault, _udet, spans, *_ = workload
        serial = SequenceBatchSimulator(compiled, batch_width=16).detects_windows(
            fault, t0, spans, EXPANSION
        )
        monkeypatch.setenv("REPRO_SHARDING_START_METHOD", "spawn")
        with ShardedSequenceBatchSimulator(
            compiled, batch_width=16, workers=2, min_shard_candidates=1
        ) as simulator:
            assert simulator.detects_windows(fault, t0, spans, EXPANSION) == serial


class TestSharedPool:
    def test_both_axes_borrow_one_pool(self, workload):
        """Fault- and candidate-axis simulators reuse the same processes."""
        compiled, t0, fault, _udet, spans, *_ = workload
        faults = list(FaultUniverse(compiled.circuit).faults())
        pool = get_worker_pool(2)
        with ShardedFaultSimulator(
            compiled, workers=2, min_shard_faults=1
        ) as fault_sim, ShardedSequenceBatchSimulator(
            compiled, batch_width=16, workers=2, min_shard_candidates=1
        ) as seq_sim:
            fault_sim.run(t0, faults)
            seq_sim.detects_windows(fault, t0, spans, EXPANSION)
            assert fault_sim._context.handle.pool is pool
            assert seq_sim._context.pool is pool
        # Closing the simulators retires their contexts but keeps the
        # session pool warm for the next borrower.
        assert not pool.closed
        assert get_worker_pool(2) is pool

    def test_finalizer_defers_retire_to_next_dispatch(self, workload):
        """__del__ must not broadcast on the shared pool; the retire is
        queued and flushed at the next owning-thread dispatch."""
        compiled, t0, fault, _udet, spans, *_ = workload
        simulator = ShardedSequenceBatchSimulator(
            compiled, batch_width=16, workers=2, min_shard_candidates=1
        )
        expected = simulator.detects_windows(fault, t0, spans, EXPANSION)
        pool = simulator._context.pool
        context_id = simulator._context.context_id
        simulator.__del__()
        assert context_id in pool._deferred_retires
        # The next simulator's dispatch flushes the queue and still
        # computes correct results.
        with ShardedSequenceBatchSimulator(
            compiled, batch_width=16, workers=2, min_shard_candidates=1
        ) as fresh:
            assert fresh.detects_windows(fault, t0, spans, EXPANSION) == expected
        assert pool._deferred_retires == []

    def test_context_republished_after_close(self, workload):
        compiled, t0, fault, _udet, spans, *_ = workload
        with ShardedSequenceBatchSimulator(
            compiled, batch_width=16, workers=2, min_shard_candidates=1
        ) as simulator:
            first = simulator.detects_windows(fault, t0, spans, EXPANSION)
            simulator.close()
            assert simulator._context is None
            # A further call transparently republishes the context.
            assert simulator.detects_windows(fault, t0, spans, EXPANSION) == first


class TestProcedure2EndToEnd:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_subsequence_identical_to_serial(self, workload, workers):
        """Procedure 2 output — sequence, ustart and the evaluated-candidate
        statistic — must not depend on the worker count."""
        compiled, t0, fault, udet, *_ = workload
        config = SelectionConfig(
            expansion=ExpansionConfig(repetitions=1),
            seed=17,
            search_batch_width=8,
            omission_batch_width=12,
        )
        serial = build_subsequence_for_fault(
            SequenceBatchSimulator(compiled, batch_width=12),
            t0,
            fault,
            udet,
            config,
            fault_salt=3,
        )
        with ShardedSequenceBatchSimulator(
            compiled, batch_width=12, workers=workers, min_shard_candidates=1
        ) as simulator:
            sharded = build_subsequence_for_fault(
                simulator, t0, fault, udet, config, fault_salt=3
            )
        assert sharded == serial
