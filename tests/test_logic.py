"""Tests for ternary values and the bit-parallel (H, L) encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.logic.encoding import (
    broadcast,
    full_mask,
    pack_bit_columns,
    pack_slots,
    slot_mask,
    unpack_slots,
)
from repro.logic.values import (
    ONE,
    X,
    ZERO,
    Ternary,
    ternary_and,
    ternary_not,
    ternary_or,
    ternary_xor,
)

ALL = [ZERO, ONE, X]


class TestTernaryOps:
    def test_not_truth_table(self):
        assert ternary_not(ZERO) is ONE
        assert ternary_not(ONE) is ZERO
        assert ternary_not(X) is X

    def test_and_truth_table(self):
        expected = {
            (ZERO, ZERO): ZERO, (ZERO, ONE): ZERO, (ZERO, X): ZERO,
            (ONE, ZERO): ZERO, (ONE, ONE): ONE, (ONE, X): X,
            (X, ZERO): ZERO, (X, ONE): X, (X, X): X,
        }
        for (a, b), want in expected.items():
            assert ternary_and(a, b) is want, (a, b)

    def test_or_truth_table(self):
        expected = {
            (ZERO, ZERO): ZERO, (ZERO, ONE): ONE, (ZERO, X): X,
            (ONE, ZERO): ONE, (ONE, ONE): ONE, (ONE, X): ONE,
            (X, ZERO): X, (X, ONE): ONE, (X, X): X,
        }
        for (a, b), want in expected.items():
            assert ternary_or(a, b) is want, (a, b)

    def test_xor_truth_table(self):
        for a in ALL:
            for b in ALL:
                result = ternary_xor(a, b)
                if a is X or b is X:
                    assert result is X
                else:
                    assert result is (ONE if a is not b else ZERO)

    def test_de_morgan_holds_in_ternary(self):
        for a in ALL:
            for b in ALL:
                left = ternary_not(ternary_and(a, b))
                right = ternary_or(ternary_not(a), ternary_not(b))
                assert left is right

    def test_from_char(self):
        assert Ternary.from_char("0") is ZERO
        assert Ternary.from_char("1") is ONE
        assert Ternary.from_char("x") is X
        assert Ternary.from_char("X") is X

    def test_from_char_invalid(self):
        with pytest.raises(ValueError):
            Ternary.from_char("2")

    def test_str(self):
        assert str(ZERO) == "0"
        assert str(ONE) == "1"
        assert str(X) == "X"


class TestEncoding:
    def test_full_mask(self):
        assert full_mask(1) == 1
        assert full_mask(8) == 255

    def test_full_mask_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            full_mask(0)

    def test_slot_mask(self):
        assert slot_mask(0) == 1
        assert slot_mask(5) == 32

    def test_slot_mask_negative(self):
        with pytest.raises(ValueError):
            slot_mask(-1)

    def test_pack_unpack_example(self):
        h, l = pack_slots([ONE, ZERO, X, ONE])
        assert h == 0b1001
        assert l == 0b0010
        assert unpack_slots(h, l, 4) == [ONE, ZERO, X, ONE]

    @given(st.lists(st.sampled_from(ALL), min_size=0, max_size=200))
    def test_pack_unpack_roundtrip(self, values):
        h, l = pack_slots(values)
        assert h & l == 0  # never both bits set
        assert unpack_slots(h, l, len(values)) == values

    def test_broadcast(self):
        assert broadcast(ONE, 4) == (0b1111, 0)
        assert broadcast(ZERO, 4) == (0, 0b1111)
        assert broadcast(X, 4) == (0, 0)

    def test_pack_bit_columns(self):
        assert pack_bit_columns([1, 0, 1, 1]) == 0b1101
        assert pack_bit_columns([]) == 0
