"""Tests for the EXPERIMENTS.md report generator."""

from __future__ import annotations

import pytest

from repro.harness.experiment import run_circuit_experiment
from repro.harness.report import build_experiments_markdown, write_experiments_report
from repro.harness.runner import SuiteResult
from repro.harness.suite import QUICK_SUITE


@pytest.fixture(scope="module")
def tiny_suite_result():
    record = run_circuit_experiment(QUICK_SUITE[0], n_values=(1, 2))
    return SuiteResult(suite_name="unit", records=[record])


class TestReport:
    def test_contains_all_sections(self, tiny_suite_result):
        text = build_experiments_markdown(tiny_suite_result)
        assert "# EXPERIMENTS" in text
        assert "## Table 3" in text
        assert "## Table 4" in text
        assert "## Table 5" in text
        assert "## Figure 1" in text
        assert "## Per-circuit notes" in text

    def test_mentions_suite_and_circuit(self, tiny_suite_result):
        text = build_experiments_markdown(tiny_suite_result)
        assert "`unit`" in text
        assert "s27" in text

    def test_per_circuit_notes_content(self, tiny_suite_result):
        text = build_experiments_markdown(tiny_suite_result)
        assert "coverage preserved: True" in text
        assert "paper Table 2 T0" in text

    def test_write_to_file(self, tiny_suite_result, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        write_experiments_report(tiny_suite_result, str(path))
        assert path.read_text().startswith("# EXPERIMENTS")

    def test_suite_tables_helper(self, tiny_suite_result):
        tables = tiny_suite_result.tables()
        assert "Table 3" in tables
        assert "Table 5" in tables
