"""Tests for the circuit builder and the .bench reader/writer."""

from __future__ import annotations

import pytest

from repro.circuit.bench_io import parse_bench, write_bench, write_bench_file, parse_bench_file
from repro.circuit.builder import CircuitBuilder
from repro.circuit.types import GateType
from repro.errors import BenchFormatError, NetlistError


class TestBuilder:
    def test_fluent_chain(self):
        circuit = (
            CircuitBuilder("c")
            .add_input("a")
            .add_input("b")
            .add_and("y", "a", "b")
            .add_output("y")
            .build()
        )
        assert circuit.num_gates == 1
        assert circuit.gates["y"].gate_type is GateType.AND

    def test_all_convenience_gates(self):
        builder = CircuitBuilder("c")
        builder.add_input("a").add_input("b")
        builder.add_and("g0", "a", "b")
        builder.add_nand("g1", "a", "b")
        builder.add_or("g2", "a", "b")
        builder.add_nor("g3", "a", "b")
        builder.add_not("g4", "a")
        builder.add_buf("g5", "b")
        builder.add_xor("g6", "a", "b")
        builder.add_output("g6")
        circuit = builder.build()
        types = {name: g.gate_type for name, g in circuit.gates.items()}
        assert types == {
            "g0": GateType.AND,
            "g1": GateType.NAND,
            "g2": GateType.OR,
            "g3": GateType.NOR,
            "g4": GateType.NOT,
            "g5": GateType.BUF,
            "g6": GateType.XOR,
        }

    def test_duplicate_driver_rejected_eagerly(self):
        builder = CircuitBuilder("c").add_input("a")
        with pytest.raises(NetlistError):
            builder.add_input("a")

    def test_duplicate_gate_output_rejected(self):
        builder = CircuitBuilder("c").add_input("a").add_not("y", "a")
        with pytest.raises(NetlistError):
            builder.add_not("y", "a")

    def test_duplicate_output_declaration_rejected(self):
        builder = CircuitBuilder("c").add_input("a").add_not("y", "a").add_output("y")
        with pytest.raises(NetlistError):
            builder.add_output("y")

    def test_flop_and_feedback(self):
        circuit = (
            CircuitBuilder("t")
            .add_input("en")
            .add_flop("q", "d")
            .add_xor("d", "en", "q")
            .add_output("q")
            .build()
        )
        assert circuit.flops == [("q", "d")]

    def test_build_validates(self):
        builder = CircuitBuilder("c").add_input("a").add_not("y", "zzz").add_output("y")
        with pytest.raises(NetlistError):
            builder.build()


class TestBenchParser:
    def test_parse_s27_shape(self, s27):
        assert s27.inputs == ["G0", "G1", "G2", "G3"]
        assert s27.outputs == ["G17"]
        assert s27.flops == [("G5", "G10"), ("G6", "G11"), ("G7", "G13")]
        assert s27.num_gates == 10

    def test_s27_gate_type_census_matches_iscas_header(self, s27):
        census: dict[GateType, int] = {}
        for gate in s27.gates.values():
            census[gate.gate_type] = census.get(gate.gate_type, 0) + 1
        # ISCAS-89 header: 2 inverters, 1 AND, 1 NAND, 2 OR, 4 NOR.
        assert census == {
            GateType.NOT: 2,
            GateType.AND: 1,
            GateType.NAND: 1,
            GateType.OR: 2,
            GateType.NOR: 4,
        }

    def test_roundtrip(self, s27):
        text = write_bench(s27)
        again = parse_bench(text, name="s27")
        assert again.inputs == s27.inputs
        assert again.outputs == s27.outputs
        assert again.flops == s27.flops
        assert again.gates == s27.gates

    def test_aliases(self):
        circuit = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\nn = INV(a)\ny = BUFF(n)\nz = BUFF(n)\n"
        )
        assert circuit.gates["n"].gate_type is GateType.NOT
        assert circuit.gates["y"].gate_type is GateType.BUF

    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        INPUT(a)   # trailing comment

        OUTPUT(y)
        y = NOT(a)
        """
        circuit = parse_bench(text)
        assert circuit.num_gates == 1

    def test_unknown_gate_type(self):
        with pytest.raises(BenchFormatError, match="unknown gate type"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_garbage_line(self):
        with pytest.raises(BenchFormatError, match="unrecognized"):
            parse_bench("INPUT(a)\nwhat is this\n")

    def test_dff_arity_error(self):
        with pytest.raises(BenchFormatError, match="DFF"):
            parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n")

    def test_double_assignment(self):
        with pytest.raises(BenchFormatError, match="assigned twice"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n")

    def test_file_roundtrip(self, s27, tmp_path):
        path = tmp_path / "c.bench"
        write_bench_file(s27, path)
        again = parse_bench_file(path)
        assert again.name == "c"
        assert again.gates == s27.gates

    def test_validation_runs_on_parse(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n")
