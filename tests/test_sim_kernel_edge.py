"""Edge-case tests for the bit-parallel kernel's patched evaluation paths.

Branch-fault injection takes a generic gather-patch-fold path in the
kernel that the common (unfaulted) fast path never exercises; these tests
pin its behaviour for every gate type, including the ones the synthetic
generator never emits (XNOR) and wide fan-ins.
"""

from __future__ import annotations

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.types import GateType
from repro.core.sequence import TestSequence
from repro.faults.model import BRANCH
from repro.faults.sites import enumerate_faults
from repro.sim.faultsim import FaultSimulator
from repro.sim.reference import ReferenceSimulator


def _fanout_gate_circuit(gate_type: GateType, fanin: int):
    """A gate whose inputs all come from one fanned-out source signal.

    The source drives an inverter chain so that every gate input pin is a
    distinct *branch* of some signal, forcing pin-patch injection.
    """
    builder = CircuitBuilder(f"edge_{gate_type.value}")
    builder.add_input("a")
    builder.add_input("b")
    sources = []
    for index in range(fanin):
        name = f"w{index}"
        builder.add_gate(
            name, GateType.NOT if index % 2 else GateType.BUF, ["a" if index % 3 else "b"]
        )
        sources.append(name)
    builder.add_gate("y", gate_type, sources)
    # Give every wire a second load so branch sites exist on all of them.
    for index, source in enumerate(sources):
        builder.add_gate(f"obs{index}", GateType.BUF, [source])
        builder.add_output(f"obs{index}")
    builder.add_output("y")
    return builder.build()


@pytest.mark.parametrize(
    "gate_type",
    [
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    ],
)
@pytest.mark.parametrize("fanin", [2, 3, 5])
def test_branch_faults_match_reference_for_all_gate_types(gate_type, fanin):
    circuit = _fanout_gate_circuit(gate_type, fanin)
    reference = ReferenceSimulator(circuit)
    fast = FaultSimulator(circuit, batch_width=8)
    stimulus = TestSequence([[0, 0], [0, 1], [1, 0], [1, 1], [1, 0]])
    branch_faults = [
        fault
        for fault in enumerate_faults(circuit)
        if fault.site.kind == BRANCH and fault.site.sink == "y"
    ]
    assert branch_faults, "construction must create branch sites into y"
    result = fast.run(stimulus, branch_faults)
    for fault in branch_faults:
        assert result.detection_time.get(fault) == reference.detection_time(
            stimulus, fault
        ), f"{gate_type.value} fan-in {fanin}: {fault}"


def test_not_and_buf_branch_faults():
    builder = CircuitBuilder("nb")
    builder.add_input("a")
    builder.add_not("inv", "a")
    builder.add_buf("buf", "a")
    builder.add_output("inv")
    builder.add_output("buf")
    circuit = builder.build()
    reference = ReferenceSimulator(circuit)
    fast = FaultSimulator(circuit)
    stimulus = TestSequence([[0], [1]])
    for fault in enumerate_faults(circuit):
        assert fast.run(stimulus, [fault]).detection_time.get(
            fault
        ) == reference.detection_time(stimulus, fault), str(fault)


def test_multiple_faults_on_same_gate_different_slots():
    """Two branch faults on the same gate pin set must stay independent."""
    circuit = _fanout_gate_circuit(GateType.NAND, 3)
    faults = [
        fault
        for fault in enumerate_faults(circuit)
        if fault.site.kind == BRANCH and fault.site.sink == "y"
    ]
    stimulus = TestSequence([[1, 1], [0, 1], [1, 0]])
    together = FaultSimulator(circuit).run(stimulus, faults)
    for fault in faults:
        alone = FaultSimulator(circuit).run(stimulus, [fault])
        assert together.detection_time.get(fault) == alone.detection_time.get(fault)
