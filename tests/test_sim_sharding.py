"""Sharded-vs-serial parity for process-sharded fault simulation.

The contract of :mod:`repro.sim.sharding` is that the worker count is a
pure throughput knob: detection masks, first-detection times and session
states must be bit-identical to the serial simulator for every backend
and every worker count, including universes smaller than the worker pool.
"""

from __future__ import annotations

import pytest

from repro.circuits.catalog import load_circuit
from repro.core.sequence import TestSequence
from repro.faults.universe import FaultUniverse
from repro.sim.backend import available_backends, registry_backends
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimSession, FaultSimulator
from repro.sim.sharding import (
    SERIAL_FALLBACK_FAULTS,
    ShardedFaultSimSession,
    ShardedFaultSimulator,
    make_fault_simulator,
    plan_chunks,
)
from repro.util.rng import SplitMix64

#: Every test here exercises real multi-worker process pools; the quick
#: CI lane deselects them (tier-1 verify and the full matrix run all).
pytestmark = pytest.mark.slow


def _stimulus(circuit, length, seed=2026):
    rng = SplitMix64(seed)
    return TestSequence(
        [
            [rng.next_u64() & 1 for _ in range(circuit.num_inputs)]
            for _ in range(length)
        ]
    )


@pytest.fixture(scope="module")
def syn298():
    circuit = load_circuit("syn298")
    compiled = CompiledCircuit(circuit)
    faults = list(FaultUniverse(circuit).faults())
    sequence = _stimulus(circuit, 24)
    return compiled, faults, sequence


@pytest.fixture(scope="module")
def serial_reference(syn298):
    """Serial detection times per backend, computed once."""
    compiled, faults, sequence = syn298
    reference = {}
    for backend in available_backends():
        result = FaultSimulator(compiled, backend=backend).run(sequence, faults)
        reference[backend] = result.detection_time
    return reference


class TestPlanChunks:
    def test_empty_universe(self):
        assert plan_chunks(0, 4, 192) == []

    def test_covers_every_fault_exactly_once(self):
        for num, workers, width in [(7, 4, 192), (467, 3, 100), (5000, 8, 512)]:
            chunks = plan_chunks(num, workers, width)
            assert chunks[0][0] == 0
            assert chunks[-1][1] == num
            for (_, prev_end), (start, end) in zip(chunks, chunks[1:]):
                assert start == prev_end
                assert end > start

    def test_universe_smaller_than_workers(self):
        chunks = plan_chunks(3, 8, 192)
        assert chunks == [(0, 1), (1, 2), (2, 3)]

    def test_never_splits_below_full_pass_needlessly(self):
        # 512 faults over 4 workers with width 512: 4 chunks of one full
        # 128-slot pass each, not 16 slivers.
        assert plan_chunks(512, 4, 512) == [
            (0, 128),
            (128, 256),
            (256, 384),
            (384, 512),
        ]

    def test_oversplit_emerges_on_large_universes(self):
        chunks = plan_chunks(8192, 4, 512)
        assert len(chunks) == 16
        assert all(end - start == 512 for start, end in chunks)

    def test_wide_chunks_align_to_batch_width(self):
        chunks = plan_chunks(2000, 4, 192)
        assert all(end - start == 192 for start, end in chunks[:-1])


class TestFactory:
    def test_workers_one_is_plain_serial(self, syn298):
        compiled, _, _ = syn298
        simulator = make_fault_simulator(compiled, workers=1)
        assert type(simulator) is FaultSimulator

    def test_workers_many_is_sharded(self, syn298):
        # force_shard: this test must exercise the sharded class even on
        # a single-core runner, where the factory would fall back.
        compiled, _, _ = syn298
        with make_fault_simulator(
            compiled, workers=2, force_shard=True
        ) as simulator:
            assert isinstance(simulator, ShardedFaultSimulator)
            assert simulator.workers == 2

    def test_single_core_machine_falls_back_to_serial(self, syn298, monkeypatch):
        compiled, _, _ = syn298
        monkeypatch.setattr(
            "repro.sim.sharding.single_core_machine", lambda: True
        )
        simulator = make_fault_simulator(compiled, workers=4)
        assert type(simulator) is FaultSimulator

    def test_force_shard_overrides_single_core_fallback(
        self, syn298, monkeypatch
    ):
        compiled, _, _ = syn298
        monkeypatch.setattr(
            "repro.sim.sharding.single_core_machine", lambda: True
        )
        with make_fault_simulator(
            compiled, workers=2, force_shard=True
        ) as simulator:
            assert isinstance(simulator, ShardedFaultSimulator)
            assert simulator.workers == 2

    def test_multi_core_machine_keeps_sharding(self, syn298, monkeypatch):
        compiled, _, _ = syn298
        monkeypatch.setattr(
            "repro.sim.sharding.single_core_machine", lambda: False
        )
        with make_fault_simulator(compiled, workers=2) as simulator:
            assert isinstance(simulator, ShardedFaultSimulator)

    def test_small_universe_falls_back_to_serial_session(self, syn298):
        compiled, faults, _ = syn298
        assert len(faults) < SERIAL_FALLBACK_FAULTS
        with ShardedFaultSimulator(compiled, workers=4) as simulator:
            assert not simulator.should_shard(len(faults))
            session = simulator.session(faults)
            assert type(session) is FaultSimSession

    def test_invalid_worker_count_rejected(self, syn298):
        compiled, _, _ = syn298
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            ShardedFaultSimulator(compiled, workers=-1)


@pytest.mark.parametrize("backend", registry_backends())
@pytest.mark.parametrize("workers", [2, 4])
class TestShardedParity:
    def test_run_and_session_match_serial(
        self, syn298, serial_reference, backend, workers, require_backend
    ):
        require_backend(backend)
        compiled, faults, sequence = syn298
        with ShardedFaultSimulator(
            compiled, backend=backend, workers=workers, min_shard_faults=1
        ) as simulator:
            assert simulator.should_shard(len(faults))

            # One-shot: identical first-detection times for every fault.
            sharded = simulator.run(sequence, faults)
            assert sharded.detection_time == serial_reference[backend]
            assert sharded.total_faults == len(faults)

            # Session: commits in two extensions, interleaved with peeks,
            # must track the serial session exactly (detections, states,
            # remaining set).
            serial_session = FaultSimulator(compiled, backend=backend).session(
                faults
            )
            sharded_session = simulator.session(faults)
            assert isinstance(sharded_session, ShardedFaultSimSession)
            half = len(sequence) // 2
            first = sequence.subsequence(0, half - 1)
            second = sequence.subsequence(half, len(sequence) - 1)
            assert sharded_session.peek(first) == serial_session.peek(first)
            assert sharded_session.commit(first) == serial_session.commit(first)
            assert sharded_session.peek(second) == serial_session.peek(second)
            assert sharded_session.commit(second) == serial_session.commit(second)
            assert (
                sharded_session.detection_time == serial_session.detection_time
            )
            assert set(sharded_session.remaining_faults) == set(
                serial_session.remaining_faults
            )
            # Two committed extensions must equal the one-shot full run.
            assert sharded_session.detection_time == serial_reference[backend]


class TestEdgeCases:
    def test_universe_smaller_than_worker_count(self, syn298):
        """Fewer faults than workers: chunks degrade to one fault each."""
        compiled, faults, sequence = syn298
        few = faults[:3]
        serial = FaultSimulator(compiled).run(sequence, few)
        with ShardedFaultSimulator(
            compiled, workers=4, min_shard_faults=1
        ) as simulator:
            sharded = simulator.run(sequence, few)
            assert sharded.detection_time == serial.detection_time

    def test_session_transitions_to_serial_as_faults_drop(self, syn298):
        """Fault dropping below the threshold mid-session stays exact."""
        compiled, faults, sequence = syn298
        serial_session = FaultSimulator(compiled).session(faults)
        # Threshold chosen so the first commit's detections push the
        # remaining set below it and later advances run serially.
        with ShardedFaultSimulator(
            compiled, workers=2, min_shard_faults=len(faults) - 40
        ) as simulator:
            session = simulator.session(faults)
            assert isinstance(session, ShardedFaultSimSession)
            half = len(sequence) // 2
            first = sequence.subsequence(0, half - 1)
            second = sequence.subsequence(half, len(sequence) - 1)
            assert session.commit(first) == serial_session.commit(first)
            assert not simulator.should_shard(session.num_remaining)
            assert session.commit(second) == serial_session.commit(second)
            assert session.detection_time == serial_session.detection_time

    def test_empty_sequence_and_empty_faults(self, syn298):
        compiled, faults, _ = syn298
        empty = TestSequence.empty(compiled.num_inputs)
        with ShardedFaultSimulator(
            compiled, workers=2, min_shard_faults=1
        ) as simulator:
            assert simulator.run(empty, faults).num_detected == 0
            result = simulator.run(_stimulus(compiled.circuit, 4), [])
            assert result.num_detected == 0

    def test_detects_single_fault_stays_serial(self, syn298):
        compiled, faults, sequence = syn298
        serial = FaultSimulator(compiled)
        with ShardedFaultSimulator(
            compiled, workers=2, min_shard_faults=1
        ) as simulator:
            for fault in faults[:5]:
                assert simulator.detects(sequence, fault) == serial.detects(
                    sequence, fault
                )

    def test_spawn_start_method_parity(self, syn298, monkeypatch):
        """The pool design must survive spawn (nothing inherited)."""
        compiled, faults, sequence = syn298
        monkeypatch.setenv("REPRO_SHARDING_START_METHOD", "spawn")
        serial = FaultSimulator(compiled).run(sequence, faults)
        with ShardedFaultSimulator(
            compiled, workers=2, min_shard_faults=1
        ) as simulator:
            sharded = simulator.run(sequence, faults)
            assert sharded.detection_time == serial.detection_time
