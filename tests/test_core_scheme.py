"""Tests for the end-to-end LoadAndExpandScheme orchestration."""

from __future__ import annotations

import pytest

from repro.core.config import SelectionConfig
from repro.core.ops import ExpansionConfig
from repro.core.scheme import LoadAndExpandScheme


@pytest.fixture(scope="module")
def s27_run(s27, s27_t0):
    scheme = LoadAndExpandScheme(s27)
    config = SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=7)
    return scheme.run(s27_t0, config)


class TestSchemeResult:
    def test_fault_accounting(self, s27_run):
        result = s27_run.result
        assert result.total_faults == 32
        assert result.detected_by_t0 == 32
        assert result.detected_by_scheme == 32
        assert result.coverage_preserved

    def test_before_after_consistency(self, s27_run):
        result = s27_run.result
        assert result.num_sequences_after <= result.num_sequences_before
        assert result.total_length_after <= result.total_length_before
        assert result.max_length_after <= result.max_length_before

    def test_ratios(self, s27_run):
        result = s27_run.result
        assert result.total_ratio == result.total_length_after / 10
        assert result.max_ratio == result.max_length_after / 10
        assert 0 < result.total_ratio <= 1.0

    def test_applied_test_length_is_8nl(self, s27_run):
        result = s27_run.result
        assert result.applied_test_length == 8 * 2 * result.total_length_after

    def test_timings_populated(self, s27_run):
        result = s27_run.result
        assert result.t0_simulation_seconds > 0
        assert result.procedure1_seconds > 0
        assert result.compaction_seconds > 0
        assert result.normalized_procedure1_time == pytest.approx(
            result.procedure1_seconds / result.t0_simulation_seconds
        )

    def test_run_objects_linked(self, s27_run):
        assert s27_run.selection.num_sequences == s27_run.result.num_sequences_after
        assert len(s27_run.udet) == 32
        assert s27_run.compaction.selection is s27_run.selection

    def test_repetitions_property(self, s27_run):
        assert s27_run.result.repetitions == 2


class TestSweep:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_all_n_values_preserve_coverage(self, s27, s27_t0, n):
        scheme = LoadAndExpandScheme(s27)
        run = scheme.run(
            s27_t0, SelectionConfig(expansion=ExpansionConfig(repetitions=n), seed=3)
        )
        assert run.result.coverage_preserved
        assert run.result.applied_test_length == (
            8 * n * run.result.total_length_after
        )

    def test_default_config(self, s27, s27_t0):
        run = LoadAndExpandScheme(s27).run(s27_t0)
        assert run.result.coverage_preserved

    def test_scheme_on_synthetic(self, medium_synthetic):
        from repro.atpg import generate_t0, AtpgConfig

        atpg = generate_t0(
            medium_synthetic, AtpgConfig(max_length=120, genetic_targets=0)
        )
        run = LoadAndExpandScheme(medium_synthetic).run(
            atpg.sequence,
            SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=3),
        )
        assert run.result.coverage_preserved
        assert run.result.detected_by_scheme == atpg.detected
