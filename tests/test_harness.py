"""Tests for the experiment harness: suites, experiments, tables, figures."""

from __future__ import annotations

import pytest

from repro.harness.experiment import run_circuit_experiment
from repro.harness.figures import figure1_intervals, render_figure1
from repro.harness.paper_data import (
    PAPER_AVERAGE_MAX_RATIO,
    PAPER_AVERAGE_TOTAL_RATIO,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
)
from repro.harness.suite import (
    FULL_SUITE,
    PAPER_N_VALUES,
    QUICK_SUITE,
    SuiteSpec,
    resolve_suite,
    suite_circuits,
)
from repro.harness.tables import render_table3, render_table4, render_table5


class TestSuite:
    def test_paper_n_sweep(self):
        assert PAPER_N_VALUES == (2, 4, 8, 16)

    def test_quick_subset_of_full(self):
        quick = {spec.circuit for spec in QUICK_SUITE}
        full = {spec.circuit for spec in FULL_SUITE}
        assert quick <= full

    def test_full_suite_covers_all_paper_rows(self):
        paper_names = {spec.paper_name for spec in FULL_SUITE if spec.paper_name}
        assert paper_names == set(PAPER_TABLE3)

    def test_resolve_by_name(self):
        assert resolve_suite("quick") == QUICK_SUITE

    def test_resolve_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUITE", raising=False)
        assert resolve_suite() == QUICK_SUITE
        monkeypatch.setenv("REPRO_SUITE", "full")
        assert resolve_suite() == FULL_SUITE

    def test_unknown_suite(self):
        with pytest.raises(ValueError):
            resolve_suite("gigantic")

    def test_suite_circuits_names(self):
        names = suite_circuits("quick")
        assert names[0] == "s27"
        assert all(isinstance(n, str) for n in names)


class TestPaperData:
    def test_twelve_rows_everywhere(self):
        assert len(PAPER_TABLE3) == 12
        assert len(PAPER_TABLE4) == 12
        assert len(PAPER_TABLE5) == 12

    def test_tables_agree_on_shared_columns(self):
        for name, row5 in PAPER_TABLE5.items():
            row3 = PAPER_TABLE3[name]
            assert row5.t0_length == row3.t0_length
            assert row5.n == row3.n
            assert row5.num_sequences == row3.num_sequences_after
            assert row5.total_length == row3.total_length_after
            assert row5.max_length == row3.max_length_after

    def test_test_length_is_8nl(self):
        for row in PAPER_TABLE5.values():
            assert row.test_length == 8 * row.n * row.total_length

    def test_published_averages_match_rows(self):
        total = sum(r.total_ratio for r in PAPER_TABLE5.values()) / 12
        maximum = sum(r.max_ratio for r in PAPER_TABLE5.values()) / 12
        assert total == pytest.approx(PAPER_AVERAGE_TOTAL_RATIO, abs=0.01)
        assert maximum == pytest.approx(PAPER_AVERAGE_MAX_RATIO, abs=0.01)

    def test_ratios_consistent_with_lengths(self):
        for row in PAPER_TABLE5.values():
            assert row.total_ratio == pytest.approx(
                row.total_length / row.t0_length, abs=0.01
            )
            assert row.max_ratio == pytest.approx(
                row.max_length / row.t0_length, abs=0.01
            )


@pytest.fixture(scope="module")
def s27_record():
    spec = QUICK_SUITE[0]
    assert spec.circuit == "s27"
    return run_circuit_experiment(spec, n_values=(1, 2))


class TestExperiment:
    def test_s27_uses_paper_t0(self, s27_record):
        assert s27_record.experiment.t0_source == "paper"
        assert s27_record.experiment.t0.to_strings()[0] == "0111"

    def test_sweep_runs_recorded(self, s27_record):
        assert set(s27_record.runs) == {1, 2}
        for run in s27_record.runs.values():
            assert run.result.coverage_preserved

    def test_best_n_rule(self, s27_record):
        best = s27_record.best_n
        best_result = s27_record.runs[best].result
        for n, run in s27_record.runs.items():
            key_best = (
                best_result.max_length_after,
                best_result.total_length_after,
                best_result.procedure1_seconds,
            )
            key_other = (
                run.result.max_length_after,
                run.result.total_length_after,
                run.result.procedure1_seconds,
            )
            assert key_best <= key_other

    def test_atpg_t0_cached_across_experiments(self):
        from repro.atpg.config import AtpgConfig
        from repro.harness.experiment import _T0_CACHE, prepare_experiment

        spec = SuiteSpec(
            circuit="syn298", paper_name="s298", atpg=AtpgConfig(max_length=60)
        )
        first = prepare_experiment(spec)
        assert (spec.circuit, spec.atpg) in _T0_CACHE
        second = prepare_experiment(spec)
        assert first.t0 == second.t0


class TestRenderers:
    def test_table3_contains_measured_and_paper_rows(self, s27_record):
        text = render_table3([s27_record])
        assert "Table 3" in text
        assert "s27" in text

    def test_table4_numbers_render(self, s27_record):
        text = render_table4([s27_record])
        assert "Proc.1" in text

    def test_table5_average_row(self, s27_record):
        text = render_table5([s27_record])
        assert "average" in text
        assert "paper:average" in text

    def test_paper_rows_appear_for_synthetic_circuits(self, s27_record):
        # Fabricate a paper_name so the paper row is emitted.
        s27_record.experiment.spec = SuiteSpec(
            circuit="s27", paper_name="s298"
        )
        text = render_table3([s27_record])
        assert "paper:s298" in text
        s27_record.experiment.spec = SuiteSpec(circuit="s27", paper_name="")


class TestFigure1:
    def test_intervals_match_selection(self, s27_record):
        run = s27_record.runs[1]
        intervals = figure1_intervals(run)
        assert len(intervals) == len(run.selection.sequences)
        for interval, entry in zip(intervals, run.selection.sequences):
            assert interval.start == entry.ustart
            assert interval.end == entry.udet
            assert interval.start <= interval.end
            assert interval.final_length <= interval.window_length

    def test_render_contains_axis_and_bars(self, s27_record):
        text = render_figure1(s27_record.runs[1])
        assert "Figure 1" in text
        assert "T0  |" in text
        assert "=" in text
        assert "window coverage" in text
