"""The good-machine trace cache: once-per-(circuit, sequence) semantics.

The contract of :mod:`repro.sim.trace`: the fault-free trace, the
observation plan and the packed base bit columns are computed exactly
once per (circuit, sequence) per session no matter how many simulators
or dispatches ask, the shared-memory publications resolve to identical
artifacts in workers, and none of it changes any detection result.
"""

from __future__ import annotations

import pytest

from repro.circuits.catalog import load_circuit, paper_t0_s27
from repro.core.sequence import TestSequence
from repro.faults.universe import FaultUniverse
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import LogicSimulator
from repro.sim.seqsim import SequenceBatchSimulator
from repro.sim.trace import (
    GoodTraceCache,
    base_bits_of,
    build_observation_plan,
    close_trace_caches,
    get_trace_cache,
    resolve_observation_plan,
    shm_available,
)
from repro.util.rng import SplitMix64

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships in CI
    np = None


def _stimulus(circuit, length, seed=2026):
    rng = SplitMix64(seed)
    return TestSequence(
        [
            [rng.next_u64() & 1 for _ in range(circuit.num_inputs)]
            for _ in range(length)
        ]
    )


@pytest.fixture(scope="module")
def compiled():
    return CompiledCircuit(load_circuit("s27"))


class TestGoodTraceCache:
    def test_trace_simulated_once_per_sequence(self, compiled):
        cache = GoodTraceCache(compiled)
        t0 = paper_t0_s27()
        first = cache.trace(t0)
        assert cache.stats()["trace_misses"] == 1
        assert cache.trace(t0) is first
        assert cache.stats() == {
            "trace_hits": 1,
            "trace_misses": 1,
            "bits_hits": 0,
            "bits_misses": 0,
        }

    def test_equal_sequences_share_one_entry(self, compiled):
        cache = GoodTraceCache(compiled)
        t0 = paper_t0_s27()
        twin = TestSequence(t0.vectors())
        assert twin is not t0
        cache.trace(t0)
        assert cache.trace(twin) is cache.trace(t0)
        assert cache.stats()["trace_misses"] == 1

    def test_matches_direct_simulation(self, compiled):
        cache = GoodTraceCache(compiled)
        t0 = paper_t0_s27()
        direct = LogicSimulator(compiled).run(t0)
        assert cache.trace(t0).po_values == direct.po_values
        assert cache.trace(t0).final_state == direct.final_state
        assert cache.observation_plan(t0) == build_observation_plan(direct)

    @pytest.mark.skipif(np is None, reason="packed bits require numpy")
    def test_base_bits_match_and_are_cached(self, compiled):
        cache = GoodTraceCache(compiled)
        t0 = paper_t0_s27()
        bits = cache.base_bits(t0)
        assert np.array_equal(bits, base_bits_of(t0, compiled.num_inputs))
        assert cache.base_bits(t0) is bits
        stats = cache.stats()
        assert (stats["bits_misses"], stats["bits_hits"]) == (1, 1)

    def test_lru_eviction_recomputes(self, compiled):
        cache = GoodTraceCache(compiled, capacity=2)
        sequences = [_stimulus(compiled.circuit, 4, seed=s) for s in range(3)]
        for sequence in sequences:
            cache.trace(sequence)
        # The first sequence was evicted; asking again is a fresh miss.
        cache.trace(sequences[0])
        assert cache.stats()["trace_misses"] == 4
        cache.close()

    def test_close_is_idempotent_and_cache_stays_usable(self, compiled):
        cache = GoodTraceCache(compiled)
        t0 = paper_t0_s27()
        cache.trace(t0)
        cache.close()
        cache.close()
        assert cache.trace(t0).length == len(t0)

    def test_registry_shares_one_cache_per_compiled(self, compiled):
        assert get_trace_cache(compiled) is get_trace_cache(compiled)
        other = CompiledCircuit(load_circuit("s27"))
        assert get_trace_cache(other) is not get_trace_cache(compiled)
        close_trace_caches()
        # After a session-wide close a fresh cache is handed out.
        assert isinstance(get_trace_cache(compiled), GoodTraceCache)


class TestPublication:
    @pytest.mark.skipif(np is None, reason="bit refs require numpy")
    def test_bits_ref_shape_and_fallback(self, compiled, monkeypatch):
        cache = GoodTraceCache(compiled)
        t0 = paper_t0_s27()
        try:
            ref = cache.bits_ref(t0)
            if shm_available():
                kind, _name, length, width = ref
                assert (kind, length, width) == ("shm", len(t0), t0.width)
                # Stable: the same segment is reused on the next ask.
                assert cache.bits_ref(t0) == ref
            monkeypatch.setenv("REPRO_SEQSHARD_NO_SHM", "1")
            kind, payload, length, width = cache.bits_ref(t0)
            assert kind == "bytes"
            assert np.array_equal(
                np.frombuffer(payload, dtype=np.uint8).reshape(length, width),
                base_bits_of(t0, compiled.num_inputs),
            )
        finally:
            cache.close()

    def test_plan_ref_roundtrip_or_inline(self, compiled, monkeypatch):
        cache = GoodTraceCache(compiled)
        t0 = paper_t0_s27()
        try:
            plan = cache.observation_plan(t0)
            ref = cache.plan_ref(t0)
            if ref is not None:
                # Parent-side resolution exercises the same attach +
                # unpickle path the workers run.
                assert resolve_observation_plan(ref) == plan
                assert cache.plan_ref(t0) == ref
            monkeypatch.setenv("REPRO_SEQSHARD_NO_SHM", "1")
            fresh = GoodTraceCache(compiled)
            assert fresh.plan_ref(t0) is None
            # Inline plans pass straight through the resolver.
            assert resolve_observation_plan(plan) == plan
        finally:
            cache.close()


class TestForkSafety:
    @pytest.mark.skipif(np is None, reason="shm publication requires numpy")
    def test_inherited_cache_never_unlinks_parent_segments(
        self, compiled, monkeypatch
    ):
        """A process that merely inherited a cache (fork workers do) must
        not destroy shm names the creating process still publishes."""
        if not shm_available():
            pytest.skip("shared memory unavailable")
        cache = GoodTraceCache(compiled)
        t0 = paper_t0_s27()
        ref = cache.bits_ref(t0)
        assert ref[0] == "shm"
        # Simulate the fork: same object, different pid.
        monkeypatch.setattr(cache, "_owner_pid", cache._owner_pid + 1)
        cache.close()
        # The segment name must still resolve (nothing was unlinked);
        # the test then performs the owner's balancing unlink itself.
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=ref[1])
        segment.close()
        segment.unlink()


class TestSimulatorIntegration:
    def test_fault_simulator_reuses_the_trace(self, compiled):
        close_trace_caches()
        t0 = paper_t0_s27()
        faults = list(FaultUniverse(compiled.circuit).faults())
        simulator = FaultSimulator(compiled)
        first = simulator.run(t0, faults)
        second = simulator.run(t0, faults)
        assert first.detection_time == second.detection_time
        stats = simulator.trace_cache.stats()
        assert stats["trace_misses"] == 1
        assert stats["trace_hits"] >= 1

    def test_two_simulators_share_one_cache(self, compiled):
        close_trace_caches()
        t0 = paper_t0_s27()
        faults = list(FaultUniverse(compiled.circuit).faults())
        fault_sim = FaultSimulator(compiled)
        fault_sim.run(t0, faults)
        other = FaultSimulator(compiled)
        other.run(t0, faults)
        assert other.trace_cache is fault_sim.trace_cache
        assert other.trace_cache.stats()["trace_misses"] == 1

    @pytest.mark.skipif(np is None, reason="packed pipeline requires numpy")
    def test_seqsim_packs_the_window_base_once(self, compiled):
        close_trace_caches()
        t0 = paper_t0_s27()
        faults = list(FaultUniverse(compiled.circuit).faults())
        from repro.core.ops import ExpansionConfig

        expansion = ExpansionConfig(repetitions=2)
        spans = [(u, len(t0) - 1) for u in range(len(t0) - 1, -1, -1)]
        simulator = SequenceBatchSimulator(compiled, batch_width=8)
        for fault in faults[:4]:
            simulator.detects_windows(fault, t0, spans, expansion)
        stats = simulator._trace_cache.stats()
        assert stats["bits_misses"] == 1
        assert stats["bits_hits"] >= 3

    def test_session_advances_bypass_the_cache(self, compiled):
        """Sessions start from evolving states — their plans are not the
        run-invariant trace and must not pollute (or hit) the cache."""
        close_trace_caches()
        t0 = paper_t0_s27()
        faults = list(FaultUniverse(compiled.circuit).faults())
        simulator = FaultSimulator(compiled)
        session = simulator.session(faults)
        extension = t0.subsequence(0, 4)
        session.commit(extension)
        session.commit(extension)
        # Only the plan for an all-X start would be cached; the second
        # commit's good machine starts from the advanced state.
        misses = simulator.trace_cache.stats()["trace_misses"]
        assert misses <= 1


@pytest.mark.slow
class TestShardedPlanPublication:
    """Fault-axis dispatches resolve the published plan bit-identically."""

    @pytest.fixture(scope="class")
    def workload(self):
        circuit = load_circuit("syn298")
        compiled = CompiledCircuit(circuit)
        t0 = _stimulus(circuit, 24)
        faults = list(FaultUniverse(circuit).faults())
        serial = FaultSimulator(compiled).run(t0, faults)
        return compiled, t0, faults, serial

    def test_shm_plan_matches_serial(self, workload):
        from repro.sim.sharding import ShardedFaultSimulator

        compiled, t0, faults, serial = workload
        with ShardedFaultSimulator(
            compiled, workers=2, min_shard_faults=1
        ) as simulator:
            sharded = simulator.run(t0, faults)
        assert sharded.detection_time == serial.detection_time

    def test_pickle_fallback_matches_serial(self, workload, monkeypatch):
        from repro.sim.sharding import ShardedFaultSimulator

        compiled, t0, faults, serial = workload
        monkeypatch.setenv("REPRO_SEQSHARD_NO_SHM", "1")
        with ShardedFaultSimulator(
            compiled, workers=2, min_shard_faults=1
        ) as simulator:
            assert simulator.trace_cache.plan_ref(t0) is None
            sharded = simulator.run(t0, faults)
        assert sharded.detection_time == serial.detection_time
