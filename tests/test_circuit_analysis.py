"""Tests for structural analysis utilities."""

from __future__ import annotations

from repro.circuit.analysis import (
    circuit_stats,
    combinational_depth,
    signal_levels,
    transitive_fanin,
)
from repro.circuit.builder import CircuitBuilder


def _chain(depth: int):
    builder = CircuitBuilder("chain")
    builder.add_input("a")
    previous = "a"
    for index in range(depth):
        name = f"n{index}"
        builder.add_not(name, previous)
        previous = name
    builder.add_output(previous)
    return builder.build()


class TestDepth:
    def test_inverter_chain_depth(self):
        assert combinational_depth(_chain(5)) == 5

    def test_gateless_net(self):
        builder = CircuitBuilder("wire")
        builder.add_input("a")
        builder.add_output("a")
        assert combinational_depth(builder.build()) == 0

    def test_s27_depth(self, s27):
        # Longest path: G0 -> G14 -> G8 -> G15/G16 -> G9 -> G11 -> G17.
        assert combinational_depth(s27) == 6

    def test_levels_are_consistent(self, s27):
        levels = signal_levels(s27)
        for gate in s27.gates.values():
            assert levels[gate.output] == 1 + max(levels[s] for s in gate.inputs)


class TestCones:
    def test_transitive_fanin_stops_at_state(self, s27):
        cone = transitive_fanin(s27, "G17")
        # G17 = NOT(G11), G11 = NOR(G5, G9); flop output G5 terminates.
        assert "G11" in cone and "G5" in cone
        assert "G10" not in cone  # behind the flop boundary

    def test_transitive_fanin_of_source(self, s27):
        assert transitive_fanin(s27, "G0") == {"G0"}


class TestStats:
    def test_s27_stats(self, s27):
        stats = circuit_stats(s27)
        assert stats.num_inputs == 4
        assert stats.num_outputs == 1
        assert stats.num_flops == 3
        assert stats.num_gates == 10
        assert stats.num_signals == 17
        assert stats.max_fanin == 2
        assert stats.max_fanout == 3  # G11
        assert stats.depth == 6

    def test_as_row(self, s27):
        row = circuit_stats(s27).as_row()
        assert row[0] == "s27"
        assert len(row) == 6
