"""Tests for the full-load and partitioning baselines."""

from __future__ import annotations

import pytest

from repro.baselines.partition import (
    full_load_baseline,
    partition_baseline,
)
from repro.errors import SelectionError
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator


class TestFullLoad:
    def test_figures(self, s27_t0):
        baseline = full_load_baseline(s27_t0)
        assert baseline.total_loaded_length == 10
        assert baseline.max_loaded_length == 10
        assert baseline.applied_vectors == 10


class TestPartition:
    @pytest.fixture(scope="class")
    def partition(self, s27, s27_universe, s27_t0):
        compiled = CompiledCircuit(s27)
        return partition_baseline(
            compiled, s27_t0, list(s27_universe.faults()), chunk_length=3
        )

    def test_coverage_preserved(self, partition):
        assert partition.coverage_preserved

    def test_every_vector_loaded_at_least_once(self, partition, s27_t0):
        covered = set()
        for chunk in partition.chunks:
            covered.update(range(chunk.start, chunk.end + 1))
        assert covered == set(range(len(s27_t0)))
        assert partition.total_loaded_length >= len(s27_t0)

    def test_chunks_are_contiguous_nominally(self, partition, s27_t0):
        boundaries = [(c.nominal_start, c.end) for c in partition.chunks]
        expected_starts = list(range(0, len(s27_t0), 3))
        assert [b[0] for b in boundaries] == expected_starts

    def test_extensions_recorded(self, partition):
        # s27's later-detected faults need state warm-up, so at least one
        # chunk must have been extended.
        assert partition.faults_requiring_extension >= 1
        assert any(chunk.extension > 0 for chunk in partition.chunks)

    def test_chunks_jointly_detect_everything(
        self, partition, s27, s27_universe, s27_t0
    ):
        simulator = FaultSimulator(s27)
        remaining = set(s27_universe.faults())
        detected = set()
        for chunk in partition.chunks:
            chunk_seq = s27_t0.subsequence(chunk.start, chunk.end)
            detected |= set(
                simulator.run(chunk_seq, sorted(remaining)).detection_time
            )
            remaining -= detected
        assert len(detected) == 32

    def test_chunk_length_one_allowed(self, s27, s27_universe, s27_t0):
        compiled = CompiledCircuit(s27)
        result = partition_baseline(
            compiled, s27_t0, list(s27_universe.faults()), chunk_length=1
        )
        assert result.coverage_preserved

    def test_chunk_length_covers_whole_t0(self, s27, s27_universe, s27_t0):
        compiled = CompiledCircuit(s27)
        result = partition_baseline(
            compiled, s27_t0, list(s27_universe.faults()), chunk_length=100
        )
        assert result.coverage_preserved
        assert len(result.chunks) == 1
        assert result.total_loaded_length == len(s27_t0)
        assert result.faults_requiring_extension == 0

    def test_invalid_chunk_length(self, s27, s27_universe, s27_t0):
        with pytest.raises(SelectionError):
            partition_baseline(
                CompiledCircuit(s27), s27_t0, list(s27_universe.faults()), 0
            )

    def test_scheme_beats_partitioning_on_loading(
        self, s27, s27_universe, s27_t0, partition
    ):
        """The paper's comparative claim, measured."""
        from repro.core.config import SelectionConfig
        from repro.core.ops import ExpansionConfig
        from repro.core.scheme import LoadAndExpandScheme

        run = LoadAndExpandScheme(s27).run(
            s27_t0, SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=7)
        )
        assert run.result.total_length_after < partition.total_loaded_length
        assert run.result.max_length_after <= partition.max_loaded_length
