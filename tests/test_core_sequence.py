"""Tests for the TestSequence value type."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.sequence import TestSequence

bits = st.integers(min_value=0, max_value=1)


class TestConstruction:
    def test_from_strings_roundtrip(self):
        rows = ["0111", "1001"]
        seq = TestSequence.from_strings(rows)
        assert seq.to_strings() == rows
        assert seq.width == 4
        assert len(seq) == 2

    def test_vectors_are_tuples(self):
        seq = TestSequence([[0, 1]])
        assert seq[0] == (0, 1)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            TestSequence([[0, 2]])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            TestSequence([[0, 1], [0]])

    def test_empty(self):
        seq = TestSequence.empty(5)
        assert len(seq) == 0
        assert seq.width == 5

    def test_equality_and_hash(self):
        a = TestSequence.from_strings(["01", "10"])
        b = TestSequence.from_strings(["01", "10"])
        c = TestSequence.from_strings(["01"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "01 10"

    def test_iteration(self):
        seq = TestSequence.from_strings(["01", "10"])
        assert list(seq) == [(0, 1), (1, 0)]


class TestSubsequenceSemantics:
    def test_inclusive_bounds_match_paper_notation(self):
        # T0[u1, u2] includes both endpoints (paper Section 3.1).
        t0 = TestSequence.from_strings(["00", "01", "10", "11"])
        assert t0.subsequence(1, 2).to_strings() == ["01", "10"]
        assert t0.subsequence(0, 3) == t0
        assert t0.subsequence(2, 2).to_strings() == ["10"]

    def test_out_of_range(self):
        t0 = TestSequence.from_strings(["00", "01"])
        with pytest.raises(IndexError):
            t0.subsequence(0, 2)
        with pytest.raises(IndexError):
            t0.subsequence(-1, 1)
        with pytest.raises(IndexError):
            t0.subsequence(1, 0)

    def test_omit(self):
        t0 = TestSequence.from_strings(["00", "01", "10"])
        assert t0.omit(1).to_strings() == ["00", "10"]
        assert t0.omit(0).to_strings() == ["01", "10"]
        assert t0.omit(2).to_strings() == ["00", "01"]

    def test_omit_out_of_range(self):
        with pytest.raises(IndexError):
            TestSequence.from_strings(["00"]).omit(1)

    def test_omit_does_not_mutate(self):
        t0 = TestSequence.from_strings(["00", "01"])
        t0.omit(0)
        assert len(t0) == 2

    def test_append_and_extend(self):
        seq = TestSequence.from_strings(["00"]).append([1, 1])
        assert seq.to_strings() == ["00", "11"]
        combined = seq.extend(TestSequence.from_strings(["10"]))
        assert combined.to_strings() == ["00", "11", "10"]

    def test_extend_width_mismatch(self):
        with pytest.raises(ValueError):
            TestSequence.from_strings(["00"]).extend(
                TestSequence.from_strings(["000"])
            )


@given(
    st.lists(st.lists(bits, min_size=3, max_size=3), min_size=1, max_size=20),
    st.data(),
)
def test_subsequence_matches_python_slice(rows, data):
    seq = TestSequence(rows)
    start = data.draw(st.integers(min_value=0, max_value=len(seq) - 1))
    end = data.draw(st.integers(min_value=start, max_value=len(seq) - 1))
    assert seq.subsequence(start, end).vectors() == seq.vectors()[start : end + 1]


@given(st.lists(st.lists(bits, min_size=2, max_size=2), min_size=2, max_size=15), st.data())
def test_omit_length_and_content(rows, data):
    seq = TestSequence(rows)
    index = data.draw(st.integers(min_value=0, max_value=len(seq) - 1))
    shorter = seq.omit(index)
    assert len(shorter) == len(seq) - 1
    assert shorter.vectors() == seq.vectors()[:index] + seq.vectors()[index + 1 :]
