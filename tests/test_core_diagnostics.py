"""Tests for the coverage diagnostics helpers."""

from __future__ import annotations

import pytest

from repro.core.config import SelectionConfig
from repro.core.diagnostics import (
    coverage_matrix,
    essential_sequences,
    overlap_histogram,
)
from repro.core.ops import ExpansionConfig
from repro.core.procedure1 import select_subsequences
from repro.core.postprocess import statically_compact
from repro.sim.compiled import CompiledCircuit


@pytest.fixture(scope="module")
def diagnostics(s27, s27_universe, s27_t0):
    config = SelectionConfig(expansion=ExpansionConfig(repetitions=1), seed=7)
    selection = select_subsequences(s27, s27_t0, config)
    compiled = CompiledCircuit(s27)
    diag = coverage_matrix(
        compiled,
        selection.sequences,
        config.expansion,
        sorted(selection.udet),
    )
    return selection, compiled, diag


class TestCoverageMatrix:
    def test_all_faults_covered(self, diagnostics):
        _, _, diag = diagnostics
        assert diag.uncovered() == frozenset()

    def test_matrix_matches_procedure1_counts_for_first_sequence(self, diagnostics):
        selection, _, diag = diagnostics
        first = selection.sequences[0]
        # Procedure 1 saw 26 faults when the set was still empty, so the
        # full matrix must agree exactly for the first sequence.
        assert len(diag.detected_by[first.index]) == 26

    def test_sequences_covering_consistency(self, diagnostics):
        _, _, diag = diagnostics
        for fault in diag.target_faults:
            for index in diag.sequences_covering(fault):
                assert fault in diag.detected_by[index]


class TestOverlap:
    def test_histogram_sums_to_target(self, diagnostics):
        _, _, diag = diagnostics
        histogram = overlap_histogram(diag)
        assert sum(histogram.values()) == len(diag.target_faults)
        assert 0 not in histogram  # everything covered at least once

    def test_essential_sequences_survive_compaction(self, diagnostics, s27):
        selection, compiled, diag = diagnostics
        essential = essential_sequences(diag)
        statically_compact(compiled, selection)
        surviving = {entry.index for entry in selection.sequences}
        assert set(essential) <= surviving
