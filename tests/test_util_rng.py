"""Tests for the deterministic RNG utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import SplitMix64, derive_seed


class TestSplitMix64:
    def test_same_seed_same_stream(self):
        a = SplitMix64(123)
        b = SplitMix64(123)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = SplitMix64(123)
        b = SplitMix64(124)
        assert [a.next_u64() for _ in range(8)] != [b.next_u64() for _ in range(8)]

    def test_known_first_value_is_stable(self):
        # Pin the stream so refactors cannot silently change every
        # experiment in the repository.
        assert SplitMix64(0).next_u64() == 16294208416658607535

    def test_outputs_are_64_bit(self):
        rng = SplitMix64(7)
        for _ in range(100):
            value = rng.next_u64()
            assert 0 <= value < (1 << 64)

    @given(st.integers(min_value=-50, max_value=50), st.integers(min_value=0, max_value=100))
    def test_randint_within_bounds(self, low, span):
        rng = SplitMix64(99)
        high = low + span
        for _ in range(20):
            assert low <= rng.randint(low, high) <= high

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            SplitMix64(1).randint(5, 4)

    def test_random_unit_interval(self):
        rng = SplitMix64(5)
        values = [rng.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        # Crude uniformity check: mean near 0.5.
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_choice_draws_members(self):
        rng = SplitMix64(11)
        items = ["a", "b", "c"]
        for _ in range(30):
            assert rng.choice(items) in items

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SplitMix64(1).choice([])

    def test_shuffle_is_permutation(self):
        rng = SplitMix64(17)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_shuffle_deterministic(self):
        a_items = list(range(20))
        b_items = list(range(20))
        SplitMix64(3).shuffle(a_items)
        SplitMix64(3).shuffle(b_items)
        assert a_items == b_items

    def test_sample_bits_width_and_values(self):
        rng = SplitMix64(23)
        bits = rng.sample_bits(64, 0.5)
        assert len(bits) == 64
        assert set(bits) <= {0, 1}

    def test_sample_bits_extreme_probabilities(self):
        rng = SplitMix64(29)
        assert rng.sample_bits(32, 0.0) == [0] * 32
        assert rng.sample_bits(32, 1.0) == [1] * 32

    def test_fork_independent_of_parent_consumption(self):
        parent_a = SplitMix64(41)
        fork_a = parent_a.fork(1)
        parent_b = SplitMix64(41)
        fork_b = parent_b.fork(1)
        assert fork_a.next_u64() == fork_b.next_u64()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_salt_order_matters(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)

    def test_different_bases_differ(self):
        assert derive_seed(1, 7) != derive_seed(2, 7)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_result_is_64_bit(self, base):
        assert 0 <= derive_seed(base, 5) < (1 << 64)
