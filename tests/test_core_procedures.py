"""Tests for Procedure 2, Procedure 1 and the Section 3.2 postprocessing."""

from __future__ import annotations

import pytest

from repro.core.config import SelectionConfig
from repro.core.ops import ExpansionConfig, expand
from repro.core.postprocess import statically_compact
from repro.core.procedure1 import select_subsequences, simulate_t0
from repro.core.procedure2 import build_subsequence_for_fault
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator
from repro.sim.seqsim import SequenceBatchSimulator


@pytest.fixture(scope="module")
def s27_setup(s27, s27_universe, s27_t0):
    compiled = CompiledCircuit(s27)
    fault_sim = FaultSimulator(compiled)
    udet = simulate_t0(fault_sim, s27_universe, s27_t0)
    return compiled, fault_sim, udet


class TestProcedure2:
    def test_paper_example_window(self, s27_setup, s27_t0):
        """The paper's f10: udet=9, n=1, window search stops at ustart=6."""
        compiled, _, udet = s27_setup
        seq_sim = SequenceBatchSimulator(compiled)
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=1))
        targets = [f for f, u in udet.items() if u == 9]
        assert len(targets) == 2  # the paper's f10 and f12
        # At least one of the two time-9 faults exhibits the paper's
        # exact window [6, 9]; both windows must detect their fault.
        ustarts = []
        for fault in targets:
            result = build_subsequence_for_fault(
                seq_sim, s27_t0, fault, 9, config, fault_salt=0
            )
            ustarts.append(result.ustart)
            expanded = expand(result.subsequence, config.expansion)
            assert FaultSimulator(compiled).detects(expanded, fault)
        assert 6 in ustarts

    def test_window_is_t0_slice_before_omission(self, s27_setup, s27_t0):
        compiled, _, udet = s27_setup
        seq_sim = SequenceBatchSimulator(compiled)
        config = SelectionConfig(
            expansion=ExpansionConfig(repetitions=1), skip_omission=True
        )
        fault = max(udet, key=lambda f: udet[f])
        result = build_subsequence_for_fault(
            seq_sim, s27_t0, fault, udet[fault], config
        )
        expected = s27_t0.subsequence(result.ustart, result.udet)
        assert result.subsequence == expected
        assert result.omitted_vectors == 0

    def test_omission_shortens_or_keeps(self, s27_setup, s27_t0):
        compiled, _, udet = s27_setup
        seq_sim = SequenceBatchSimulator(compiled)
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=1), seed=7)
        for fault in list(udet)[:6]:
            result = build_subsequence_for_fault(
                seq_sim, s27_t0, fault, udet[fault], config,
                fault_salt=hash(str(fault)) & 0xFFFF,
            )
            assert 1 <= result.final_length <= result.window_length
            assert result.omitted_vectors == result.window_length - result.final_length

    def test_every_fault_gets_a_detecting_subsequence(self, s27_setup, s27_t0):
        """The termination guarantee, checked exhaustively on s27."""
        compiled, fault_sim, udet = s27_setup
        seq_sim = SequenceBatchSimulator(compiled)
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=3)
        for salt, (fault, detection_time) in enumerate(sorted(udet.items())):
            result = build_subsequence_for_fault(
                seq_sim, s27_t0, fault, detection_time, config, fault_salt=salt
            )
            expanded = expand(result.subsequence, config.expansion)
            assert fault_sim.detects(expanded, fault), str(fault)

    def test_invalid_udet_rejected(self, s27_setup, s27_t0):
        compiled, _, udet = s27_setup
        seq_sim = SequenceBatchSimulator(compiled)
        fault = next(iter(udet))
        with pytest.raises(Exception):
            build_subsequence_for_fault(
                seq_sim, s27_t0, fault, len(s27_t0), SelectionConfig()
            )


class TestProcedure1:
    def test_s27_n1_reproduces_paper_walkthrough(self, s27, s27_t0):
        """Section 3.1: three sequences, detecting 26, then 1, then 5 faults."""
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=1), seed=7)
        selection = select_subsequences(s27, s27_t0, config)
        assert selection.num_sequences == 3
        assert [s.faults_detected_when_added for s in selection.sequences] == [26, 1, 5]
        assert [s.udet for s in selection.sequences] == [9, 5, 4]
        # First sequence: the paper's T' = (1001, 0000) from window [6, 9].
        assert selection.sequences[0].ustart == 6
        assert selection.sequences[0].sequence.to_strings() == ["1001", "0000"]
        # Second: the paper's T' = (1001) from window [3, 5].
        assert selection.sequences[1].ustart == 3
        assert selection.sequences[1].sequence.to_strings() == ["1001"]

    def test_targets_processed_by_decreasing_udet(self, s27, s27_t0):
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=1), seed=11)
        selection = select_subsequences(s27, s27_t0, config)
        udets = [s.udet for s in selection.sequences]
        assert udets == sorted(udets, reverse=True)

    def test_expanded_set_covers_f(self, s27, s27_universe, s27_t0):
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=5)
        selection = select_subsequences(s27, s27_t0, config)
        fault_sim = FaultSimulator(s27)
        covered = set()
        for entry in selection.sequences:
            expanded = expand(entry.sequence, config.expansion)
            covered.update(
                fault_sim.run(expanded, list(s27_universe.faults())).detection_time
            )
        assert covered == set(selection.udet)

    def test_deterministic_given_seed(self, s27, s27_t0):
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=13)
        a = select_subsequences(s27, s27_t0, config)
        b = select_subsequences(s27, s27_t0, config)
        assert [s.sequence for s in a.sequences] == [s.sequence for s in b.sequences]

    def test_stats_properties(self, s27, s27_t0):
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=5)
        selection = select_subsequences(s27, s27_t0, config)
        assert selection.total_length == sum(len(s.sequence) for s in selection.sequences)
        assert selection.max_length == max(len(s.sequence) for s in selection.sequences)
        assert selection.applied_test_length == 16 * selection.total_length
        assert selection.t0_length == 10
        assert selection.detected_by_t0 == 32

    def test_synthetic_circuit_selection(self, medium_synthetic):
        from repro.atpg import generate_t0, AtpgConfig

        atpg = generate_t0(
            medium_synthetic, AtpgConfig(max_length=120, genetic_targets=0)
        )
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=3)
        selection = select_subsequences(medium_synthetic, atpg.sequence, config)
        assert selection.num_sequences >= 1
        assert selection.detected_by_t0 == atpg.detected


class TestPostprocessing:
    def _selection(self, s27, s27_t0, n=1, seed=7):
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=n), seed=seed)
        return select_subsequences(s27, s27_t0, config)

    def test_four_passes_reported(self, s27, s27_compiled, s27_t0):
        selection = self._selection(s27, s27_t0)
        result = statically_compact(s27_compiled, selection)
        assert [p.order_name for p in result.passes] == [
            "increasing length",
            "decreasing length",
            "reverse generation",
            "decreasing previous detections",
        ]

    def test_coverage_preserved_after_compaction(
        self, s27, s27_compiled, s27_universe, s27_t0
    ):
        selection = self._selection(s27, s27_t0, n=2, seed=19)
        target = set(selection.udet)
        result = statically_compact(s27_compiled, selection)
        fault_sim = FaultSimulator(s27_compiled)
        covered = set()
        for entry in result.sequences:
            expanded = expand(entry.sequence, selection.config.expansion)
            covered.update(
                fault_sim.run(expanded, sorted(target)).detection_time
            )
        assert covered == target

    def test_compaction_never_grows(self, s27, s27_compiled, s27_t0):
        selection = self._selection(s27, s27_t0, n=2, seed=23)
        before_count = selection.num_sequences
        before_total = selection.total_length
        result = statically_compact(s27_compiled, selection)
        assert result.num_sequences <= before_count
        assert result.total_length <= before_total

    def test_generation_order_preserved(self, s27, s27_compiled, s27_t0):
        selection = self._selection(s27, s27_t0, n=1, seed=7)
        result = statically_compact(s27_compiled, selection)
        indices = [entry.index for entry in result.sequences]
        assert indices == sorted(indices)
