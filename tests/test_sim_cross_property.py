"""Property-based cross-checks: the three simulation engines must agree.

Hypothesis drives random (circuit, sequence, fault) triples through the
reference simulator, the parallel-fault simulator and the parallel-
sequence simulator and requires identical detection verdicts.  This is
the strongest correctness evidence in the suite: the engines share no
evaluation code path with the reference.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.circuits.generator import SyntheticSpec, generate_circuit
from repro.core.sequence import TestSequence
from repro.faults.sites import enumerate_faults
from repro.faults.universe import FaultUniverse
from repro.sim.faultsim import FaultSimulator
from repro.sim.reference import ReferenceSimulator
from repro.sim.seqsim import SequenceBatchSimulator
from repro.util.rng import SplitMix64


@st.composite
def circuit_and_stimulus(draw):
    seed = draw(st.integers(min_value=0, max_value=2**32))
    inputs = draw(st.integers(min_value=1, max_value=5))
    flops = draw(st.integers(min_value=0, max_value=4))
    gates = draw(st.integers(min_value=flops + 3, max_value=24))
    outputs = draw(st.integers(min_value=1, max_value=3))
    spec = SyntheticSpec("prop", inputs, outputs, flops, gates, seed=seed)
    circuit = generate_circuit(spec)
    length = draw(st.integers(min_value=1, max_value=12))
    rng = SplitMix64(draw(st.integers(min_value=0, max_value=2**32)))
    sequence = TestSequence(
        [[rng.next_u64() & 1 for _ in range(inputs)] for _ in range(length)]
    )
    fault_pick = draw(st.integers(min_value=0, max_value=10_000))
    return circuit, sequence, fault_pick


@settings(max_examples=40, deadline=None)
@given(circuit_and_stimulus())
def test_uncollapsed_fault_detection_agrees_across_engines(data):
    circuit, sequence, fault_pick = data
    faults = enumerate_faults(circuit)
    fault = faults[fault_pick % len(faults)]

    reference = ReferenceSimulator(circuit)
    expected_time = reference.detection_time(sequence, fault)

    fault_sim = FaultSimulator(circuit, batch_width=4)
    result = fault_sim.run(sequence, [fault])
    assert result.detection_time.get(fault) == expected_time

    seq_sim = SequenceBatchSimulator(circuit, batch_width=4)
    assert seq_sim.detects(fault, [sequence]) == [expected_time is not None]


@settings(max_examples=15, deadline=None)
@given(circuit_and_stimulus())
def test_collapsed_classes_detected_together(data):
    """Every fault in an equivalence class has the same detection verdict."""
    circuit, sequence, _ = data
    universe = FaultUniverse(circuit)
    collapse = universe.collapse_result
    fault_sim = FaultSimulator(circuit)
    all_faults = list(collapse.class_of)
    result = fault_sim.run(sequence, all_faults)
    for representative in list(universe.faults())[:20]:
        members = collapse.class_members(representative)
        verdicts = {result.is_detected(member) for member in members}
        assert len(verdicts) == 1, f"class of {representative} disagrees"


@settings(max_examples=20, deadline=None)
@given(circuit_and_stimulus(), st.integers(min_value=1, max_value=6))
def test_fault_dropping_invariance(data, width):
    """Detection results are independent of simulator batch width."""
    circuit, sequence, _ = data
    universe = FaultUniverse(circuit)
    faults = list(universe.faults())
    wide = FaultSimulator(circuit, batch_width=256).run(sequence, faults)
    narrow = FaultSimulator(circuit, batch_width=width).run(sequence, faults)
    assert wide.detection_time == narrow.detection_time
