"""Machine profiling: persistence, worker resolution, calibration."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import SimulationError
from repro.sim.autotune import (
    MachineProfile,
    calibrate,
    default_profile_path,
    load_profile,
    profile_for_startup,
    static_profile,
)
from repro.sim.workerpool import cpu_count


def profile_with(workers: int, source: str) -> MachineProfile:
    base = static_profile()
    return MachineProfile(
        cpu_count=base.cpu_count,
        workers=workers,
        backend=base.backend,
        fault_batch_width=base.fault_batch_width,
        search_batch_width=base.search_batch_width,
        omission_batch_width=base.omission_batch_width,
        source=source,
    )


class TestCpuCountOverride:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSUME_CPUS", "7")
        assert cpu_count() == 7

    def test_invalid_override_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSUME_CPUS", "many")
        with pytest.raises(SimulationError, match="REPRO_ASSUME_CPUS"):
            cpu_count()

    def test_without_override_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_ASSUME_CPUS", raising=False)
        assert cpu_count() >= 1


class TestProfilePersistence:
    def test_json_round_trip(self):
        profile = profile_with(workers=2, source="calibrated")
        assert MachineProfile.from_json(profile.to_json()) == profile

    def test_json_round_trip_with_thread_tier(self):
        profile = replace(
            profile_with(workers=4, source="calibrated"),
            parallel_mode="threads",
            threads=4,
            fault_thread_speedup=2.1,
            candidate_thread_speedup=1.8,
        )
        restored = MachineProfile.from_json(profile.to_json())
        assert restored == profile
        assert restored.parallel_mode == "threads"
        assert restored.threads == 4

    def test_version_guard(self):
        payload = static_profile().to_json()
        payload["version"] = 999
        with pytest.raises(SimulationError, match="version"):
            MachineProfile.from_json(payload)

    def test_v1_profiles_rejected(self):
        """Pre-thread-tier profiles lack the tier verdict; force a
        recalibration instead of silently defaulting it."""
        payload = static_profile().to_json()
        payload["version"] = 1
        with pytest.raises(SimulationError, match="version"):
            MachineProfile.from_json(payload)

    def test_save_load_via_env(self, tmp_path, monkeypatch):
        target = tmp_path / "profile.json"
        monkeypatch.setenv("REPRO_PROFILE", str(target))
        assert default_profile_path() == target
        profile = profile_with(workers=1, source="calibrated")
        assert profile.save() == target
        assert MachineProfile.load() == profile
        assert load_profile() == profile

    def test_load_profile_tolerates_garbage(self, tmp_path, monkeypatch):
        target = tmp_path / "profile.json"
        monkeypatch.setenv("REPRO_PROFILE", str(target))
        assert load_profile() is None  # missing
        target.write_text("not json", encoding="utf-8")
        assert load_profile() is None  # unparseable


class TestWorkerResolution:
    def test_auto_becomes_recommendation(self):
        assert profile_with(2, "calibrated").resolve_workers(None) == 2
        assert profile_with(2, "calibrated").resolve_workers(0) == 2
        assert profile_with(1, "static").resolve_workers(None) == 1

    def test_calibrated_serial_overrides_shard_request(self):
        assert profile_with(1, "calibrated").resolve_workers(4) == 1

    def test_static_serial_does_not_override(self):
        # Only a *measured* serial verdict may veto an explicit request.
        assert profile_with(1, "static").resolve_workers(4) == 4

    def test_force_shard_only_when_calibrated_multiworker(self):
        assert profile_with(2, "calibrated").force_shard
        assert not profile_with(1, "calibrated").force_shard
        assert not profile_with(2, "static").force_shard


class TestExecutionResolution:
    """resolve_execution answers both *which tier* and *how many lanes*."""

    def test_single_worker_is_always_serial(self):
        profile = replace(
            profile_with(1, "calibrated"), parallel_mode="threads", threads=4
        )
        assert profile.resolve_execution(None) == ("serial", 1)

    def test_measured_threads_verdict_wins(self):
        profile = replace(
            profile_with(4, "calibrated"), parallel_mode="threads", threads=4
        )
        assert profile.resolve_execution(None) == ("threads", 4)
        assert profile.resolve_execution(2) == ("threads", 2)

    def test_measured_processes_verdict_wins(self):
        profile = replace(
            profile_with(4, "calibrated"), parallel_mode="processes"
        )
        assert profile.resolve_execution(0) == ("processes", 4)

    def test_measured_serial_verdict_overrides_request(self):
        profile = replace(profile_with(1, "calibrated"), parallel_mode="serial")
        assert profile.resolve_execution(4) == ("serial", 1)

    def test_uncalibrated_profile_stays_auto(self):
        profile = replace(profile_with(4, "static"), parallel_mode="threads")
        mode, count = profile.resolve_execution(4)
        assert mode == "auto"
        assert count == 4


class TestCalibration:
    def test_quick_calibration_on_one_core_selects_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSUME_CPUS", "1")
        profile = calibrate(quick=True)
        assert profile.source == "calibrated"
        assert profile.workers == 1
        assert not profile.use_sharding
        assert any("1 core" in note for note in profile.notes)
        # Measured widths come from the candidate family, so the profile
        # carries concrete, positive batch widths.
        assert profile.fault_batch_width > 0
        assert profile.search_batch_width > 0

    def test_profile_for_startup_calibrates_then_loads(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ASSUME_CPUS", "1")
        target = tmp_path / "startup.json"
        monkeypatch.setenv("REPRO_PROFILE", str(target))
        first = profile_for_startup(quick=True)
        assert first.source == "calibrated"
        assert target.exists()
        # Second startup must load, not re-measure: poison the file with
        # a recognizable workers value and confirm it is what comes back.
        poisoned = profile_with(1, "calibrated").to_json()
        poisoned["notes"] = ["loaded-not-measured"]
        target.write_text(__import__("json").dumps(poisoned), encoding="utf-8")
        second = profile_for_startup(quick=True)
        assert list(second.notes) == ["loaded-not-measured"]
