"""Cross-backend parity: every engine must be bit-identical to python.

The ``python`` big-int kernel is the semantic reference (itself checked
against the scalar :mod:`repro.sim.reference` simulator elsewhere); every
other backend must produce *identical* detection times, traces and
outcomes on the same workloads — not merely equivalent coverage.

The suite parametrizes over the backend registry
(:func:`repro.sim.backend.registry_backends`), not a hardcoded list, so
a new engine is auto-covered the moment it registers; an engine that
cannot run on this machine (numpy missing, no C compiler,
``REPRO_NO_NATIVE=1``) skips with its unavailability reason instead of
failing.
"""

from __future__ import annotations

import pytest

from repro.circuits.catalog import load_circuit, paper_t0_s27
from repro.core.ops import ExpansionConfig
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.model import STEM, Fault, FaultSite
from repro.faults.universe import FaultUniverse
from repro.logic.values import ONE, X, ZERO
from repro.sim.backend import (
    SCAN_MODE_ENV,
    SimBackend,
    available_backends,
    backend_unavailable_reason,
    get_backend,
    registry_backends,
    resolve_backend_name,
    resolve_scan_mode,
    set_measured_scan_modes,
)
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import LogicSimulator
from repro.sim.native_build import NO_NATIVE_ENV
from repro.sim.scanplan import WindowRampPlan
from repro.sim.seqsim import SequenceBatchSimulator
from repro.util.rng import SplitMix64

pytest.importorskip("numpy")

#: Catalog circuits small enough to sweep their full fault universe here.
PARITY_CIRCUITS = ["s27", "syn298", "syn344", "syn382", "syn641"]

#: Engines checked against the big-int reference.
NON_REFERENCE_BACKENDS = [
    name for name in registry_backends() if name != "python"
]


def _require_backend(name: str) -> str:
    reason = backend_unavailable_reason(name)
    if reason is not None:
        pytest.skip(f"backend {name!r} unavailable: {reason}")
    return name


@pytest.fixture(params=NON_REFERENCE_BACKENDS)
def backend_name(request) -> str:
    """Each registered non-reference engine; unavailable ones skip."""
    return _require_backend(request.param)


def _random_sequence(circuit, length, seed=2024) -> TestSequence:
    rng = SplitMix64(seed)
    return TestSequence(
        [
            [rng.next_u64() & 1 for _ in range(circuit.num_inputs)]
            for _ in range(length)
        ]
    )


@pytest.fixture(scope="module", params=PARITY_CIRCUITS)
def compiled(request) -> CompiledCircuit:
    return CompiledCircuit(load_circuit(request.param))


class TestBackendRegistry:
    def test_registry_names(self):
        assert registry_backends() == ["python", "numpy", "native"]

    def test_available_is_registry_subset_with_python(self):
        available = available_backends()
        assert "python" in available
        assert "numpy" in available  # numpy ships in CI
        assert set(available) <= set(registry_backends())
        # Availability and the per-name diagnostic must agree.
        for name in registry_backends():
            assert (backend_unavailable_reason(name) is None) == (
                name in available
            )

    def test_unknown_backend_rejected(self, compiled):
        with pytest.raises(SimulationError, match="unknown simulation backend"):
            get_backend(compiled, "cuda")
        assert "unknown backend" in backend_unavailable_reason("cuda")

    def test_backend_instances_memoized_per_circuit(self, compiled, backend_name):
        assert get_backend(compiled, backend_name) is get_backend(
            compiled, backend_name
        )
        assert get_backend(compiled, "python") is not get_backend(
            compiled, backend_name
        )


class TestFaultSimParity:
    def test_full_universe_detection_times_identical(self, compiled, backend_name):
        """The acceptance property: same udet for every catalog fault."""
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        sequence = _random_sequence(compiled.circuit, 48)
        python = FaultSimulator(compiled, backend="python").run(sequence, faults)
        other = FaultSimulator(compiled, backend=backend_name).run(
            sequence, faults
        )
        assert python.detection_time == other.detection_time
        assert python.num_detected > 0  # the comparison is not vacuous

    def test_batch_wider_than_64_slots(self, compiled, backend_name):
        """Batches crossing uint64 word boundaries (and not word-aligned)."""
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        sequence = _random_sequence(compiled.circuit, 32)
        reference = FaultSimulator(compiled, backend="python").run(
            sequence, faults
        )
        for width in (65, 96, 127, 200):
            result = FaultSimulator(
                compiled, batch_width=width, backend=backend_name
            ).run(sequence, faults)
            assert result.detection_time == reference.detection_time

    def test_pi_stem_fault(self, compiled, backend_name):
        """Faults on PI stems exercise the source-patch path."""
        circuit = compiled.circuit
        sequence = _random_sequence(circuit, 24)
        for pi in circuit.inputs:
            for stuck in (0, 1):
                fault = Fault(site=FaultSite(signal=pi, kind=STEM), stuck_value=stuck)
                python = FaultSimulator(compiled, backend="python").detects(
                    sequence, fault
                )
                other = FaultSimulator(compiled, backend=backend_name).detects(
                    sequence, fault
                )
                assert python == other

    def test_session_parity_from_all_x_state(self, compiled, backend_name):
        """Incremental sessions advance both backends' machines from all-X
        through several extensions with identical global detection times."""
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        sessions = {
            name: FaultSimulator(compiled, backend=name).session(faults)
            for name in ("python", backend_name)
        }
        for chunk_seed in (7, 8, 9):
            extension = _random_sequence(compiled.circuit, 12, seed=chunk_seed)
            detected = {
                name: session.commit(extension)
                for name, session in sessions.items()
            }
            assert detected["python"] == detected[backend_name]
            assert (
                sessions["python"].peek(extension)
                == sessions[backend_name].peek(extension)
            )
        assert (
            sessions["python"].detection_time
            == sessions[backend_name].detection_time
        )
        assert set(sessions["python"].remaining_faults) == set(
            sessions[backend_name].remaining_faults
        )


class TestLogicSimParity:
    def test_traces_identical(self, compiled, backend_name):
        sequence = _random_sequence(compiled.circuit, 32)
        python = LogicSimulator(compiled, backend="python").run(
            sequence, record_signals=True
        )
        other = LogicSimulator(compiled, backend=backend_name).run(
            sequence, record_signals=True
        )
        assert python.po_values == other.po_values
        assert python.final_state == other.final_state
        assert python.signal_values == other.signal_values

    def test_explicit_initial_states(self, compiled, backend_name):
        """All-X, all-binary and mixed initial states round-trip the same."""
        num_flops = len(compiled.flop_pairs)
        sequence = _random_sequence(compiled.circuit, 16)
        patterns = [
            [X] * num_flops,
            [ONE] * num_flops,
            [ZERO if i % 2 else ONE for i in range(num_flops)],
            [X if i % 3 == 0 else ZERO for i in range(num_flops)],
        ]
        for initial in patterns:
            python = LogicSimulator(compiled, backend="python").run(
                sequence, initial_state=initial
            )
            other = LogicSimulator(compiled, backend=backend_name).run(
                sequence, initial_state=initial
            )
            assert python.po_values == other.po_values
            assert python.final_state == other.final_state


class TestSeqSimParity:
    def test_mixed_length_candidates(self, compiled, backend_name):
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        candidates = [
            _random_sequence(compiled.circuit, 3 + (j % 11), seed=100 + j)
            for j in range(70)  # > 64: crosses a word boundary in one batch
        ]
        for fault in faults[:: max(1, len(faults) // 6)]:
            python = SequenceBatchSimulator(
                compiled, batch_width=70, backend="python"
            ).detects(fault, candidates)
            other = SequenceBatchSimulator(
                compiled, batch_width=70, backend=backend_name
            ).detects(fault, candidates)
            assert python == other


@pytest.fixture(scope="module")
def scan_workload():
    """One syn298 fault with a deep detection time, plus its T0."""
    circuit = load_circuit("syn298")
    compiled = CompiledCircuit(circuit)
    t0 = _random_sequence(circuit, 32, seed=2026)
    universe = FaultUniverse(circuit)
    detection = FaultSimulator(compiled).run(t0, list(universe.faults()))
    fault, udet = max(
        detection.detection_time.items(),
        key=lambda item: (item[1], str(item[0])),
    )
    undetected = [
        f for f in universe.faults() if f not in detection.detection_time
    ]
    return compiled, t0, fault, udet, undetected


class TestScanModeParity:
    """Fused whole-sequence scans equal the per-step reference loop.

    ``scan_mode`` is a pure throughput knob: detection times, candidate
    outcomes, first-hit winners *and* the evaluated-candidate statistic
    must be bit-identical between the fused ``run_scan`` kernels and the
    stepped reference on every engine.
    """

    @pytest.mark.parametrize("scan_mode", ["fused", "stepped"])
    def test_fault_axis_detection_times(self, compiled, backend_name, scan_mode):
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        sequence = _random_sequence(compiled.circuit, 32, seed=900)
        reference = FaultSimulator(
            compiled, backend="python", scan_mode="stepped"
        ).run(sequence, faults)
        result = FaultSimulator(
            compiled, backend=backend_name, scan_mode=scan_mode
        ).run(sequence, faults)
        assert result.detection_time == reference.detection_time
        assert reference.num_detected > 0

    @pytest.mark.parametrize("backend", registry_backends())
    def test_candidate_outcomes_identical(self, compiled, backend):
        _require_backend(backend)
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        candidates = [
            _random_sequence(compiled.circuit, 3 + (j % 11), seed=800 + j)
            for j in range(70)  # > 64: crosses a word boundary in one batch
        ]
        for fault in faults[:: max(1, len(faults) // 5)]:
            outcomes = {
                mode: SequenceBatchSimulator(
                    compiled, batch_width=70, backend=backend, scan_mode=mode
                ).detects(fault, candidates)
                for mode in ("fused", "stepped")
            }
            assert outcomes["fused"] == outcomes["stepped"], str(fault)

    @pytest.mark.parametrize("backend", registry_backends())
    def test_first_hit_winner_and_evaluated_count(self, scan_workload, backend):
        """Early exit must stop at the same chunk under either mode."""
        _require_backend(backend)
        compiled, t0, fault, udet, _ = scan_workload
        spans = [(u, udet) for u in range(udet, -1, -1)]
        plan = WindowRampPlan(t0, spans, ExpansionConfig(repetitions=2))
        outcomes = {
            mode: SequenceBatchSimulator(
                compiled, batch_width=16, backend=backend, scan_mode=mode
            ).first_hit(fault, plan, chunk=8)
            for mode in ("fused", "stepped")
        }
        assert outcomes["fused"] == outcomes["stepped"]
        position, evaluated = outcomes["fused"]
        assert position is not None
        # The documented serial-chunked-scan statistic: whole chunks up
        # to and including the winning one.
        assert evaluated == min(len(spans), ((position // 8) + 1) * 8)

    @pytest.mark.parametrize("backend", registry_backends())
    def test_no_winner_evaluates_everything(self, scan_workload, backend):
        _require_backend(backend)
        compiled, t0, _fault, udet, undetected = scan_workload
        assert undetected, "syn298 stimulus should leave some faults undetected"
        spans = [(u, udet) for u in range(udet, -1, -1)]
        # A fault t0 misses may still be caught by an *expanded* window,
        # so scan for one whose whole window search comes up empty.
        identity = ExpansionConfig(
            repetitions=1, use_complement=False, use_shift=False, use_reverse=False
        )
        plan = WindowRampPlan(t0, spans, identity)
        serial = SequenceBatchSimulator(compiled, batch_width=16)
        ghost = next(
            (
                f
                for f in undetected
                if serial.first_hit(f, plan, chunk=8) == (None, len(spans))
            ),
            None,
        )
        assert ghost is not None, "expected an expanded-window-proof fault"
        for mode in ("fused", "stepped"):
            simulator = SequenceBatchSimulator(
                compiled, batch_width=16, backend=backend, scan_mode=mode
            )
            assert simulator.first_hit(ghost, plan, chunk=8) == (
                None,
                len(spans),
            ), mode


class TestScanModeResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        # This test pins the static default, so clear any ambient knob
        # (the CI stepped-scan lane runs the whole suite under it).
        monkeypatch.delenv(SCAN_MODE_ENV, raising=False)
        assert resolve_scan_mode("fused") == "fused"
        assert resolve_scan_mode("stepped", paired=True) == "stepped"
        assert resolve_scan_mode(None) == "fused"
        assert resolve_scan_mode("auto") == "fused"

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError, match="scan mode"):
            resolve_scan_mode("vectorized")

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv(SCAN_MODE_ENV, "stepped")
        assert resolve_scan_mode(None) == "stepped"
        compiled = CompiledCircuit(load_circuit("s27"))
        assert SequenceBatchSimulator(compiled).scan_mode == "stepped"
        assert FaultSimulator(compiled).scan_mode == "stepped"
        # Explicit arguments still beat the environment.
        assert resolve_scan_mode("fused") == "fused"
        monkeypatch.setenv(SCAN_MODE_ENV, "nonsense")
        with pytest.raises(SimulationError, match=SCAN_MODE_ENV):
            resolve_scan_mode(None)

    def test_measured_modes_install_and_clear(self, monkeypatch):
        monkeypatch.delenv(SCAN_MODE_ENV, raising=False)
        try:
            set_measured_scan_modes(fault="stepped", paired="fused")
            assert resolve_scan_mode(None) == "stepped"
            assert resolve_scan_mode(None, paired=True) == "fused"
            assert resolve_scan_mode("fused") == "fused"
        finally:
            set_measured_scan_modes(None, None)
        assert resolve_scan_mode(None) == "fused"
        with pytest.raises(SimulationError, match="scan mode"):
            set_measured_scan_modes(fault="sideways")


def _detect_step_trace(compiled, backend, fault, sequences, batch_size):
    """Replay the paired-batch loop, returning every detect_step mask.

    Exercises the backend's fused ``detect_step`` exactly as the packed
    seqsim pipeline drives it (identical per-slot inputs in both
    machines), without seqsim's own batching/early-exit policy on top.
    """
    width = compiled.num_inputs
    good = backend.batch(backend.program(None), batch_size)
    faulty = backend.batch(backend.program((fault,) * batch_size), batch_size)
    lengths = [len(sequence) for sequence in sequences]
    full = (1 << batch_size) - 1
    masks = []
    for t in range(max(lengths)):
        ones = []
        zeros = []
        for position in range(width):
            word = 0
            for slot, sequence in enumerate(sequences):
                if t < lengths[slot] and sequence[t][position]:
                    word |= 1 << slot
            ones.append(word)
            zeros.append(full & ~word)
        alive = 0
        for slot, length in enumerate(lengths):
            if t < length:
                alive |= 1 << slot
        good.load_inputs_packed(ones, zeros)
        faulty.load_inputs_packed(ones, zeros)
        good.load_state()
        faulty.load_state()
        faulty.apply_source_patches()
        good.eval()
        faulty.eval()
        masks.append(backend.detect_step(good, faulty, alive))
        good.capture_state()
        faulty.capture_state()
    return masks


class TestDetectStep:
    """Cross-backend parity of the fused paired-batch detection pass."""

    #: Batch sizes straddling the numpy backend's word boundary: 3 drives
    #: the single-word (1-D) machinery, 70 the multi-word path.
    BATCH_SIZES = (3, 70)

    def test_masks_identical_across_backends(self, compiled, backend_name):
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        for batch_size in self.BATCH_SIZES:
            candidates = [
                _random_sequence(compiled.circuit, 2 + (j % 7), seed=300 + j)
                for j in range(batch_size)
            ]
            for fault in faults[:: max(1, len(faults) // 4)]:
                python = _detect_step_trace(
                    compiled,
                    get_backend(compiled, "python"),
                    fault,
                    candidates,
                    batch_size,
                )
                other = _detect_step_trace(
                    compiled,
                    get_backend(compiled, backend_name),
                    fault,
                    candidates,
                    batch_size,
                )
                assert python == other, str(fault)

    def test_fused_pass_matches_reference_observe_po_loop(
        self, compiled, backend_name
    ):
        """Each backend's override equals the SimBackend default."""
        universe = FaultUniverse(compiled.circuit)
        fault = list(universe.faults())[1]
        for name in ("python", backend_name):
            backend = get_backend(compiled, name)
            for batch_size in self.BATCH_SIZES:
                candidates = [
                    _random_sequence(compiled.circuit, 5, seed=400 + j)
                    for j in range(batch_size)
                ]
                fused = _detect_step_trace(
                    compiled, backend, fault, candidates, batch_size
                )
                override = type(backend).detect_step
                try:
                    # Force the inherited reference implementation.
                    type(backend).detect_step = SimBackend.detect_step
                    reference = _detect_step_trace(
                        compiled, backend, fault, candidates, batch_size
                    )
                finally:
                    type(backend).detect_step = override
                assert fused == reference, name

    def test_po_branch_fault_patches_applied(self, compiled, backend_name):
        """Faults on PO branch pins exercise detect_step's patch path."""
        universe = FaultUniverse(compiled.circuit)
        po_faults = [
            fault
            for fault in universe.faults()
            if fault.site.kind != STEM and fault.site.load_kind == "po"
        ]
        candidates = [
            _random_sequence(compiled.circuit, 6, seed=500 + j) for j in range(9)
        ]
        for fault in po_faults[:4]:
            python = _detect_step_trace(
                compiled, get_backend(compiled, "python"), fault, candidates, 9
            )
            other = _detect_step_trace(
                compiled, get_backend(compiled, backend_name), fault, candidates, 9
            )
            assert python == other, str(fault)
            assert any(python), f"{fault} never detected — vacuous comparison"


class TestLevelFusion:
    """The fused numpy schedule must be bit-identical to the unfused one."""

    def test_fused_vs_unfused_detection_times(self, compiled):
        from repro.sim.backend_numpy import NumpyBackend

        fused = NumpyBackend(compiled)
        unfused = NumpyBackend(compiled, fuse_levels=False)
        assert sum(len(p) for p in fused.level_passes) <= sum(
            len(p) for p in unfused.level_passes
        )
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        sequence = _random_sequence(compiled.circuit, 40, seed=77)
        times_fused = FaultSimulator(compiled, backend=fused).run(
            sequence, faults
        )
        times_unfused = FaultSimulator(compiled, backend=unfused).run(
            sequence, faults
        )
        assert times_fused.detection_time == times_unfused.detection_time

    def test_fused_vs_unfused_traces(self, compiled):
        from repro.sim.backend_numpy import NumpyBackend

        fused = LogicSimulator(compiled, backend=NumpyBackend(compiled)).run(
            _random_sequence(compiled.circuit, 24, seed=78), record_signals=True
        )
        unfused = LogicSimulator(
            compiled, backend=NumpyBackend(compiled, fuse_levels=False)
        ).run(
            _random_sequence(compiled.circuit, 24, seed=78), record_signals=True
        )
        assert fused.po_values == unfused.po_values
        assert fused.signal_values == unfused.signal_values
        assert fused.final_state == unfused.final_state


class TestAutoBackend:
    """backend="auto" resolves adaptively and never changes results."""

    def test_resolution_prefers_native_when_available(self):
        _require_backend("native")
        small = CompiledCircuit(load_circuit("s27"))
        large = CompiledCircuit(load_circuit("syn1423"))
        # s27 sits below every crossover; the catalog circuits are all
        # above the native thresholds on both axes.
        assert resolve_backend_name(small, "auto") == "python"
        assert resolve_backend_name(large, "auto") == "native"
        assert resolve_backend_name(large, "auto", paired=True) == "native"

    def test_resolution_heuristic_without_native(self, monkeypatch):
        """The numpy/python cascade, with the native engine hidden."""
        monkeypatch.setenv(NO_NATIVE_ENV, "1")
        small = CompiledCircuit(load_circuit("s27"))
        large = CompiledCircuit(load_circuit("syn1423"))
        assert resolve_backend_name(small, "auto") == "python"
        assert resolve_backend_name(large, "auto") == "python"  # 657 gates
        huge = CompiledCircuit(load_circuit("syn5378"))  # 2779 gates
        assert resolve_backend_name(huge, "auto") == "numpy"
        assert resolve_backend_name(small, "python") == "python"
        assert resolve_backend_name(small, None) == "python"

    def test_paired_resolution_has_its_own_crossover(self, monkeypatch):
        """The candidate axis crosses over far later than the fault axis
        (numpy vs python; native, when present, leads both axes)."""
        from types import SimpleNamespace

        monkeypatch.setenv(NO_NATIVE_ENV, "1")
        huge = CompiledCircuit(load_circuit("syn5378"))  # 2779 gates
        # Fault axis: numpy; paired candidate axis: still python.
        assert resolve_backend_name(huge, "auto") == "numpy"
        assert resolve_backend_name(huge, "auto", paired=True) == "python"
        # Above the paired threshold (syn35932-class) numpy wins.
        giant = SimpleNamespace(ops=[None] * 16_000)
        assert resolve_backend_name(giant, "auto", paired=True) == "numpy"

    def test_auto_clamps_python_batch_widths_to_sweet_spot(self, monkeypatch):
        """Auto on the big-int kernel narrows numpy-tuned wide batches."""
        monkeypatch.setenv(NO_NATIVE_ENV, "1")
        small = CompiledCircuit(load_circuit("syn298"))
        fault_sim = FaultSimulator(small, batch_width=1024, backend="auto")
        assert fault_sim.backend.name == "python"
        assert fault_sim.batch_width == 192
        seq_sim = SequenceBatchSimulator(small, batch_width=256, backend="auto")
        assert seq_sim.backend.name == "python"
        assert seq_sim.batch_width == 96
        # Narrower-than-sweet-spot requests pass through untouched.
        assert FaultSimulator(small, batch_width=8, backend="auto").batch_width == 8
        # When numpy wins, the requested width is kept.
        huge = CompiledCircuit(load_circuit("syn5378"))
        wide = FaultSimulator(huge, batch_width=1024, backend="auto")
        assert wide.backend.name == "numpy"
        assert wide.batch_width == 1024
        # Explicit backends never clamp.
        explicit = FaultSimulator(small, batch_width=1024, backend="python")
        assert explicit.batch_width == 1024

    def test_auto_keeps_wide_batches_on_native(self):
        """The word-based native engine never triggers the python clamp."""
        _require_backend("native")
        small = CompiledCircuit(load_circuit("syn298"))
        fault_sim = FaultSimulator(small, batch_width=1024, backend="auto")
        assert fault_sim.backend.name == "native"
        assert fault_sim.batch_width == 1024

    def test_scalar_logic_simulation_stays_on_big_int_kernel(self):
        huge = CompiledCircuit(load_circuit("syn5378"))
        assert LogicSimulator(huge, backend="auto").backend.name == "python"

    def test_get_backend_resolves_auto_to_registry_instance(self, compiled):
        resolved = get_backend(compiled, "auto")
        assert resolved is get_backend(compiled, resolved.name)

    def test_auto_bit_identical_to_all_backends(self, compiled):
        """The adaptive property: auto == every engine, bit for bit."""
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        sequence = _random_sequence(compiled.circuit, 32, seed=600)
        names = available_backends() + ["auto"]
        runs = {
            name: FaultSimulator(compiled, backend=name).run(sequence, faults)
            for name in names
        }
        for name in names:
            assert runs[name].detection_time == runs["python"].detection_time

        candidates = [
            _random_sequence(compiled.circuit, 3 + (j % 9), seed=700 + j)
            for j in range(40)
        ]
        for fault in faults[:: max(1, len(faults) // 3)]:
            outcomes = {
                name: SequenceBatchSimulator(
                    compiled, batch_width=40, backend=name
                ).detects(fault, candidates)
                for name in names
            }
            for name in names:
                assert outcomes[name] == outcomes["python"], (name, str(fault))


class TestPaperWalkthrough:
    def test_s27_profile_is_backend_independent(self, backend_name):
        """The paper's own worked example, replayed on each engine."""
        compiled = CompiledCircuit(load_circuit("s27"))
        universe = FaultUniverse(compiled.circuit)
        result = FaultSimulator(compiled, backend=backend_name).run(
            paper_t0_s27(), list(universe.faults())
        )
        assert result.num_detected == 32
        from collections import Counter

        assert dict(Counter(result.detection_time.values())) == {
            1: 9, 2: 4, 4: 1, 5: 11, 6: 2, 8: 3, 9: 2,
        }


class TestBatchWidthValidation:
    @pytest.mark.parametrize("backend", registry_backends())
    def test_invalid_width_rejected(self, compiled, backend):
        _require_backend(backend)
        with pytest.raises(SimulationError, match="batch width"):
            FaultSimulator(compiled, batch_width=0, backend=backend)
        with pytest.raises(SimulationError, match="batch width"):
            SequenceBatchSimulator(compiled, batch_width=-3, backend=backend)

    def test_word_width_metadata(self, compiled, backend_name):
        assert get_backend(compiled, "python").word_width is None
        assert get_backend(compiled, backend_name).word_width == 64


class TestProgramCache:
    def test_programs_cached_per_fault_batch(self, compiled, backend_name):
        universe = FaultUniverse(compiled.circuit)
        faults = tuple(universe.faults())[:8]
        for name in ("python", backend_name):
            backend = get_backend(compiled, name)
            assert backend.program(faults) is backend.program(faults)
            assert backend.program(None) is backend.program(None)
            assert backend.program(faults) is not backend.program(faults[:4])
