"""Cross-backend parity: the numpy engine must be bit-identical to python.

The ``python`` big-int kernel is the semantic reference (itself checked
against the scalar :mod:`repro.sim.reference` simulator elsewhere); every
other backend must produce *identical* detection times, traces and
outcomes on the same workloads — not merely equivalent coverage.
"""

from __future__ import annotations

import pytest

from repro.circuits.catalog import load_circuit, paper_t0_s27
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.model import STEM, Fault, FaultSite
from repro.faults.universe import FaultUniverse
from repro.logic.values import ONE, X, ZERO
from repro.sim.backend import available_backends, get_backend
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import LogicSimulator
from repro.sim.seqsim import SequenceBatchSimulator
from repro.util.rng import SplitMix64

pytest.importorskip("numpy")

#: Catalog circuits small enough to sweep their full fault universe here.
PARITY_CIRCUITS = ["s27", "syn298", "syn344", "syn382", "syn641"]


def _random_sequence(circuit, length, seed=2024) -> TestSequence:
    rng = SplitMix64(seed)
    return TestSequence(
        [
            [rng.next_u64() & 1 for _ in range(circuit.num_inputs)]
            for _ in range(length)
        ]
    )


@pytest.fixture(scope="module", params=PARITY_CIRCUITS)
def compiled(request) -> CompiledCircuit:
    return CompiledCircuit(load_circuit(request.param))


class TestNumpyBackendAvailable:
    def test_registry_lists_numpy(self):
        assert available_backends() == ["python", "numpy"]

    def test_unknown_backend_rejected(self, compiled):
        with pytest.raises(SimulationError, match="unknown simulation backend"):
            get_backend(compiled, "cuda")

    def test_backend_instances_memoized_per_circuit(self, compiled):
        assert get_backend(compiled, "numpy") is get_backend(compiled, "numpy")
        assert get_backend(compiled, "python") is not get_backend(
            compiled, "numpy"
        )


class TestFaultSimParity:
    def test_full_universe_detection_times_identical(self, compiled):
        """The acceptance property: same udet for every catalog fault."""
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        sequence = _random_sequence(compiled.circuit, 48)
        python = FaultSimulator(compiled, backend="python").run(sequence, faults)
        numpy_ = FaultSimulator(compiled, backend="numpy").run(sequence, faults)
        assert python.detection_time == numpy_.detection_time
        assert python.num_detected > 0  # the comparison is not vacuous

    def test_batch_wider_than_64_slots(self, compiled):
        """Batches crossing uint64 word boundaries (and not word-aligned)."""
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        sequence = _random_sequence(compiled.circuit, 32)
        reference = FaultSimulator(compiled, backend="python").run(
            sequence, faults
        )
        for width in (65, 96, 127, 200):
            result = FaultSimulator(
                compiled, batch_width=width, backend="numpy"
            ).run(sequence, faults)
            assert result.detection_time == reference.detection_time

    def test_pi_stem_fault(self, compiled):
        """Faults on PI stems exercise the source-patch path."""
        circuit = compiled.circuit
        sequence = _random_sequence(circuit, 24)
        for pi in circuit.inputs:
            for stuck in (0, 1):
                fault = Fault(site=FaultSite(signal=pi, kind=STEM), stuck_value=stuck)
                python = FaultSimulator(compiled, backend="python").detects(
                    sequence, fault
                )
                numpy_ = FaultSimulator(compiled, backend="numpy").detects(
                    sequence, fault
                )
                assert python == numpy_

    def test_session_parity_from_all_x_state(self, compiled):
        """Incremental sessions advance both backends' machines from all-X
        through several extensions with identical global detection times."""
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        sessions = {
            name: FaultSimulator(compiled, backend=name).session(faults)
            for name in ("python", "numpy")
        }
        for chunk_seed in (7, 8, 9):
            extension = _random_sequence(compiled.circuit, 12, seed=chunk_seed)
            detected = {
                name: session.commit(extension)
                for name, session in sessions.items()
            }
            assert detected["python"] == detected["numpy"]
            assert (
                sessions["python"].peek(extension)
                == sessions["numpy"].peek(extension)
            )
        assert (
            sessions["python"].detection_time
            == sessions["numpy"].detection_time
        )
        assert set(sessions["python"].remaining_faults) == set(
            sessions["numpy"].remaining_faults
        )


class TestLogicSimParity:
    def test_traces_identical(self, compiled):
        sequence = _random_sequence(compiled.circuit, 32)
        python = LogicSimulator(compiled, backend="python").run(
            sequence, record_signals=True
        )
        numpy_ = LogicSimulator(compiled, backend="numpy").run(
            sequence, record_signals=True
        )
        assert python.po_values == numpy_.po_values
        assert python.final_state == numpy_.final_state
        assert python.signal_values == numpy_.signal_values

    def test_explicit_initial_states(self, compiled):
        """All-X, all-binary and mixed initial states round-trip the same."""
        num_flops = len(compiled.flop_pairs)
        sequence = _random_sequence(compiled.circuit, 16)
        patterns = [
            [X] * num_flops,
            [ONE] * num_flops,
            [ZERO if i % 2 else ONE for i in range(num_flops)],
            [X if i % 3 == 0 else ZERO for i in range(num_flops)],
        ]
        for initial in patterns:
            python = LogicSimulator(compiled, backend="python").run(
                sequence, initial_state=initial
            )
            numpy_ = LogicSimulator(compiled, backend="numpy").run(
                sequence, initial_state=initial
            )
            assert python.po_values == numpy_.po_values
            assert python.final_state == numpy_.final_state


class TestSeqSimParity:
    def test_mixed_length_candidates(self, compiled):
        universe = FaultUniverse(compiled.circuit)
        faults = list(universe.faults())
        candidates = [
            _random_sequence(compiled.circuit, 3 + (j % 11), seed=100 + j)
            for j in range(70)  # > 64: crosses a word boundary in one batch
        ]
        for fault in faults[:: max(1, len(faults) // 6)]:
            python = SequenceBatchSimulator(
                compiled, batch_width=70, backend="python"
            ).detects(fault, candidates)
            numpy_ = SequenceBatchSimulator(
                compiled, batch_width=70, backend="numpy"
            ).detects(fault, candidates)
            assert python == numpy_


class TestPaperWalkthroughOnNumpy:
    def test_s27_profile_is_backend_independent(self):
        """The paper's own worked example, replayed on the numpy engine."""
        compiled = CompiledCircuit(load_circuit("s27"))
        universe = FaultUniverse(compiled.circuit)
        result = FaultSimulator(compiled, backend="numpy").run(
            paper_t0_s27(), list(universe.faults())
        )
        assert result.num_detected == 32
        from collections import Counter

        assert dict(Counter(result.detection_time.values())) == {
            1: 9, 2: 4, 4: 1, 5: 11, 6: 2, 8: 3, 9: 2,
        }


class TestBatchWidthValidation:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_invalid_width_rejected(self, compiled, backend):
        with pytest.raises(SimulationError, match="batch width"):
            FaultSimulator(compiled, batch_width=0, backend=backend)
        with pytest.raises(SimulationError, match="batch width"):
            SequenceBatchSimulator(compiled, batch_width=-3, backend=backend)

    def test_word_width_metadata(self, compiled):
        assert get_backend(compiled, "python").word_width is None
        assert get_backend(compiled, "numpy").word_width == 64


class TestProgramCache:
    def test_programs_cached_per_fault_batch(self, compiled):
        universe = FaultUniverse(compiled.circuit)
        faults = tuple(universe.faults())[:8]
        for name in ("python", "numpy"):
            backend = get_backend(compiled, name)
            assert backend.program(faults) is backend.program(faults)
            assert backend.program(None) is backend.program(None)
            assert backend.program(faults) is not backend.program(faults[:4])
