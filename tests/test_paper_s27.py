"""The headline integration test: the paper's own s27 walkthrough.

Every concrete number the paper gives for s27 is asserted here:

* Table 2 — the 10-vector ``T0``, 32 collapsed faults, all detected, and
  the exact per-time-unit first-detection profile;
* Section 2 / Table 1 — the expansion worked example;
* Section 3.1 — Procedure 2's worked example (``Sexp`` of ``(1011)``,
  window ``[6, 9]`` for the hardest fault, the ``(1001, 0000)``
  subsequence detecting 26 of 32 faults, the ``(1001)`` follow-up, and
  termination after three sequences).
"""

from __future__ import annotations

from collections import Counter

from repro.core.config import SelectionConfig
from repro.core.ops import ExpansionConfig, expand
from repro.core.procedure1 import select_subsequences
from repro.core.sequence import TestSequence
from repro.sim.faultsim import FaultSimulator


class TestTable2:
    def test_fault_universe_size(self, s27_universe):
        assert len(s27_universe) == 32

    def test_t0_detects_all_faults(self, s27, s27_universe, s27_t0):
        result = FaultSimulator(s27).run(s27_t0, list(s27_universe.faults()))
        assert result.num_detected == 32

    def test_detection_time_profile_matches_paper(self, s27, s27_universe, s27_t0):
        result = FaultSimulator(s27).run(s27_t0, list(s27_universe.faults()))
        profile = Counter(result.detection_time.values())
        assert dict(profile) == {1: 9, 2: 4, 4: 1, 5: 11, 6: 2, 8: 3, 9: 2}

    def test_highest_detection_time_is_9(self, s27, s27_universe, s27_t0):
        result = FaultSimulator(s27).run(s27_t0, list(s27_universe.faults()))
        assert max(result.detection_time.values()) == 9


class TestSection2:
    def test_table1(self):
        s = TestSequence.from_strings(["000", "110"])
        expected = (
            "000 110 000 110 111 001 111 001 "
            "000 101 000 101 111 010 111 010 "
            "010 111 010 111 101 000 101 000 "
            "001 111 001 111 110 000 110 000"
        ).split()
        assert expand(s, ExpansionConfig(repetitions=2)).to_strings() == expected


class TestSection31Walkthrough:
    def test_ustart9_expansion_matches_paper(self):
        result = expand(TestSequence.from_strings(["1011"]), ExpansionConfig(1))
        assert result.to_strings() == [
            "1011", "0100", "0111", "1000", "1000", "0111", "0100", "1011",
        ]

    def test_full_walkthrough(self, s27, s27_t0):
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=1), seed=7)
        selection = select_subsequences(s27, s27_t0, config)

        # Three sequences terminate the procedure (paper: f10, f13, f18).
        assert selection.num_sequences == 3
        first, second, third = selection.sequences

        # First target: highest udet (9); window [6, 9]; after omission
        # T' = (1001, 0000); its expansion detects 26 of the 32 faults.
        assert first.udet == 9
        assert first.ustart == 6
        assert first.window_length == 4
        assert first.sequence.to_strings() == ["1001", "0000"]
        assert first.faults_detected_when_added == 26

        # Second target: udet 5 (the paper's f13); window [3, 5]; after
        # omission T' = (1001); detects exactly one more fault.
        assert second.udet == 5
        assert second.ustart == 3
        assert second.sequence.to_strings() == ["1001"]
        assert second.faults_detected_when_added == 1

        # Third target: udet 4 (the paper's f18); detects the last five.
        assert third.udet == 4
        assert third.faults_detected_when_added == 5

    def test_first_subsequence_detects_26_exactly(self, s27, s27_universe):
        expanded = expand(
            TestSequence.from_strings(["1001", "0000"]), ExpansionConfig(1)
        )
        result = FaultSimulator(s27).run(expanded, list(s27_universe.faults()))
        assert result.num_detected == 26
