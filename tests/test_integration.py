"""Cross-module integration tests: the complete pipeline on synthetic
circuits, and the coverage-preservation invariant under every expansion
configuration."""

from __future__ import annotations

import pytest

from repro.atpg import AtpgConfig, generate_t0
from repro.bist import BistSession, CostComparison
from repro.core.config import SelectionConfig
from repro.core.ops import ExpansionConfig
from repro.core.scheme import LoadAndExpandScheme
from repro.faults.universe import FaultUniverse
from repro.sim.faultsim import FaultSimulator


@pytest.fixture(scope="module")
def pipeline(medium_synthetic):
    """ATPG -> scheme -> BIST session on a synthetic circuit."""
    universe = FaultUniverse(medium_synthetic)
    atpg = generate_t0(
        medium_synthetic,
        AtpgConfig(max_length=150, genetic_targets=4),
        universe=universe,
    )
    config = SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=99)
    run = LoadAndExpandScheme(medium_synthetic).run(atpg.sequence, config)
    session = BistSession(
        medium_synthetic, run.selection.test_sequences(), config.expansion
    )
    return universe, atpg, run, session


class TestFullPipeline:
    def test_scheme_preserves_atpg_coverage(self, pipeline):
        _, atpg, run, _ = pipeline
        assert run.result.coverage_preserved
        assert run.result.detected_by_scheme == atpg.detected

    def test_loaded_data_is_smaller_than_t0(self, pipeline):
        _, atpg, run, session = pipeline
        cost = session.cost_for_t0(atpg.length)
        assert cost.load_ratio <= 1.0
        assert cost.memory_ratio <= 1.0
        comparison = CostComparison(cost)
        assert comparison.at_speed_amplification == 16.0  # 8n with n=2

    def test_fault_free_device_passes_session(self, pipeline):
        _, _, _, session = pipeline
        assert not session.test_device(None).fails

    def test_sampled_faults_fail_session(self, pipeline):
        universe, _, run, session = pipeline
        covered = sorted(run.udet, key=str)[:10]
        for fault in covered:
            report = session.test_device(fault)
            assert report.detected_without_compaction, str(fault)

    def test_subsequences_are_windows_of_t0(self, pipeline):
        _, atpg, run, _ = pipeline
        t0_vectors = atpg.sequence.vectors()
        for entry in run.selection.sequences:
            window = t0_vectors[entry.ustart : entry.udet + 1]
            # After omission the subsequence is a subsequence (in order)
            # of the original window.
            iterator = iter(window)
            assert all(
                vector in iterator for vector in entry.sequence.vectors()
            ), f"S{entry.index} is not an ordered subsequence of its window"


class TestExpansionAblations:
    @pytest.mark.parametrize(
        "flags",
        [
            dict(use_complement=False),
            dict(use_shift=False),
            dict(use_reverse=False),
            dict(use_complement=False, use_shift=False, use_reverse=False),
        ],
    )
    def test_coverage_preserved_with_reduced_operator_sets(
        self, s27, s27_t0, flags
    ):
        """The guarantee needs only 'Sexp starts with S', so it must hold
        for every operator subset."""
        config = SelectionConfig(
            expansion=ExpansionConfig(repetitions=2, **flags), seed=21
        )
        run = LoadAndExpandScheme(s27).run(s27_t0, config)
        assert run.result.coverage_preserved

    def test_richer_operator_set_never_needs_more_loaded_vectors(self, s27, s27_t0):
        """The full operator set should load no more than repetition-only."""
        full = LoadAndExpandScheme(s27).run(
            s27_t0,
            SelectionConfig(expansion=ExpansionConfig(repetitions=2), seed=37),
        )
        bare = LoadAndExpandScheme(s27).run(
            s27_t0,
            SelectionConfig(
                expansion=ExpansionConfig(
                    repetitions=2,
                    use_complement=False,
                    use_shift=False,
                    use_reverse=False,
                ),
                seed=37,
            ),
        )
        assert full.result.total_length_after <= bare.result.total_length_after


class TestCoverageInvariantProperty:
    @pytest.mark.parametrize("n", [1, 2, 4])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_invariant_on_synthetic(self, small_synthetic, n, seed):
        universe = FaultUniverse(small_synthetic)
        atpg = generate_t0(
            small_synthetic,
            AtpgConfig(max_length=80, genetic_targets=0, seed=seed),
            universe=universe,
        )
        if atpg.detected == 0:
            pytest.skip("seed produced an undetectable-only circuit")
        config = SelectionConfig(expansion=ExpansionConfig(repetitions=n), seed=seed)
        run = LoadAndExpandScheme(small_synthetic).run(atpg.sequence, config)
        assert run.result.coverage_preserved
        # Explicit re-check with a fresh simulator.
        fault_sim = FaultSimulator(small_synthetic)
        covered = set()
        from repro.core.ops import expand

        for entry in run.selection.sequences:
            expanded = expand(entry.sequence, config.expansion)
            covered.update(
                fault_sim.run(expanded, list(universe.faults())).detection_time
            )
        assert covered >= set(run.udet)
