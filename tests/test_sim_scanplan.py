"""The ScanPlan IR: chunk-plan invariants and cost/count parity.

Two contracts are enforced here:

* **Planner invariants** — both chunk planners cover every candidate
  exactly once with contiguous, non-empty chunks, respect the
  batch-width floor (no chunk below one bit-parallel pass unless even
  ``workers`` plain chunks would be), and the cost planner actually
  balances simulated-step budgets on ramp-shaped scans.
* **Chunking is a pure throughput knob** — cost-balanced and
  count-based plans yield bit-identical detection outcomes, first-hit
  winners *and* evaluated counts across workers 1/2/4 and both
  backends, including the empty-ramp and single-candidate edges.
"""

from __future__ import annotations

import pytest

from repro.circuits.catalog import load_circuit
from repro.core.ops import ExpansionConfig
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.universe import FaultUniverse
from repro.sim.backend import registry_backends
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator
from repro.sim.scanplan import (
    CHUNKING_MODES,
    ExplicitPlan,
    OmissionPlan,
    WindowRampPlan,
    plan_cost_chunks,
    plan_count_chunks,
    validate_chunking,
)
from repro.sim.seqshard import make_sequence_simulator
from repro.sim.seqsim import SequenceBatchSimulator
from repro.util.rng import SplitMix64

EXPANSION = ExpansionConfig(repetitions=2)

#: Sharded-parity parameter axis: serial plus two pool sizes.  The
#: multi-worker points spin real process pools, so they carry the
#: ``slow`` marker and stay out of the quick CI lane.
WORKER_AXIS = [
    1,
    pytest.param(2, marks=pytest.mark.slow),
    pytest.param(4, marks=pytest.mark.slow),
]


def _stimulus(circuit, length, seed=2026):
    rng = SplitMix64(seed)
    return TestSequence(
        [
            [rng.next_u64() & 1 for _ in range(circuit.num_inputs)]
            for _ in range(length)
        ]
    )


@pytest.fixture(scope="module")
def workload():
    """One syn298 fault with a deep detection time, plus its T0."""
    circuit = load_circuit("syn298")
    compiled = CompiledCircuit(circuit)
    t0 = _stimulus(circuit, 32)
    universe = FaultUniverse(circuit)
    detection = FaultSimulator(compiled).run(t0, list(universe.faults()))
    fault, udet = max(
        detection.detection_time.items(), key=lambda item: (item[1], str(item[0]))
    )
    return compiled, t0, fault, udet


def _assert_chunk_invariants(chunks, num_items, workers, batch_width):
    if num_items == 0:
        assert chunks == []
        return
    assert chunks[0][0] == 0
    assert chunks[-1][1] == num_items
    floor = min(batch_width, -(-num_items // workers))
    for position, (start, end) in enumerate(chunks):
        assert end > start, "chunks must be non-empty"
        if position < len(chunks) - 1:
            assert chunks[position + 1][0] == end, "chunks must be contiguous"
            assert end - start >= floor, "no chunk below one pass"


class TestPlanners:
    @pytest.mark.parametrize("num", [0, 1, 7, 96, 97, 385, 1000])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_count_plan_invariants(self, num, workers):
        chunks = plan_count_chunks(num, workers, 96)
        _assert_chunk_invariants(chunks, num, workers, 96)

    @pytest.mark.parametrize("num", [0, 1, 7, 96, 97, 385, 1000])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_cost_plan_invariants_on_a_ramp(self, num, workers):
        costs = [length + 1 for length in range(num)]  # window-ramp shape
        chunks = plan_cost_chunks(costs, workers, 96)
        _assert_chunk_invariants(chunks, num, workers, 96)

    def test_cost_plan_uniform_costs_degenerates_to_count_shape(self):
        costs = [17] * 1000
        chunks = plan_cost_chunks(costs, 4, 96)
        _assert_chunk_invariants(chunks, 1000, 4, 96)
        # Chunks above one pass stay whole-pass aligned, like the count plan.
        for start, end in chunks[:-1]:
            size = end - start
            assert size <= 96 or size % 96 == 0

    def test_cost_plan_balances_a_ramp_better_than_count(self):
        # A long ustart ramp: cost grows linearly with position.
        base = TestSequence([[0] for _ in range(2048)])
        spans = [(0, end) for end in range(2048)]
        plan = WindowRampPlan(base, spans, EXPANSION)
        cost_stats = plan.chunk_stats(4, 96, chunking="cost")
        count_stats = plan.chunk_stats(4, 96, chunking="count")
        assert cost_stats["total_cost"] == count_stats["total_cost"]
        assert cost_stats["cost_imbalance"] < count_stats["cost_imbalance"]
        # Equal-step budgets keep the heaviest chunk near the mean (the
        # batch-width floor bounds what is achievable at the expensive
        # end of the ramp); the count plan's tail chunk is ~2x the mean.
        assert cost_stats["cost_imbalance"] < 1.6
        assert count_stats["cost_imbalance"] > 1.7

    def test_validate_chunking(self):
        for mode in CHUNKING_MODES:
            assert validate_chunking(mode) == mode
        with pytest.raises(SimulationError):
            validate_chunking("random")


class TestPlanIR:
    def test_window_costs_are_expanded_lengths(self, workload):
        _, t0, _, udet = workload
        spans = [(u, udet) for u in range(udet, -1, -1)]
        plan = WindowRampPlan(t0, spans, EXPANSION)
        multiplier = EXPANSION.length_multiplier
        assert plan.costs() == [
            (end - start + 1) * multiplier for start, end in spans
        ]
        assert plan.total_cost() == sum(plan.costs())

    def test_omission_costs_are_uniform(self, workload):
        _, t0, _, _ = workload
        plan = OmissionPlan(t0, range(len(t0)), EXPANSION)
        expected = (len(t0) - 1) * EXPANSION.length_multiplier
        assert plan.costs() == [expected] * len(t0)

    def test_explicit_costs_are_lengths(self, workload):
        _, t0, _, _ = workload
        plan = ExplicitPlan([t0.subsequence(0, end) for end in (0, 3, 7)])
        assert plan.costs() == [1, 4, 8]

    def test_slice_preserves_base_and_expansion(self, workload):
        _, t0, _, udet = workload
        spans = [(u, udet) for u in range(udet, -1, -1)]
        plan = WindowRampPlan(t0, spans, EXPANSION)
        part = plan.slice(2, 5)
        assert part.kind == "windows"
        assert part.items == spans[2:5]
        assert part.base is t0
        assert part.expansion is EXPANSION
        assert part.costs() == plan.costs()[2:5]

    def test_validation_rejects_bad_payloads(self, workload):
        _, t0, _, _ = workload
        with pytest.raises(SimulationError):
            WindowRampPlan(t0, [(0, len(t0))], EXPANSION)
        with pytest.raises(SimulationError):
            WindowRampPlan(t0, [(3, 2)], EXPANSION)
        with pytest.raises(SimulationError):
            OmissionPlan(t0, [len(t0)], EXPANSION)


@pytest.mark.parametrize("backend", registry_backends())
@pytest.mark.parametrize("workers", WORKER_AXIS)
@pytest.mark.parametrize("scan_mode", ["fused", "stepped"])
class TestChunkingParity:
    """Cost and count plans are bit-identical for any worker count.

    The scan-mode axis rides along: the reference outcomes are always
    computed with the fused whole-sequence kernels, so a ``stepped``
    point additionally proves scan fusion changes nothing either.
    """

    def _simulators(self, compiled, backend, workers, scan_mode):
        return {
            chunking: make_sequence_simulator(
                compiled,
                batch_width=16,
                backend=backend,
                workers=workers,
                min_shard_candidates=1,
                chunking=chunking,
                scan_mode=scan_mode,
                # The multi-worker axis must exercise the sharded path
                # even on a single-core runner.
                force_shard=True,
            )
            for chunking in CHUNKING_MODES
        }

    def test_first_hit_and_outcomes_identical(
        self, workload, backend, workers, scan_mode, require_backend
    ):
        require_backend(backend)
        compiled, t0, fault, udet = workload
        spans = [(u, udet) for u in range(udet, -1, -1)]
        window_plan = WindowRampPlan(t0, spans, EXPANSION)
        omission_plan = OmissionPlan(
            t0.subsequence(0, udet), range(udet + 1), EXPANSION
        )
        reference = SequenceBatchSimulator(
            compiled, batch_width=16, backend=backend, scan_mode="fused"
        )
        expected = {
            "windows": reference.scan(fault, window_plan),
            "omissions": reference.scan(fault, omission_plan),
            "first_window": reference.first_hit(fault, window_plan, chunk=8),
            "first_omission": reference.first_hit(fault, omission_plan, chunk=8),
        }
        simulators = self._simulators(compiled, backend, workers, scan_mode)
        try:
            for chunking, simulator in simulators.items():
                label = f"{chunking}/w{workers}/{backend}/{scan_mode}"
                assert (
                    simulator.scan(fault, window_plan) == expected["windows"]
                ), label
                assert (
                    simulator.scan(fault, omission_plan) == expected["omissions"]
                ), label
                assert (
                    simulator.first_hit(fault, window_plan, chunk=8)
                    == expected["first_window"]
                ), label
                assert (
                    simulator.first_hit(fault, omission_plan, chunk=8)
                    == expected["first_omission"]
                ), label
        finally:
            for simulator in simulators.values():
                simulator.close()

    def test_empty_ramp_and_single_candidate_edges(
        self, workload, backend, workers, scan_mode, require_backend
    ):
        require_backend(backend)
        compiled, t0, fault, udet = workload
        empty_plan = WindowRampPlan(t0, [], EXPANSION)
        single_plan = WindowRampPlan(t0, [(udet, udet)], EXPANSION)
        reference = SequenceBatchSimulator(
            compiled, batch_width=16, backend=backend, scan_mode="fused"
        )
        expected_single = reference.first_hit(fault, single_plan, chunk=8)
        simulators = self._simulators(compiled, backend, workers, scan_mode)
        try:
            for chunking, simulator in simulators.items():
                label = f"{chunking}/w{workers}/{backend}/{scan_mode}"
                assert simulator.scan(fault, empty_plan) == [], label
                assert simulator.first_hit(fault, empty_plan, chunk=8) == (
                    None,
                    0,
                ), label
                assert (
                    simulator.first_hit(fault, single_plan, chunk=8)
                    == expected_single
                ), label
        finally:
            for simulator in simulators.values():
                simulator.close()
