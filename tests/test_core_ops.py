"""Tests for the sequence manipulations and the expansion function.

Includes the paper's Table 1 worked example verbatim and hypothesis
properties on the operator algebra.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.ops import (
    ExpansionConfig,
    complement,
    concat,
    expand,
    expanded_length,
    repeat,
    reverse,
    shift_left,
)
from repro.core.sequence import TestSequence

bits = st.integers(min_value=0, max_value=1)
sequences = st.builds(
    TestSequence,
    st.lists(st.lists(bits, min_size=4, max_size=4), min_size=1, max_size=10),
)


class TestPrimitives:
    def test_repeat_examples(self):
        s = TestSequence.from_strings(["000", "111"])
        assert repeat(s, 2).to_strings() == ["000", "111", "000", "111"]
        assert repeat(s, 3).to_strings() == ["000", "111"] * 3

    def test_repeat_rejects_zero(self):
        with pytest.raises(ValueError):
            repeat(TestSequence.from_strings(["0"]), 0)

    def test_complement_example(self):
        s = TestSequence.from_strings(["000", "111"])
        assert complement(s).to_strings() == ["111", "000"]

    def test_shift_example_from_paper(self):
        # Paper Section 2: (001, 101) << 1 == (010, 011).
        s = TestSequence.from_strings(["001", "101"])
        assert shift_left(s).to_strings() == ["010", "011"]

    def test_reverse_example_from_paper(self):
        s = TestSequence.from_strings(["000", "001", "111"])
        assert reverse(s).to_strings() == ["111", "001", "000"]

    def test_concat(self):
        a = TestSequence.from_strings(["00"])
        b = TestSequence.from_strings(["11", "01"])
        assert concat(a, b, a).to_strings() == ["00", "11", "01", "00"]


class TestAlgebraicProperties:
    @given(sequences)
    def test_complement_is_involution(self, s):
        assert complement(complement(s)) == s

    @given(sequences)
    def test_reverse_is_involution(self, s):
        assert reverse(reverse(s)) == s

    @given(sequences)
    def test_shift_period_is_width(self, s):
        assert shift_left(s, s.width) == s

    @given(sequences, st.integers(min_value=0, max_value=8))
    def test_shift_composes(self, s, k):
        assert shift_left(shift_left(s, 1), k) == shift_left(s, k + 1)

    @given(sequences, st.integers(min_value=1, max_value=4))
    def test_repeat_length(self, s, n):
        assert len(repeat(s, n)) == n * len(s)

    @given(sequences)
    def test_complement_commutes_with_reverse(self, s):
        assert complement(reverse(s)) == reverse(complement(s))


class TestExpansion:
    def test_paper_table1_exact(self):
        s = TestSequence.from_strings(["000", "110"])
        result = expand(s, ExpansionConfig(repetitions=2))
        expected = (
            "000 110 000 110 111 001 111 001 "
            "000 101 000 101 111 010 111 010 "
            "010 111 010 111 101 000 101 000 "
            "001 111 001 111 110 000 110 000"
        ).split()
        assert result.to_strings() == expected

    def test_paper_procedure2_example_expansion(self):
        # Sexp of (1011) with n=1 from Section 3.1.
        result = expand(TestSequence.from_strings(["1011"]), ExpansionConfig(1))
        assert result.to_strings() == [
            "1011", "0100", "0111", "1000", "1000", "0111", "0100", "1011",
        ]

    @given(sequences, st.integers(min_value=1, max_value=4))
    def test_length_is_8nL(self, s, n):
        config = ExpansionConfig(repetitions=n)
        assert len(expand(s, config)) == 8 * n * len(s)
        assert expanded_length(len(s), config) == 8 * n * len(s)

    @given(sequences, st.integers(min_value=1, max_value=4))
    def test_expansion_starts_with_s(self, s, n):
        """Procedure 2's termination guarantee rests on this property."""
        expanded = expand(s, ExpansionConfig(repetitions=n))
        assert expanded.vectors()[: len(s)] == s.vectors()

    @given(sequences)
    def test_expansion_is_palindromic_with_reversal(self, s):
        expanded = expand(s, ExpansionConfig(repetitions=2))
        assert expanded == reverse(expanded)

    def test_ablation_multipliers(self):
        s = TestSequence.from_strings(["01", "10"])
        cases = [
            (ExpansionConfig(2, use_complement=False), 2 * 2 * 2),
            (ExpansionConfig(2, use_shift=False), 2 * 2 * 2),
            (ExpansionConfig(2, use_reverse=False), 2 * 2 * 2),
            (
                ExpansionConfig(
                    3, use_complement=False, use_shift=False, use_reverse=False
                ),
                3,
            ),
        ]
        for config, multiplier in cases:
            assert config.length_multiplier == multiplier
            assert len(expand(s, config)) == multiplier * len(s)

    def test_empty_sequence_expands_to_empty(self):
        assert len(expand(TestSequence([]), ExpansionConfig(2))) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExpansionConfig(repetitions=0)

    def test_stage_structure(self):
        """White-box: verify the four-stage composition of Section 2."""
        s = TestSequence.from_strings(["0110"])
        n = 2
        s1 = repeat(s, n)
        s2 = concat(s1, complement(s1))
        s3 = concat(s2, shift_left(s2, 1))
        s4 = concat(s3, reverse(s3))
        assert expand(s, ExpansionConfig(repetitions=n)) == s4
