"""Tests for the synthetic generator and the circuit catalog."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.analysis import circuit_stats
from repro.circuits.catalog import (
    PAPER_CIRCUITS,
    available_circuits,
    load_circuit,
    paper_t0_s27,
)
from repro.circuits.generator import SyntheticSpec, generate_circuit
from repro.errors import CatalogError
from repro.logic.values import X
from repro.sim.logicsim import LogicSimulator
from repro.util.rng import SplitMix64


def _random_sequence(seed: int, width: int, length: int):
    from repro.core.sequence import TestSequence

    rng = SplitMix64(seed)
    return TestSequence(
        [[rng.next_u64() & 1 for _ in range(width)] for _ in range(length)]
    )


class TestGenerator:
    def test_profile_is_matched(self):
        spec = SyntheticSpec("p", 7, 5, 9, 80, seed=1)
        circuit = generate_circuit(spec)
        assert circuit.num_inputs == 7
        assert circuit.num_flops == 9
        assert circuit.num_gates == 80
        # POs may exceed the profile only via dead-logic rescue.
        assert circuit.num_outputs >= 5

    def test_deterministic(self):
        spec = SyntheticSpec("p", 4, 3, 5, 40, seed=77)
        a = generate_circuit(spec)
        b = generate_circuit(spec)
        assert a.gates == b.gates
        assert a.outputs == b.outputs

    def test_seed_changes_structure(self):
        a = generate_circuit(SyntheticSpec("p", 4, 3, 5, 40, seed=1))
        b = generate_circuit(SyntheticSpec("p", 4, 3, 5, 40, seed=2))
        assert a.gates != b.gates

    def test_no_dead_gates(self):
        circuit = generate_circuit(SyntheticSpec("p", 5, 4, 6, 70, seed=9))
        fanout = circuit.fanout()
        for name in circuit.gates:
            assert fanout[name], f"gate {name} has no loads and is not a PO"

    def test_initializable(self):
        circuit = generate_circuit(SyntheticSpec("p", 4, 3, 8, 60, seed=5))
        trace = LogicSimulator(circuit).run(_random_sequence(3, 4, 80))
        binary = sum(1 for v in trace.final_state if v is not X)
        assert binary == circuit.num_flops

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSpec("p", 0, 1, 1, 10, seed=1)
        with pytest.raises(ValueError):
            SyntheticSpec("p", 1, 0, 1, 10, seed=1)
        with pytest.raises(ValueError):
            SyntheticSpec("p", 1, 1, 10, 5, seed=1)

    @settings(max_examples=15, deadline=None)
    @given(
        inputs=st.integers(min_value=1, max_value=8),
        outputs=st.integers(min_value=1, max_value=6),
        flops=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_generated_circuits_always_validate(self, inputs, outputs, flops, seed):
        gates = flops + 15
        spec = SyntheticSpec("h", inputs, outputs, flops, gates, seed=seed)
        circuit = generate_circuit(spec)
        circuit.validate()  # would raise on dangling nets or cycles
        assert circuit.num_gates == gates


class TestCatalog:
    def test_available_names(self):
        names = available_circuits()
        assert "s27" in names
        assert "syn298" in names
        assert len(names) == 13

    def test_paper_circuit_list(self):
        assert len(PAPER_CIRCUITS) == 12
        assert PAPER_CIRCUITS[0] == "s298"

    def test_alias_resolution(self):
        via_alias = load_circuit("s298")
        via_name = load_circuit("syn298")
        assert via_alias.gates == via_name.gates

    def test_unknown_circuit(self):
        with pytest.raises(CatalogError):
            load_circuit("s9999")

    def test_synthetic_profiles_match_iscas(self):
        stats = circuit_stats(load_circuit("syn344"))
        assert stats.num_inputs == 9
        assert stats.num_flops == 15
        assert stats.num_gates == 160

    def test_paper_t0_shape(self):
        t0 = paper_t0_s27()
        assert len(t0) == 10
        assert t0.width == 4
        assert t0.to_strings()[0] == "0111"
        assert t0.to_strings()[9] == "1011"

    def test_s27_loads_real_netlist(self, s27):
        assert s27.name == "s27"
        assert s27.num_gates == 10
