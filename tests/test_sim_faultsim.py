"""Tests for the parallel-fault simulator, cross-checked against the
reference simulator and exercised across batch widths and sessions."""

from __future__ import annotations

import pytest

from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.model import STEM, Fault, FaultSite
from repro.faults.universe import FaultUniverse
from repro.sim.faultsim import FaultSimulator
from repro.sim.reference import ReferenceSimulator
from repro.util.rng import SplitMix64


def _random_sequence(seed: int, width: int, length: int) -> TestSequence:
    rng = SplitMix64(seed)
    return TestSequence(
        [[rng.next_u64() & 1 for _ in range(width)] for _ in range(length)]
    )


class TestAgainstReference:
    def test_s27_paper_t0_detection_times_match_reference(
        self, s27, s27_universe, s27_t0
    ):
        fast = FaultSimulator(s27).run(s27_t0, list(s27_universe.faults()))
        reference = ReferenceSimulator(s27)
        for fault in s27_universe.faults():
            assert fast.detection_time.get(fault) == reference.detection_time(
                s27_t0, fault
            ), str(fault)

    def test_synthetic_circuit_matches_reference(self, small_synthetic):
        universe = FaultUniverse(small_synthetic)
        sequence = _random_sequence(7, small_synthetic.num_inputs, 30)
        fast = FaultSimulator(small_synthetic).run(sequence, list(universe.faults()))
        reference = ReferenceSimulator(small_synthetic)
        for fault in universe.faults():
            assert fast.detection_time.get(fault) == reference.detection_time(
                sequence, fault
            ), str(fault)


class TestBatching:
    @pytest.mark.parametrize("width", [1, 3, 7, 64, 500])
    def test_batch_width_does_not_change_results(
        self, s27, s27_universe, s27_t0, width
    ):
        baseline = FaultSimulator(s27, batch_width=192).run(
            s27_t0, list(s27_universe.faults())
        )
        other = FaultSimulator(s27, batch_width=width).run(
            s27_t0, list(s27_universe.faults())
        )
        assert baseline.detection_time == other.detection_time

    def test_invalid_batch_width(self, s27):
        with pytest.raises(SimulationError):
            FaultSimulator(s27, batch_width=0)


class TestResultObject:
    def test_paper_detection_profile(self, s27, s27_universe, s27_t0):
        result = FaultSimulator(s27).run(s27_t0, list(s27_universe.faults()))
        assert result.num_detected == 32
        assert result.coverage == 1.0
        from collections import Counter

        profile = Counter(result.detection_time.values())
        assert dict(profile) == {1: 9, 2: 4, 4: 1, 5: 11, 6: 2, 8: 3, 9: 2}

    def test_empty_inputs(self, s27, s27_universe):
        result = FaultSimulator(s27).run(TestSequence([]), list(s27_universe.faults()))
        assert result.num_detected == 0
        result = FaultSimulator(s27).run(paper_seq(), [])
        assert result.total_faults == 0

    def test_detects_single(self, s27, s27_universe, s27_t0):
        fault = s27_universe.fault(0)
        assert FaultSimulator(s27).detects(s27_t0, fault)

    def test_records(self, s27, s27_universe, s27_t0):
        result = FaultSimulator(s27).run(s27_t0, list(s27_universe.faults()))
        records = result.records(list(s27_universe.faults()))
        assert all(r.detected for r in records)
        assert all(r.detection_time is not None for r in records)


def paper_seq() -> TestSequence:
    from repro.circuits.catalog import paper_t0_s27

    return paper_t0_s27()


class TestStuckSemantics:
    def test_pi_stem_fault_forces_input(self, tiny_combinational):
        # y = NAND(a, b); a stuck-at-0 forces y=1 always.
        fault = Fault(FaultSite("a", STEM), 0)
        simulator = FaultSimulator(tiny_combinational)
        detecting = TestSequence([[1, 1]])  # good y=0, faulty y=1
        non_detecting = TestSequence([[0, 1]])  # both 1
        assert simulator.detects(detecting, fault)
        assert not simulator.detects(non_detecting, fault)

    def test_flop_output_stem_fault_applies_at_time_zero(self, resettable_toggle):
        # q stuck-at-1: out = NOT(q) is 0 in the faulty machine at t=0,
        # but the good machine is X at t=0, so detection needs the reset.
        fault = Fault(FaultSite("q", STEM), 1)
        simulator = FaultSimulator(resettable_toggle)
        result = simulator.run(TestSequence([[0, 0], [0, 1]]), [fault])
        # After reset good q=0 -> out=1; faulty q stuck 1 -> out=0.
        assert result.detection_time[fault] == 1

    def test_po_branch_fault_only_affects_observation(self):
        from repro.circuit.builder import CircuitBuilder
        from repro.faults.model import BRANCH

        # y fans out to PO y and gate z (also a PO).
        builder = CircuitBuilder("c")
        builder.add_input("a")
        builder.add_not("y", "a")
        builder.add_not("z", "y")
        builder.add_output("y")
        builder.add_output("z")
        circuit = builder.build()
        fault = Fault(
            FaultSite("y", BRANCH, sink="y", pin=0, load_kind="po"), 0
        )
        simulator = FaultSimulator(circuit)
        result = simulator.run(TestSequence([[0]]), [fault])
        # Good: y=1, z=0.  Faulty PO y reads 0 -> detected at PO y;
        # z is NOT affected by the PO branch fault.
        assert result.detection_time[fault] == 0


class TestSession:
    def test_session_matches_one_shot(self, s27, s27_universe, s27_t0):
        faults = list(s27_universe.faults())
        one_shot = FaultSimulator(s27).run(s27_t0, faults)
        session = FaultSimulator(s27).session(faults)
        first = session.commit(s27_t0.subsequence(0, 3))
        second = session.commit(s27_t0.subsequence(4, 9))
        merged = {**first, **second}
        assert merged == one_shot.detection_time

    def test_session_on_synthetic(self, small_synthetic):
        universe = FaultUniverse(small_synthetic)
        sequence = _random_sequence(11, small_synthetic.num_inputs, 24)
        one_shot = FaultSimulator(small_synthetic).run(
            sequence, list(universe.faults())
        )
        session = FaultSimulator(small_synthetic).session(list(universe.faults()))
        merged: dict = {}
        for start in range(0, 24, 5):
            end = min(23, start + 4)
            merged.update(session.commit(sequence.subsequence(start, end)))
        assert merged == one_shot.detection_time

    def test_peek_does_not_advance(self, s27, s27_universe, s27_t0):
        session = FaultSimulator(s27).session(list(s27_universe.faults()))
        before = session.num_remaining
        count = session.peek(s27_t0)
        assert count == 32
        assert session.num_remaining == before
        assert session.elapsed == 0

    def test_commit_tracking(self, s27, s27_universe, s27_t0):
        session = FaultSimulator(s27).session(list(s27_universe.faults()))
        session.commit(s27_t0)
        assert session.elapsed == 10
        assert session.num_remaining == 0
        assert len(session.detection_time) == 32

    def test_empty_extension(self, s27, s27_universe):
        session = FaultSimulator(s27).session(list(s27_universe.faults()))
        assert session.commit(TestSequence([])) == {}
        assert session.peek(TestSequence([])) == 0
