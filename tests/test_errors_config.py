"""Tests for the exception hierarchy and the configuration records."""

from __future__ import annotations

import pytest

from repro.core.config import SelectionConfig
from repro.core.ops import ExpansionConfig
from repro.errors import (
    AtpgError,
    BenchFormatError,
    CatalogError,
    FaultModelError,
    HardwareModelError,
    NetlistError,
    ReproError,
    SelectionError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            NetlistError,
            BenchFormatError,
            SimulationError,
            FaultModelError,
            SelectionError,
            AtpgError,
            HardwareModelError,
            CatalogError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_bench_error_is_netlist_error(self):
        assert issubclass(BenchFormatError, NetlistError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise SimulationError("boom")


class TestSelectionConfig:
    def test_defaults(self):
        config = SelectionConfig()
        assert config.expansion.repetitions == 2
        assert not config.skip_omission

    def test_with_repetitions_preserves_other_fields(self):
        base = SelectionConfig(
            expansion=ExpansionConfig(repetitions=2, use_shift=False),
            seed=42,
            search_batch_width=8,
        )
        derived = base.with_repetitions(16)
        assert derived.expansion.repetitions == 16
        assert derived.expansion.use_shift is False
        assert derived.seed == 42
        assert derived.search_batch_width == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(search_batch_width=0),
            dict(omission_batch_width=0),
            dict(fault_batch_width=0),
        ],
    )
    def test_batch_width_validation(self, kwargs):
        with pytest.raises(ValueError):
            SelectionConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            SelectionConfig().seed = 1


class TestExpansionConfig:
    def test_length_multiplier_full(self):
        assert ExpansionConfig(repetitions=2).length_multiplier == 16
        assert ExpansionConfig(repetitions=16).length_multiplier == 128

    def test_length_multiplier_partial(self):
        config = ExpansionConfig(repetitions=3, use_reverse=False)
        assert config.length_multiplier == 12

    def test_repetitions_validated(self):
        with pytest.raises(ValueError):
            ExpansionConfig(repetitions=0)
