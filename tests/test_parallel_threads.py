"""The in-kernel thread tier: resolution, clamping, parity, counters.

The thread tier's contract mirrors the process-sharding one: the lane
count is a pure throughput knob.  Detection masks and first-detection
times must be bit-identical to the serial simulator at any thread count
(the kernel partitions the ``words`` axis, and each bit slot's detection
depends only on its own word column), so every parity test here compares
exact equality, not approximations.
"""

from __future__ import annotations

import threading

import pytest

from repro.circuits.catalog import load_circuit
from repro.core.ops import ExpansionConfig
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.universe import FaultUniverse
from repro.sim.backend import (
    dispatch_counters,
    get_backend,
    record_dispatch,
    reset_dispatch_counters,
    resolve_simulator_threads,
)
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator
from repro.sim.native_build import native_threads_available
from repro.sim.seqshard import make_sequence_simulator
from repro.sim.seqsim import SequenceBatchSimulator
from repro.sim.sharding import make_fault_simulator
from repro.sim.workerpool import PARALLEL_MODES, resolve_work_distribution
from repro.util.rng import SplitMix64

needs_native_threads = pytest.mark.skipif(
    not native_threads_available(),
    reason="native kernel thread pool unavailable on this machine",
)

EXPANSION = ExpansionConfig(repetitions=2)


def _stimulus(circuit, length, seed=2026):
    rng = SplitMix64(seed)
    return TestSequence(
        [
            [rng.next_u64() & 1 for _ in range(circuit.num_inputs)]
            for _ in range(length)
        ]
    )


@pytest.fixture(scope="module")
def syn298():
    circuit = load_circuit("syn298")
    compiled = CompiledCircuit(circuit)
    faults = list(FaultUniverse(circuit).faults())
    sequence = _stimulus(circuit, 24)
    return compiled, faults, sequence


class TestResolveWorkDistribution:
    def test_modes_registry(self):
        assert PARALLEL_MODES == ("auto", "serial", "threads", "processes")

    def test_default_is_serial_on_one_core(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSUME_CPUS", "1")
        assert resolve_work_distribution(None, None) == ("serial", 1)
        assert resolve_work_distribution("auto", 0) == ("serial", 1)

    def test_assume_cpus_feeds_thread_auto_count(self, monkeypatch):
        """Satellite: REPRO_ASSUME_CPUS is honoured by thread resolution."""
        monkeypatch.setenv("REPRO_ASSUME_CPUS", "8")
        assert resolve_work_distribution("threads", 0) == ("threads", 8)
        assert resolve_work_distribution("threads", None) == ("threads", 8)
        assert resolve_work_distribution("threads", 3) == ("threads", 3)

    def test_explicit_processes_pass_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSUME_CPUS", "8")
        assert resolve_work_distribution("processes", 3) == ("processes", 3)

    def test_single_core_collapses_threads_unless_forced(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSUME_CPUS", "1")
        assert resolve_work_distribution("threads", 4) == ("serial", 1)
        assert resolve_work_distribution("threads", 4, force=True) == (
            "threads",
            4,
        )

    def test_serial_wins_any_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSUME_CPUS", "8")
        assert resolve_work_distribution("serial", 4) == ("serial", 1)

    def test_invalid_mode_rejected(self):
        with pytest.raises(SimulationError, match="parallel"):
            resolve_work_distribution("fibers", 2)

    def test_negative_workers_rejected(self):
        with pytest.raises(SimulationError):
            resolve_work_distribution("threads", -2)


class TestResolveSimulatorThreads:
    def test_one_or_less_is_serial(self, syn298):
        backend = get_backend(syn298[0], "python")
        assert resolve_simulator_threads(backend, 1) == 1
        assert resolve_simulator_threads(backend, 0) == 1

    def test_non_native_backends_resolve_to_serial(self, syn298):
        for name in ("python", "numpy"):
            backend = get_backend(syn298[0], name)
            assert resolve_simulator_threads(backend, 4) == 1

    @needs_native_threads
    def test_native_grants_at_most_the_request(self, syn298):
        backend = get_backend(syn298[0], "native")
        granted = resolve_simulator_threads(backend, 4)
        assert 1 <= granted <= 4
        # Regression: the pool never shrinks, so after warming 4 lanes a
        # smaller request must still clamp to *its own* count, not the
        # pool size.
        assert resolve_simulator_threads(backend, 2) <= 2


class TestDispatchCounterHammer:
    def test_concurrent_recording_loses_no_increment(self):
        """Satellite: 8 threads x 1000 increments land exactly once each."""
        reset_dispatch_counters()
        barrier = threading.Barrier(8)

        def hammer(kind):
            barrier.wait()
            for _ in range(1000):
                record_dispatch("hammer")
                record_dispatch(kind, 2)

        workers = [
            threading.Thread(target=hammer, args=(f"kind-{i % 2}",))
            for i in range(8)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        counters = dispatch_counters()
        reset_dispatch_counters()
        assert counters["hammer"] == 8000
        assert counters["kind-0"] + counters["kind-1"] == 16000


class TestFactoryThreadTier:
    def test_threads_mode_returns_in_process_simulator(self, syn298):
        compiled, _, _ = syn298
        simulator = make_fault_simulator(
            compiled, workers=4, parallel="threads", force_shard=True
        )
        # The thread tier never mints the process-sharded class: lanes
        # live inside the kernel, the Python object stays the serial one.
        assert type(simulator) is FaultSimulator
        assert simulator.threads >= 1
        simulator.close()

    def test_threads_mode_sequence_simulator(self, syn298):
        compiled, _, _ = syn298
        simulator = make_sequence_simulator(
            compiled, workers=4, parallel="threads", force_shard=True
        )
        assert type(simulator) is SequenceBatchSimulator
        assert simulator.threads >= 1
        simulator.close()

    def test_serial_mode_ignores_worker_count(self, syn298):
        compiled, _, _ = syn298
        simulator = make_fault_simulator(compiled, workers=4, parallel="serial")
        assert type(simulator) is FaultSimulator
        assert simulator.threads == 1
        simulator.close()

    def test_invalid_tier_rejected(self, syn298):
        compiled, _, _ = syn298
        with pytest.raises(SimulationError, match="parallel"):
            make_fault_simulator(compiled, workers=2, parallel="bogus")

    @needs_native_threads
    def test_native_threads_simulator_carries_lanes(self, syn298):
        compiled, _, _ = syn298
        simulator = make_fault_simulator(
            compiled,
            workers=4,
            parallel="threads",
            backend="native",
            force_shard=True,
        )
        assert simulator.threads > 1
        simulator.close()


@needs_native_threads
class TestThreadParity:
    """Thread lanes are a pure throughput knob — outputs never move."""

    @pytest.mark.parametrize("threads", [2, 4])
    def test_fault_axis_detection_times_bit_identical(self, syn298, threads):
        compiled, faults, sequence = syn298
        serial = FaultSimulator(compiled, backend="native").run(sequence, faults)
        threaded_sim = FaultSimulator(
            compiled, backend="native", threads=threads
        )
        threaded = threaded_sim.run(sequence, faults)
        assert threaded.detection_time == serial.detection_time
        assert threaded.total_faults == serial.total_faults

    @pytest.mark.parametrize("threads", [2, 4])
    def test_candidate_axis_bit_identical(self, syn298, threads):
        compiled, faults, t0 = syn298
        detection = FaultSimulator(compiled, backend="native").run(t0, faults)
        fault, udet = max(
            detection.detection_time.items(),
            key=lambda item: (item[1], str(item[0])),
        )
        spans = [(u, udet) for u in range(udet, -1, -1)]
        base = t0.subsequence(0, udet)
        omissions = list(range(len(base)))
        serial = SequenceBatchSimulator(compiled, batch_width=16, backend="native")
        threaded = SequenceBatchSimulator(
            compiled, batch_width=16, backend="native", threads=threads
        )
        assert threaded.threads > 1
        assert threaded.detects_windows(
            fault, t0, spans, EXPANSION
        ) == serial.detects_windows(fault, t0, spans, EXPANSION)
        assert threaded.detects_omissions(
            fault, base, omissions, EXPANSION
        ) == serial.detects_omissions(fault, base, omissions, EXPANSION)
        assert threaded.first_detecting_window(
            fault, t0, spans, EXPANSION, chunk=8
        ) == serial.first_detecting_window(fault, t0, spans, EXPANSION, chunk=8)
        assert threaded.first_detecting_omission(
            fault, base, omissions, EXPANSION, chunk=8
        ) == serial.first_detecting_omission(
            fault, base, omissions, EXPANSION, chunk=8
        )

    def test_fault_session_parity_across_extensions(self, syn298):
        compiled, faults, sequence = syn298
        serial_session = FaultSimulator(compiled, backend="native").session(faults)
        threaded_session = FaultSimulator(
            compiled, backend="native", threads=4
        ).session(faults)
        half = len(sequence) // 2
        first = sequence.subsequence(0, half - 1)
        second = sequence.subsequence(half, len(sequence) - 1)
        assert threaded_session.peek(first) == serial_session.peek(first)
        assert threaded_session.commit(first) == serial_session.commit(first)
        assert threaded_session.commit(second) == serial_session.commit(second)
        assert threaded_session.detection_time == serial_session.detection_time
