"""Tests of the naive reference simulator itself.

The reference is the oracle for the fast engines, so its own semantics
are pinned here against hand-computed circuit behaviour.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.core.sequence import TestSequence
from repro.faults.model import BRANCH, STEM, Fault, FaultSite
from repro.logic.values import ONE, X, ZERO
from repro.sim.reference import ReferenceSimulator


def _mux_like_circuit():
    """y observes a; z observes NOT(a): a fans out to two loads."""
    builder = CircuitBuilder("fan")
    builder.add_input("a")
    builder.add_buf("y", "a")
    builder.add_not("z", "a")
    builder.add_output("y")
    builder.add_output("z")
    return builder.build()


class TestFaultFree:
    def test_combinational_values(self):
        simulator = ReferenceSimulator(_mux_like_circuit())
        trace = simulator.simulate(TestSequence([[0], [1]]))
        assert trace[0] == [ZERO, ONE]
        assert trace[1] == [ONE, ZERO]

    def test_sequential_x_propagation(self, toggle_circuit):
        simulator = ReferenceSimulator(toggle_circuit)
        trace = simulator.simulate(TestSequence([[1], [1]]))
        assert trace[0] == [X]
        assert trace[1] == [X]

    def test_reset_behaviour(self, resettable_toggle):
        simulator = ReferenceSimulator(resettable_toggle)
        trace = simulator.simulate(TestSequence([[0, 0], [1, 1]]))
        assert [row[0] for row in trace] == [X, ONE]


class TestStuckSemantics:
    def test_stem_fault_affects_all_loads(self):
        circuit = _mux_like_circuit()
        simulator = ReferenceSimulator(circuit)
        fault = Fault(FaultSite("a", STEM), 1)
        trace = simulator.simulate(TestSequence([[0]]), fault=fault)
        # Stuck stem: y sees 1, z sees NOT(1) = 0.
        assert trace[0] == [ONE, ZERO]

    def test_branch_fault_affects_one_load_only(self):
        circuit = _mux_like_circuit()
        simulator = ReferenceSimulator(circuit)
        fault = Fault(
            FaultSite("a", BRANCH, sink="z", pin=0, load_kind="gate"), 1
        )
        trace = simulator.simulate(TestSequence([[0]]), fault=fault)
        # Branch into z only: y still sees the true 0, z sees NOT(1).
        assert trace[0] == [ZERO, ZERO]

    def test_dff_branch_fault(self):
        builder = CircuitBuilder("d")
        builder.add_input("a")
        builder.add_flop("q", "a")
        builder.add_buf("y", "a")
        builder.add_buf("z", "q")
        builder.add_output("y")
        builder.add_output("z")
        circuit = builder.build()
        fault = Fault(FaultSite("a", BRANCH, sink="q", pin=0, load_kind="dff"), 0)
        simulator = ReferenceSimulator(circuit)
        trace = simulator.simulate(TestSequence([[1], [1]]), fault=fault)
        # y reads the healthy branch (1); the flop latched the stuck 0.
        assert trace[1] == [ONE, ZERO]

    def test_detection_time_definition(self):
        circuit = _mux_like_circuit()
        simulator = ReferenceSimulator(circuit)
        fault = Fault(FaultSite("a", STEM), 1)
        # First vector 1 (no difference), then 0 (difference).
        assert simulator.detection_time(TestSequence([[1], [0]]), fault) == 1
        assert simulator.detection_time(TestSequence([[1], [1]]), fault) is None
        assert simulator.detects(TestSequence([[0]]), fault)

    def test_x_blocks_detection(self, toggle_circuit):
        # Good machine output stays X, so nothing is ever detected.
        simulator = ReferenceSimulator(toggle_circuit)
        fault = Fault(FaultSite("q", STEM), 0)
        assert simulator.detection_time(TestSequence([[1], [0], [1]]), fault) is None
