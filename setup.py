from setuptools import find_packages, setup

setup(
    name="repro-bist",
    version="1.0.0",
    description=(
        "Reproduction of Pomeranz & Reddy (DAC 1999): built-in test "
        "sequence generation by loading and expansion of test subsequences"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # The embedded ISCAS-89 netlists are loaded via importlib.resources, so
    # they must ship inside the wheel, not just the source tree.
    package_data={
        "repro.circuits": ["data/*.bench"],
        # The native backend compiles this C source at first use, so the
        # wheel must carry it alongside the Python sources.
        "repro.sim": ["_native/*.c"],
    },
    include_package_data=True,
    python_requires=">=3.11",
    extras_require={
        # Optional vectorized simulation backend; the pure-Python backend
        # has no dependencies at all.
        "numpy": ["numpy>=1.24"],
    },
    entry_points={"console_scripts": ["repro-bist=repro.cli:main"]},
)
