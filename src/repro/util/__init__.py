"""Small shared utilities: seeded RNG helpers, timers, table rendering."""

from repro.util.rng import SplitMix64, derive_seed
from repro.util.timing import Stopwatch
from repro.util.text import format_table

__all__ = ["SplitMix64", "derive_seed", "Stopwatch", "format_table"]
