"""Deterministic random number generation.

Everything stochastic in this library (synthetic circuit generation, the
random omission order in Procedure 2, the genetic ATPG) draws from an
explicitly seeded generator so that experiments are exactly reproducible.

:class:`SplitMix64` is a tiny, well-known 64-bit mixing generator.  We use
it instead of :mod:`random` in the inner loops both for speed and so the
stream is stable across Python versions.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def derive_seed(base: int, *salts: int) -> int:
    """Derive a child seed from ``base`` and an arbitrary tuple of salts.

    Used to give every sub-component (circuit generator, ATPG phase,
    omission shuffle for fault ``f``...) an independent, reproducible
    stream without the components having to share generator state.
    """
    z = (base + _GOLDEN) & _MASK64
    for salt in salts:
        z = (z ^ ((salt * 0xBF58476D1CE4E5B9) & _MASK64)) & _MASK64
        z = ((z ^ (z >> 30)) * 0x94D049BB133111EB) & _MASK64
    return z & _MASK64


class SplitMix64:
    """SplitMix64 pseudo random generator with convenience draws."""

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        self._state = (self._state + _GOLDEN) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return (z ^ (z >> 31)) & _MASK64

    def randint(self, low: int, high: int) -> int:
        """Return an integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def random(self) -> float:
        """Return a float uniformly distributed in ``[0, 1)``."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def choice(self, seq):
        """Return a uniformly random element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.next_u64() % len(seq)]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place (Fisher-Yates)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_u64() % (i + 1)
            items[i], items[j] = items[j], items[i]

    def sample_bits(self, width: int, ones_probability: float = 0.5) -> list[int]:
        """Return ``width`` independent bits, each 1 with the given probability."""
        return [1 if self.random() < ones_probability else 0 for _ in range(width)]

    def fork(self, *salts: int) -> "SplitMix64":
        """Return an independent child generator derived from this one."""
        return SplitMix64(derive_seed(self._state, *salts))
