"""Wall-clock measurement helpers used by the experiment harness."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch.

    The harness uses one stopwatch per measured phase (Procedure 1, static
    compaction, baseline ``T0`` simulation) and reports ratios of the
    accumulated times, mirroring the paper's normalized run times.
    """

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started_at: float | None = None

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch; returns self for chaining."""
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the total accumulated seconds."""
        if self._started_at is not None:
            self._accumulated += time.perf_counter() - self._started_at
            self._started_at = None
        return self._accumulated

    @property
    def seconds(self) -> float:
        """Total accumulated seconds (including a running interval)."""
        total = self._accumulated
        if self._started_at is not None:
            total += time.perf_counter() - self._started_at
        return total

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
