"""Plain-text table rendering for experiment reports.

The benchmark harness prints tables in the same row/column layout as the
paper's Tables 3, 4 and 5, so the output can be compared side by side with
the published numbers.  No third-party table library is used.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    align_right: bool = True,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = []
        for index, cell in enumerate(cells):
            if align_right and index > 0:
                padded.append(cell.rjust(widths[index]))
            else:
                padded.append(cell.ljust(widths[index]))
        return "  ".join(padded).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def _cell(value: object) -> str:
    """Format one table cell; floats get a compact fixed precision."""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio used in Table 5 style columns (0 when denominator is 0)."""
    if denominator == 0:
        return 0.0
    return numerator / denominator
