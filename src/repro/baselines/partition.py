"""The partitioning and full-load baselines.

Partitioning semantics: each chunk is loaded into on-chip memory and
applied from the unknown (all-X) state, exactly like the proposed
scheme's subsequences, but *without expansion*.  A fault detected by
``T0`` at time ``udet`` inside chunk ``[s, e]`` is not necessarily
detected by the chunk alone — the machine state at ``s`` differs — so the
chunk must be extended backward (duplicating vectors before ``s``) until
coverage is restored.  The extension search reuses the same batched
window search as Procedure 2, with the identity expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ops import ExpansionConfig
from repro.core.sequence import TestSequence
from repro.core.session import Session, use_session
from repro.errors import SelectionError
from repro.faults.model import Fault
from repro.sim.compiled import CompiledCircuit
from repro.sim.scanplan import DEFAULT_CHUNKING, WindowRampPlan
from repro.sim.seqsim import SequenceBatchSimulator


@dataclass(frozen=True)
class FullLoadBaseline:
    """Store/load all of ``T0``: the paper's most expensive alternative."""

    t0_length: int

    @property
    def total_loaded_length(self) -> int:
        return self.t0_length

    @property
    def max_loaded_length(self) -> int:
        return self.t0_length

    @property
    def applied_vectors(self) -> int:
        return self.t0_length


def full_load_baseline(t0: TestSequence) -> FullLoadBaseline:
    """The trivial baseline record for ``t0``."""
    return FullLoadBaseline(t0_length=len(t0))


@dataclass
class PartitionChunk:
    """One loaded subsequence of the partitioning baseline."""

    index: int
    start: int  # first T0 position included (after extension)
    nominal_start: int  # partition boundary before extension
    end: int  # last T0 position included (inclusive)

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    @property
    def extension(self) -> int:
        return self.nominal_start - self.start


@dataclass
class PartitionResult:
    """Outcome of the partitioning baseline."""

    chunk_length: int
    chunks: list[PartitionChunk] = field(default_factory=list)
    coverage_preserved: bool = False
    faults_requiring_extension: int = 0
    #: Window candidates simulated by the extension searches — the same
    #: first-hit evaluated-count statistic Procedure 2 reports, so the
    #: baselines' search effort is comparable to the scheme's.
    candidates_simulated: int = 0

    @property
    def total_loaded_length(self) -> int:
        return sum(chunk.length for chunk in self.chunks)

    @property
    def max_loaded_length(self) -> int:
        return max((chunk.length for chunk in self.chunks), default=0)

    @property
    def applied_vectors(self) -> int:
        """No expansion: applied == loaded."""
        return self.total_loaded_length


def partition_baseline(
    compiled: CompiledCircuit,
    t0: TestSequence,
    faults: list[Fault],
    chunk_length: int,
    search_batch_width: int = 24,
    backend: str | None = None,
    workers: int = 1,
    chunking: str = DEFAULT_CHUNKING,
    session: Session | None = None,
) -> PartitionResult:
    """Partition ``t0`` into chunks of ``chunk_length``, extend for coverage.

    Guarantees the returned chunks jointly detect every fault ``t0``
    detects (the same contract the proposed scheme honours), at the cost
    of loading every vector at least once plus the overlap extensions.
    """
    if chunk_length < 1:
        raise SelectionError(f"chunk length must be positive, got {chunk_length}")
    with use_session(session) as sess:
        fault_simulator = sess.fault_simulator(
            compiled, backend=backend, workers=workers
        )
        sequence_simulator = sess.sequence_simulator(
            compiled,
            batch_width=search_batch_width,
            backend=backend,
            workers=workers,
            chunking=chunking,
        )
        baseline = fault_simulator.run(t0, faults)
        udet = dict(baseline.detection_time)

        result = PartitionResult(chunk_length=chunk_length)
        if not udet:
            result.coverage_preserved = True
            return result

        # Nominal partition into contiguous chunks.
        chunks: list[PartitionChunk] = []
        position = 0
        index = 0
        while position < len(t0):
            end = min(position + chunk_length - 1, len(t0) - 1)
            chunks.append(
                PartitionChunk(index=index, start=position, nominal_start=position, end=end)
            )
            position = end + 1
            index += 1

        # Assign faults to the chunk containing their detection time, check
        # chunk-local detection, extend backward where coverage is lost.
        for chunk in chunks:
            local_faults = [
                fault for fault, time in udet.items() if chunk.nominal_start <= time <= chunk.end
            ]
            if not local_faults:
                continue
            chunk_seq = t0.subsequence(chunk.start, chunk.end)
            detected = set(
                fault_simulator.run(chunk_seq, local_faults).detection_time
            )
            missing = [fault for fault in local_faults if fault not in detected]
            for fault in sorted(missing, key=lambda f: -udet[f]):
                result.faults_requiring_extension += 1
                new_start, evaluated = _extend_for_fault(
                    sequence_simulator,
                    t0,
                    fault,
                    udet[fault],
                    chunk,
                    search_batch_width,
                )
                result.candidates_simulated += evaluated
                chunk.start = min(chunk.start, new_start)

        result.chunks = chunks

        # Verify the contract with a final joint simulation.
        remaining = set(udet)
        for chunk in chunks:
            if not remaining:
                break
            chunk_seq = t0.subsequence(chunk.start, chunk.end)
            remaining -= set(
                fault_simulator.run(chunk_seq, sorted(remaining)).detection_time
            )
        result.coverage_preserved = not remaining
        if remaining:
            raise SelectionError(
                f"partition baseline lost {len(remaining)} faults — extension "
                "search inconsistency"
            )
        return result


#: The identity expansion: partitioning applies chunks verbatim, so its
#: window search runs Procedure 2's derived-window pipeline unexpanded.
_IDENTITY_EXPANSION = ExpansionConfig(
    repetitions=1, use_complement=False, use_shift=False, use_reverse=False
)


def _extend_for_fault(
    sequence_simulator: SequenceBatchSimulator,
    t0: TestSequence,
    fault: Fault,
    detection_time: int,
    chunk: PartitionChunk,
    batch_width: int,
) -> tuple[int, int]:
    """Largest start ``j <= chunk.start`` such that ``T0[j, chunk.end]``
    detects ``fault`` (guaranteed at ``j = 0``), plus the number of
    window candidates the scan evaluated (the serial chunked-scan
    formula — worker- and chunking-independent, like Procedure 2's).

    One first-hit scan over a :class:`WindowRampPlan`: candidates are
    described as ``(j, end)`` spans of ``T0`` (never materialized) and a
    sharded simulator spreads the plan across workers with first-hit
    cancellation at cost-balanced boundaries.
    """
    spans = [(j, chunk.end) for j in range(chunk.start, -1, -1)]
    plan = WindowRampPlan(t0, spans, _IDENTITY_EXPANSION)
    position, evaluated = sequence_simulator.first_hit(
        fault, plan, chunk=batch_width
    )
    if position is None:
        raise SelectionError(
            f"chunk extension failed for {fault} (udet={detection_time}); "
            "the full prefix must detect it"
        )
    return chunk.start - position, evaluated
