"""Baseline test-application schemes the paper compares against.

Section 1 of the paper positions load-and-expand against two simpler
alternatives:

* **full load** — store/load the complete ``T0`` on chip and apply it
  (maximum memory and loading time, trivially complete coverage);
* **partitioning** — split ``T0`` into contiguous subsequences loaded one
  at a time; every vector of ``T0`` is loaded at least once, and chunks
  must be *extended* (overlapped) wherever a fault's detection depends on
  warm-up state from before the chunk boundary.

Implementing both makes the paper's comparative claims measurable:
the proposed scheme loads *less* than ``T0`` in total (partitioning loads
at least ``|T0|``) and needs far less on-chip memory.
"""

from repro.baselines.partition import (
    FullLoadBaseline,
    PartitionResult,
    full_load_baseline,
    partition_baseline,
)

__all__ = [
    "FullLoadBaseline",
    "PartitionResult",
    "full_load_baseline",
    "partition_baseline",
]
