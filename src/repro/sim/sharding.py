"""Process-sharded parallel-fault simulation.

The bit-parallel :class:`~repro.sim.faultsim.FaultSimulator` is already
fault-parallel *within* one process (one fault per slot of the ``(H, L)``
words); this module adds the second axis: the fault universe is partitioned
into chunks and the chunks are simulated by a pool of worker processes,
each owning its own backend instance over its own compiled copy of the
circuit.

The design follows three rules:

* **Pickle once per worker.**  The circuit, the backend name, the batch
  width and the full fault list are published to the session's shared
  :class:`~repro.sim.workerpool.WorkerPool` as a *context*: each worker
  receives the spec exactly once and builds its own simulator from it.
  The pool itself persists across simulators (Procedure 1, Procedure 2,
  compaction and restoration all borrow the same processes), so spawn
  cost is paid once per session and the circuit once per worker per
  fault list.  Tasks reference faults by index into the published list
  (the context is rebound if a caller switches to faults outside it),
  and the good-machine observation plan crosses as a
  :class:`~repro.sim.trace.GoodTraceCache` shared-memory reference where
  available — simulated once per (circuit, sequence) per session,
  published once, attached by every chunk task — rather than being
  re-pickled into each of the ``workers x oversplit`` task tuples; so
  the per-task payload is the input sequence, a trace reference and a
  tuple of ints.  (Session advances, whose good machine starts from an
  evolving state, still ship their per-extension plan inline.)
* **Merge plain ints.**  Workers return per-slot first-detection times and
  (for sessions) packed flop states — the same backend-independent Python
  integers the serial simulator uses — so merging is dictionary updates
  and results are bit-identical to a serial run by construction.
* **Steal work.**  Chunks are oversplit (``oversplit`` chunks per worker,
  fed through ``imap_unordered`` one at a time), so a skewed chunk — e.g.
  a run of hard faults that never early-exit — does not leave the other
  workers idle.

Sharding only pays off once the universe is large enough to amortize the
inter-process traffic; below :data:`SERIAL_FALLBACK_FAULTS` (or whatever
``min_shard_faults`` is set to) every entry point silently runs the serial
engine instead, so a ``workers=8`` config is safe for s27-sized circuits.

The public entry point for consumers is :func:`make_fault_simulator`,
which returns a plain :class:`FaultSimulator` for ``workers <= 1`` and a
:class:`ShardedFaultSimulator` otherwise; the sharded class is a drop-in
subclass (same ``run`` / ``detects`` / ``session`` API), so Procedure 1/2,
the ATPG engine, the baselines and the harness opt in purely through the
``workers`` knob on their configs.  The candidate axis of Procedure 2 is
sharded by the sibling :mod:`repro.sim.seqshard` over the same pool.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuit.netlist import Circuit
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.sim.backend import SimBackend
from repro.sim.compiled import CompiledCircuit
from repro.sim.detection import FaultSimResult
from repro.sim.faultsim import (
    DEFAULT_BATCH_WIDTH,
    FaultSimSession,
    FaultSimulator,
    ObservationRow,
    build_observation_plan,
)
from repro.sim.scanplan import plan_count_chunks
from repro.sim.trace import resolve_observation_plan
from repro.sim.workerpool import (
    PoolContext,
    default_workers,
    get_worker_pool,
    resolve_work_distribution,
    single_core_machine,
    worker_state,
)

#: Below this many faults a sharded simulator runs serially: the cost of
#: shipping the sequence + observation plan to the pool and collecting the
#: results exceeds the simulation itself on small universes.
SERIAL_FALLBACK_FAULTS = 512

#: Target chunks per worker.  Oversplitting is what makes the pool
#: work-stealing: a worker that drew an easy chunk (early exits everywhere)
#: pulls the next one from the shared queue instead of idling.
DEFAULT_OVERSPLIT = 4

__all__ = [
    "SERIAL_FALLBACK_FAULTS",
    "DEFAULT_OVERSPLIT",
    "default_workers",
    "plan_chunks",
    "ShardedFaultSimulator",
    "ShardedFaultSimSession",
    "make_fault_simulator",
]


def plan_chunks(
    num_faults: int,
    workers: int,
    batch_width: int,
    oversplit: int = DEFAULT_OVERSPLIT,
) -> list[tuple[int, int]]:
    """Partition ``range(num_faults)`` into contiguous ``(start, end)`` chunks.

    The fault axis's plan is uniform-cost (every fault in a dispatch is
    simulated over the same sequence), so it keeps the count-based
    planner — now shared with the candidate axis as
    :func:`repro.sim.scanplan.plan_count_chunks`, which documents the
    batch-width floors.  Work stealing emerges exactly in the regime
    sharding is for (universes well past ``workers * batch_width``
    slots).  Never returns empty chunks, so a universe smaller than the
    worker count simply yields fewer chunks than workers.
    """
    return plan_count_chunks(num_faults, workers, batch_width, oversplit)


# ----------------------------------------------------------------------
# Worker-process side: fault-context builder and chunk task, both
# module-level (spawn-picklable) and dispatched by the shared pool.
# ----------------------------------------------------------------------
def build_fault_context(spec: tuple) -> dict:
    """Build this worker's simulator for one published fault context."""
    _, circuit, backend_name, batch_width, scan_mode, faults = spec
    compiled = CompiledCircuit(circuit)
    return {
        "simulator": FaultSimulator(
            compiled,
            batch_width=batch_width,
            backend=backend_name,
            scan_mode=scan_mode,
        ),
        "faults": faults,
    }


def _run_fault_chunk(
    task: tuple,
) -> tuple[int, list[int | None], list[int] | None]:
    """Simulate one chunk of faults; return (chunk id, times, final states).

    ``indices`` reference the fault list published with the context (the
    parent rebinds the context whenever it is asked about faults outside
    that list), so the per-task payload stays plain ints.
    """
    (
        context_id,
        chunk_id,
        indices,
        sequence,
        observation_plan,
        initial_states,
        collect,
    ) = task
    context = worker_state()["contexts"][context_id]
    simulator: FaultSimulator = context["simulator"]
    universe: list[Fault] = context["faults"]
    # One-shot dispatches ship the plan as a trace-cache shm reference
    # (attached and deserialized once per worker, not once per task);
    # session advances ship their per-extension plan inline.
    observation_plan = resolve_observation_plan(observation_plan)
    faults = [universe[index] for index in indices]
    width = simulator.batch_width
    times: list[int | None] = []
    finals: list[int] | None = [] if collect else None
    for start in range(0, len(faults), width):
        batch = faults[start : start + width]
        initial = (
            initial_states[start : start + width]
            if initial_states is not None
            else None
        )
        batch_times, batch_finals = simulator._run_batch(
            sequence,
            batch,
            observation_plan,
            initial_states=initial,
            collect_final_states=collect,
        )
        times.extend(batch_times)
        if collect and finals is not None and batch_finals is not None:
            finals.extend(batch_finals)
    return chunk_id, times, finals


class _FaultContext:
    """Parent-side handle: a registered fault context plus its index map."""

    __slots__ = ("handle", "faults", "index_of")

    def __init__(self, pool, context_id: int, faults: Sequence[Fault]) -> None:
        self.handle = PoolContext(pool, context_id)
        self.faults = list(faults)
        self.index_of: dict[Fault, int] = {
            fault: index for index, fault in enumerate(self.faults)
        }

    def covers(self, faults: Sequence[Fault]) -> bool:
        """Whether every fault can be referenced by index in this context."""
        index_of = self.index_of
        return all(fault in index_of for fault in faults)


class ShardedFaultSimulator(FaultSimulator):
    """A :class:`FaultSimulator` that fans fault chunks out to processes.

    Drop-in: ``run`` / ``session`` shard across ``workers`` processes when
    the fault list is large enough, and fall back to the inherited serial
    engine otherwise (including ``detects``, which is always a single
    fault and therefore always serial).  Detection times and session
    states are bit-identical to the serial simulator for any worker
    count — the parity suite enforces this.

    The simulator borrows the session's persistent
    :class:`~repro.sim.workerpool.WorkerPool` on the first sharded call
    and publishes its circuit/fault payload as a pool context;
    :meth:`close` (or the context manager) retires the context, while the
    pool itself stays warm for the next simulator.
    """

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        batch_width: int = DEFAULT_BATCH_WIDTH,
        backend: str | SimBackend | None = None,
        workers: int | None = None,
        min_shard_faults: int = SERIAL_FALLBACK_FAULTS,
        oversplit: int = DEFAULT_OVERSPLIT,
        scan_mode: str | None = None,
    ) -> None:
        super().__init__(
            circuit,
            batch_width=batch_width,
            backend=backend,
            scan_mode=scan_mode,
        )
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise SimulationError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._min_shard_faults = max(1, min_shard_faults)
        self._oversplit = max(1, oversplit)
        self._context: _FaultContext | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self._workers

    def close(self, _deferred: bool = False) -> None:
        """Retire this simulator's pool context (idempotent).

        The underlying worker pool is session-owned and stays warm; see
        :func:`repro.sim.workerpool.close_worker_pools` for final teardown.
        """
        if self._context is not None:
            self._context.handle.retire(deferred=_deferred)
            self._context = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            # Deferred: a finalizer may run on any thread mid-dispatch,
            # where a barrier broadcast on the shared pool is unsafe.
            self.close(_deferred=True)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Sharded entry points
    # ------------------------------------------------------------------
    def run(self, sequence: TestSequence, faults: list[Fault]) -> FaultSimResult:
        if not self.should_shard(len(faults)) or len(sequence) == 0:
            return super().run(sequence, faults)
        result = FaultSimResult(
            sequence_length=len(sequence), total_faults=len(faults)
        )
        observation_plan = self._observation_plan(sequence, None)
        # Publish the cached plan through shared memory where available:
        # tasks then carry a segment name instead of the pickled plan.
        plan_ref = self._trace_cache.plan_ref(sequence)
        times = self._run_sharded(
            sequence, faults, observation_plan, plan_ref=plan_ref
        )
        for fault, time in zip(faults, times):
            if time is not None:
                result.detection_time[fault] = time
        return result

    def session(self, faults: list[Fault]) -> FaultSimSession:
        if not self.should_shard(len(faults)):
            return FaultSimSession(self, faults)
        return ShardedFaultSimSession(self, faults)

    def should_shard(self, num_faults: int) -> bool:
        """Whether a fault list of this size goes to the pool."""
        return self._workers > 1 and num_faults >= self._min_shard_faults

    # ------------------------------------------------------------------
    # Internals (also used by ShardedFaultSimSession)
    # ------------------------------------------------------------------
    def _ensure_context(self, faults: list[Fault]) -> _FaultContext:
        """The current fault context, rebound if it cannot index ``faults``.

        Rebinding re-publishes the fault list to the (persistent) pool,
        so it only happens when a caller switches to a fault set that is
        not a subset of the one the context was built for (sessions and
        Procedure 1's shrinking target sets stay on the index path).
        """
        pool = get_worker_pool(self._workers)
        context = self._context
        if (
            context is not None
            and context.handle.pool is pool
            and context.covers(faults)
        ):
            return context
        if context is not None:
            context.handle.retire()
        # The resolved scan mode ships with the spec: spawned workers
        # inherit the environment only at pool start, not dispatch time.
        spec = (
            "fault",
            self._compiled.circuit,
            self._backend.name,
            self._batch_width,
            self._scan_mode,
            list(faults),
        )
        self._context = _FaultContext(pool, pool.register_context(spec), faults)
        return self._context

    def _run_sharded(
        self,
        sequence: TestSequence,
        faults: list[Fault],
        observation_plan: list[ObservationRow],
        initial_states: list[int] | None = None,
        collect_final_states: bool = False,
        plan_ref: tuple | None = None,
    ) -> list[int | None] | tuple[list[int | None], list[int]]:
        """Fan ``faults`` out in chunks; merge into fault-list order.

        ``plan_ref`` (a trace-cache shared-memory reference) replaces the
        inline observation plan in every task tuple when present.
        """
        context = self._ensure_context(faults)
        chunks = plan_chunks(
            len(faults), self._workers, self._batch_width, self._oversplit
        )
        plan_payload = plan_ref if plan_ref is not None else observation_plan
        tasks = []
        for chunk_id, (start, end) in enumerate(chunks):
            indices = tuple(context.index_of[fault] for fault in faults[start:end])
            initial = (
                initial_states[start:end] if initial_states is not None else None
            )
            tasks.append(
                (
                    context.handle.context_id,
                    chunk_id,
                    indices,
                    sequence,
                    plan_payload,
                    initial,
                    collect_final_states,
                )
            )
        times: list[int | None] = [None] * len(faults)
        finals: list[int] = [0] * len(faults) if collect_final_states else []
        outcomes = context.handle.pool.run_tasks(_run_fault_chunk, tasks)
        for chunk_id, chunk_times, chunk_finals in outcomes:
            start, end = chunks[chunk_id]
            times[start:end] = chunk_times
            if collect_final_states and chunk_finals is not None:
                finals[start:end] = chunk_finals
        if collect_final_states:
            return times, finals
        return times


class ShardedFaultSimSession(FaultSimSession):
    """A :class:`FaultSimSession` whose advances run on the shard pool.

    Bookkeeping (good-machine state, per-fault packed states, detection
    times) lives in the parent process exactly as in the serial session;
    only the faulty-machine batches travel.  Once fault dropping shrinks
    the remaining set below the sharding threshold, advances fall back to
    the inherited serial path automatically.
    """

    def __init__(
        self, simulator: ShardedFaultSimulator, faults: list[Fault]
    ) -> None:
        super().__init__(simulator, faults)
        self._sharded = simulator
        # Bind the context to the full universe up front: every later peek
        # / commit works on a subset, so chunks stay on the index path.
        simulator._ensure_context(faults)

    def _advance(self, extension, commit):
        faults = list(self._fault_states)
        if len(extension) == 0 or not self._sharded.should_shard(len(faults)):
            return super()._advance(extension, commit)
        simulator = self._sharded
        good = simulator._logic.run(extension, initial_state=self._good_state)
        observation_plan = build_observation_plan(good)
        initial = [self._fault_states[fault] for fault in faults]
        outcome = simulator._run_sharded(
            extension,
            faults,
            observation_plan,
            initial_states=initial,
            collect_final_states=commit,
        )
        if commit:
            times, packed = outcome
        else:
            times, packed = outcome, None
        detected: dict[Fault, int] = {}
        final_states: dict[Fault, int] | None = {} if commit else None
        for position, (fault, time) in enumerate(zip(faults, times)):
            if time is not None:
                detected[fault] = self._elapsed + time
            elif commit and packed is not None and final_states is not None:
                final_states[fault] = packed[position]
        good_final = good.final_state if commit else None
        return detected, final_states, good_final


def make_fault_simulator(
    circuit: Circuit | CompiledCircuit,
    batch_width: int = DEFAULT_BATCH_WIDTH,
    backend: str | SimBackend | None = None,
    workers: int = 1,
    min_shard_faults: int = SERIAL_FALLBACK_FAULTS,
    oversplit: int = DEFAULT_OVERSPLIT,
    force_shard: bool = False,
    scan_mode: str | None = None,
    parallel: str | None = None,
) -> FaultSimulator:
    """The work-distribution seam used by every fault-simulation consumer.

    ``parallel`` picks the tier (see
    :data:`~repro.sim.workerpool.PARALLEL_MODES`): ``"serial"`` one
    simulator on one kernel thread, ``"threads"`` one simulator whose
    native kernel splits each batch across ``workers`` in-process thread
    lanes, ``"processes"`` the shard pool, and ``"auto"`` (the default,
    also ``None``) the historical behaviour — ``workers <= 1`` serial,
    larger counts the :class:`ShardedFaultSimulator` (which still runs
    small universes serially — see :data:`SERIAL_FALLBACK_FAULTS`).
    ``workers=0`` / ``workers=None`` mean "one per CPU".

    On a single-core machine a multi-worker request falls back to the
    serial engine under every tier (sharding only adds process traffic
    there — see :func:`~repro.sim.workerpool.single_core_machine`)
    unless ``force_shard=True``, which honors the requested count
    regardless; benchmarks measuring the distribution layers themselves
    use the override.  Constructing :class:`ShardedFaultSimulator`
    directly also bypasses the fallback.  Detection times are
    bit-identical across every ``(parallel, workers)`` setting.
    """
    mode, workers = resolve_work_distribution(
        parallel, workers, force=force_shard
    )
    if mode == "threads":
        return FaultSimulator(
            circuit,
            batch_width=batch_width,
            backend=backend,
            scan_mode=scan_mode,
            threads=workers,
        )
    if workers > 1 and not force_shard and single_core_machine():
        workers = 1
    if workers <= 1 or mode == "serial":
        return FaultSimulator(
            circuit,
            batch_width=batch_width,
            backend=backend,
            scan_mode=scan_mode,
        )
    return ShardedFaultSimulator(
        circuit,
        batch_width=batch_width,
        backend=backend,
        workers=workers,
        min_shard_faults=min_shard_faults,
        oversplit=oversplit,
        scan_mode=scan_mode,
    )
