"""Inner-loop evaluation kernel shared by the bit-parallel simulators.

The kernel evaluates the combinational part of a compiled circuit over
``(H, L)`` mask words (see :mod:`repro.logic.encoding`).  Fault injection
masks from an :class:`~repro.sim.compiled.InjectionPlan` are merged into a
per-run op list so the hot loop does no dictionary lookups: each op is a
``(code, out, ins, gate_patch, stem_patch)`` tuple where the patches are
``None`` for the overwhelmingly common unfaulted case.

This module is deliberately written in a flat, slightly repetitive style:
it is the profile-dominating code of the whole library, and in CPython the
cheapest correct thing is a single tuple unpack plus one ``if`` chain per
gate (2-input gates, the common case, are special-cased).
"""

from __future__ import annotations

from repro.sim.compiled import (
    CompiledCircuit,
    InjectionPlan,
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)

#: A run-ready op: (code, out, ins, gate_patch, stem_patch).
RunOp = tuple[int, int, tuple[int, ...], tuple | None, tuple | None]


def build_run_ops(compiled: CompiledCircuit, plan: InjectionPlan | None) -> list[RunOp]:
    """Merge an injection plan into the compiled op list."""
    gate_patches: dict[int, list[tuple[int, int, int]]] = {}
    stem_patches: dict[int, tuple[int, int]] = {}
    if plan is not None:
        for (position, pin), (sa1, sa0) in plan.gate_pin.items():
            gate_patches.setdefault(position, []).append((pin, sa1, sa0))
        for signal_index, sa1 in plan.stem_sa1.items():
            old1, old0 = stem_patches.get(signal_index, (0, 0))
            stem_patches[signal_index] = (old1 | sa1, old0)
        for signal_index, sa0 in plan.stem_sa0.items():
            old1, old0 = stem_patches.get(signal_index, (0, 0))
            stem_patches[signal_index] = (old1, old0 | sa0)
    run_ops: list[RunOp] = []
    for position, (code, out, ins) in enumerate(compiled.ops):
        gate_patch = gate_patches.get(position)
        stem_patch = stem_patches.get(out)
        run_ops.append(
            (
                code,
                out,
                ins,
                tuple(gate_patch) if gate_patch else None,
                stem_patch,
            )
        )
    return run_ops


def merge_stem_patches(plan: InjectionPlan, keep) -> dict[int, tuple[int, int]]:
    """Merge a plan's per-signal stem masks into ``index -> (sa1, sa0)``.

    ``keep`` filters signal indices (e.g. sources only, or op outputs
    only); both backends derive their stem patch sets through this one
    merge so the semantics cannot diverge.
    """
    merged: dict[int, tuple[int, int]] = {}
    for signal_index, sa1 in plan.stem_sa1.items():
        if keep(signal_index):
            old1, old0 = merged.get(signal_index, (0, 0))
            merged[signal_index] = (old1 | sa1, old0)
    for signal_index, sa0 in plan.stem_sa0.items():
        if keep(signal_index):
            old1, old0 = merged.get(signal_index, (0, 0))
            merged[signal_index] = (old1, old0 | sa0)
    return merged


def source_stem_patches(
    compiled: CompiledCircuit, plan: InjectionPlan | None
) -> list[tuple[int, int, int]]:
    """Stem patches on PI / flop-output signals: ``(index, sa1, sa0)``.

    These lines are not produced by any op, so their stuck values must be
    applied whenever the simulator writes them (input load, state copy,
    initial all-X state).
    """
    if plan is None:
        return []
    source_count = compiled.num_inputs + len(compiled.flop_pairs)
    merged = merge_stem_patches(plan, lambda index: index < source_count)
    return [(index, sa1, sa0) for index, (sa1, sa0) in merged.items()]


def detect_pair_mask(
    po_indices: list[int],
    good_H: list[int],
    good_L: list[int],
    faulty_H: list[int],
    faulty_L: list[int],
    good_po_patches: dict[int, tuple[int, int]],
    faulty_po_patches: dict[int, tuple[int, int]],
) -> int:
    """Slots where a faulty machine's POs contradict the paired good machine.

    One flat pass over all POs of two evaluated batches: slot ``s`` is set
    when some PO is binary in both machines with opposite values
    (``(Hg & Lf) | (Lg & Hf)``).  PO pin patches (``index -> (sa1, sa0)``,
    by PO position) are applied to the observed values exactly as
    :meth:`~repro.sim.backend.SimBatch.observe_po` does.  This is the
    big-int inner loop of the paired-batch ``detect_step`` operation.
    """
    detected = 0
    for position, po_index in enumerate(po_indices):
        gh = good_H[po_index]
        gl = good_L[po_index]
        patch = good_po_patches.get(position)
        if patch is not None:
            sa1, sa0 = patch
            gh = (gh | sa1) & ~sa0
            gl = (gl | sa0) & ~sa1
        fh = faulty_H[po_index]
        fl = faulty_L[po_index]
        patch = faulty_po_patches.get(position)
        if patch is not None:
            sa1, sa0 = patch
            fh = (fh | sa1) & ~sa0
            fl = (fl | sa0) & ~sa1
        detected |= (gh & fl) | (gl & fh)
    return detected


def eval_combinational(run_ops: list[RunOp], H: list[int], L: list[int]) -> None:
    """Evaluate all ops in order, updating ``H``/``L`` in place."""
    for code, out, ins, gate_patch, stem_patch in run_ops:
        if gate_patch is None:
            if code == OP_NAND:
                if len(ins) == 2:
                    a, b = ins
                    h = L[a] | L[b]
                    l = H[a] & H[b]
                else:
                    l = -1
                    h = 0
                    for k in ins:
                        l &= H[k]
                        h |= L[k]
            elif code == OP_NOR:
                if len(ins) == 2:
                    a, b = ins
                    h = L[a] & L[b]
                    l = H[a] | H[b]
                else:
                    h = -1
                    l = 0
                    for k in ins:
                        h &= L[k]
                        l |= H[k]
            elif code == OP_AND:
                if len(ins) == 2:
                    a, b = ins
                    h = H[a] & H[b]
                    l = L[a] | L[b]
                else:
                    h = -1
                    l = 0
                    for k in ins:
                        h &= H[k]
                        l |= L[k]
            elif code == OP_OR:
                if len(ins) == 2:
                    a, b = ins
                    h = H[a] | H[b]
                    l = L[a] & L[b]
                else:
                    l = -1
                    h = 0
                    for k in ins:
                        l &= L[k]
                        h |= H[k]
            elif code == OP_NOT:
                k = ins[0]
                h = L[k]
                l = H[k]
            elif code == OP_BUF:
                k = ins[0]
                h = H[k]
                l = L[k]
            elif code == OP_XOR:
                k = ins[0]
                h = H[k]
                l = L[k]
                for k in ins[1:]:
                    hk = H[k]
                    lk = L[k]
                    h, l = (h & lk) | (l & hk), (h & hk) | (l & lk)
            else:  # OP_XNOR
                k = ins[0]
                h = H[k]
                l = L[k]
                for k in ins[1:]:
                    hk = H[k]
                    lk = L[k]
                    h, l = (h & lk) | (l & hk), (h & hk) | (l & lk)
                h, l = l, h
        else:
            hs = [H[k] for k in ins]
            ls = [L[k] for k in ins]
            for pin, sa1, sa0 in gate_patch:
                hs[pin] = (hs[pin] | sa1) & ~sa0
                ls[pin] = (ls[pin] | sa0) & ~sa1
            h, l = _fold(code, hs, ls)
        if stem_patch is not None:
            sa1, sa0 = stem_patch
            h = (h | sa1) & ~sa0
            l = (l | sa0) & ~sa1
        H[out] = h
        L[out] = l


def _fold(code: int, hs: list[int], ls: list[int]) -> tuple[int, int]:
    """Generic n-ary gate evaluation on gathered, patched input words."""
    if code == OP_AND or code == OP_NAND:
        h = -1
        l = 0
        for hk, lk in zip(hs, ls):
            h &= hk
            l |= lk
        if code == OP_NAND:
            h, l = l, h
        return h, l
    if code == OP_OR or code == OP_NOR:
        h = 0
        l = -1
        for hk, lk in zip(hs, ls):
            h |= hk
            l &= lk
        if code == OP_NOR:
            h, l = l, h
        return h, l
    if code == OP_NOT:
        return ls[0], hs[0]
    if code == OP_BUF:
        return hs[0], ls[0]
    # XOR / XNOR
    h = hs[0]
    l = ls[0]
    for hk, lk in zip(hs[1:], ls[1:]):
        h, l = (h & lk) | (l & hk), (h & hk) | (l & lk)
    if code == OP_XNOR:
        h, l = l, h
    return h, l
