"""The ScanPlan IR: one description of a candidate scan for every executor.

Procedure 2's inner loop is millions of *candidate scans* — "which of
these derived sequences detects fault ``f``, and which one first?".
Before this module, the description of such a scan was smeared across
four layers: Procedure 2 built span/index lists, :mod:`repro.sim.seqsim`
re-derived chunk boundaries for its serial first-hit loop,
:mod:`repro.sim.seqshard` planned worker chunks by candidate *count*,
and the partitioning baseline rebuilt the same window ramp with its own
identity expansion.  A :class:`ScanPlan` now carries the whole scan —
the candidate payload, the shared base, the expansion operator and a
per-candidate **cost** — and both the serial and the sharded executors
consume the same object, so results are bit-identical by construction
for any worker count and either chunking mode.

Cost model
----------

A bit-parallel candidate batch costs about as much as simulating its
*longest* member: slots ride along for free, passes are per-time-step
dispatch-dominated on both backends.  The cost of a candidate is
therefore its **expanded length** — for a window ``[s, e]`` under
expansion config ``x`` that is ``(e - s + 1) * x.length_multiplier``
time steps.  Procedure 2's window ramps are extreme: the scan
``ustart = udet .. 0`` grows linearly, so the last count-equal chunk of
a ramp holds ~2x the simulated steps of the first.  Count-based chunks
(the fault axis's plan, where every fault costs the same) therefore
skew worker load on ramps; :func:`plan_cost_chunks` instead cuts the
candidate list at equal simulated-step budgets, still floored at
``batch_width`` candidates so no chunk drops below one bit-parallel
pass.

Chunk boundaries never influence *results* on either axis — outcomes
merge by candidate index, first-hit winners are the global minimum
detecting index, and first-hit evaluated counts are recomputed from the
serial chunked-scan formula — so ``chunking="cost"`` vs ``"count"`` is a
pure throughput knob, enforced by the parity suite
(``tests/test_sim_scanplan.py``).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.ops import ExpansionConfig
from repro.core.sequence import TestSequence
from repro.errors import SimulationError

#: Chunk-boundary modes understood by :meth:`ScanPlan.chunks`.
CHUNKING_MODES = ("cost", "count")

#: Default chunking mode: cost-balanced boundaries (equal simulated-step
#: budgets).  For uniform-cost plans this degenerates to the count plan.
DEFAULT_CHUNKING = "cost"

#: Target chunks per worker (work stealing; see ``plan_count_chunks``).
DEFAULT_OVERSPLIT = 4


def validate_chunking(chunking: str) -> str:
    """Reject unknown chunking modes early, at config/construction time."""
    if chunking not in CHUNKING_MODES:
        raise SimulationError(
            f"unknown chunking mode {chunking!r}; expected one of "
            f"{CHUNKING_MODES}"
        )
    return chunking


# ----------------------------------------------------------------------
# Chunk planners
# ----------------------------------------------------------------------
def plan_count_chunks(
    num_items: int,
    workers: int,
    batch_width: int,
    oversplit: int = DEFAULT_OVERSPLIT,
) -> list[tuple[int, int]]:
    """Partition ``range(num_items)`` into contiguous ``(start, end)`` chunks.

    The historical count-based plan (previously
    ``repro.sim.sharding.plan_chunks``): aims for ``workers * oversplit``
    chunks with two floors that keep per-chunk backend passes efficient —

    * a chunk is never narrower than one full backend pass
      (``batch_width`` slots) unless even ``workers`` plain chunks would
      be — oversplitting below a full pass trades vectorization for
      stealing granularity, a bad deal for the wide-batch numpy engine;
    * chunks wider than one pass are rounded up to whole multiples of
      ``batch_width`` so only each chunk's final pass can be ragged.

    Never returns empty chunks, so a work list smaller than the worker
    count simply yields fewer chunks than workers.
    """
    if num_items <= 0:
        return []
    workers = max(1, workers)
    target = workers * max(1, oversplit)
    size = -(-num_items // target)  # ceil
    per_worker = -(-num_items // workers)
    size = max(size, min(batch_width, per_worker))
    if size > batch_width:
        size = -(-size // batch_width) * batch_width
    return [
        (start, min(start + size, num_items))
        for start in range(0, num_items, size)
    ]


def plan_cost_chunks(
    costs: Sequence[int],
    workers: int,
    batch_width: int,
    oversplit: int = DEFAULT_OVERSPLIT,
) -> list[tuple[int, int]]:
    """Cost-balanced contiguous chunks: equal simulated-step budgets.

    Greedily cuts the candidate list so every chunk carries about
    ``remaining_cost / remaining_chunks`` simulated steps (the budget is
    re-derived per cut, so one expensive candidate cannot starve the
    tail into slivers).  The count plan's two floors are preserved: a
    chunk never holds fewer than ``batch_width`` candidates (unless even
    ``workers`` plain chunks would — no chunk drops below one
    bit-parallel pass), and chunks wider than one pass snap up to whole
    ``batch_width`` multiples so only each chunk's final pass is ragged.

    With uniform costs the boundaries coincide with
    :func:`plan_count_chunks` up to rounding; on Procedure 2's window
    ramps (cost linear in position) the expensive end of the ramp gets
    proportionally fewer candidates per chunk, which is what balances
    worker wall-clock.
    """
    num_items = len(costs)
    if num_items <= 0:
        return []
    workers = max(1, workers)
    target = workers * max(1, oversplit)
    floor = min(batch_width, -(-num_items // workers))
    chunks: list[tuple[int, int]] = []
    remaining_cost = sum(costs)
    start = 0
    while start < num_items:
        remaining_chunks = max(1, target - len(chunks))
        budget = remaining_cost / remaining_chunks
        end = start
        acc = 0
        while end < num_items and (end - start < floor or acc < budget):
            acc += costs[end]
            end += 1
        size = end - start
        if size > batch_width:
            # Snap to whole passes; only the chunk's last pass is ragged.
            size = -(-size // batch_width) * batch_width
            end = min(start + size, num_items)
            acc = sum(costs[start:end])
        chunks.append((start, end))
        remaining_cost -= acc
        start = end
    return chunks


# ----------------------------------------------------------------------
# The plan IR
# ----------------------------------------------------------------------
class ScanPlan:
    """One candidate scan: payload, base, expansion and per-candidate cost.

    Subclasses fix ``kind`` (the executor dispatch tag, also the tag the
    sharded task tuples carry) and implement :meth:`costs` (simulated
    steps per candidate) plus :meth:`slice` (a sub-plan over a contiguous
    candidate range — what the serial chunked first-hit scan and the
    sharded chunk tasks consume).

    Plans validate their payload against the base at construction, so a
    malformed scan fails before any simulator work; the executor still
    checks the base's *width* against its circuit (a plan is
    circuit-independent).
    """

    __slots__ = ("items", "base", "expansion")

    kind = "abstract"

    def __init__(
        self,
        items: list,
        base: TestSequence | None,
        expansion: ExpansionConfig | None,
    ) -> None:
        self.items = items
        self.base = base
        self.expansion = expansion

    @property
    def num_candidates(self) -> int:
        return len(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def costs(self) -> list[int]:
        """Simulated-step cost per candidate (its expanded length)."""
        raise NotImplementedError

    def total_cost(self) -> int:
        return sum(self.costs())

    def slice(self, start: int, end: int) -> "ScanPlan":
        """The sub-plan over candidates ``start:end`` (same base/expansion)."""
        clone = type(self).__new__(type(self))
        ScanPlan.__init__(clone, self.items[start:end], self.base, self.expansion)
        return clone

    def chunks(
        self,
        workers: int,
        batch_width: int,
        oversplit: int = DEFAULT_OVERSPLIT,
        chunking: str = DEFAULT_CHUNKING,
    ) -> list[tuple[int, int]]:
        """Contiguous ``(start, end)`` chunk boundaries for distribution.

        ``chunking="cost"`` balances simulated-step budgets
        (:func:`plan_cost_chunks`); ``"count"`` is the historical
        candidate-count plan (:func:`plan_count_chunks`).  Boundaries are
        a pure throughput choice — results are identical either way.
        """
        validate_chunking(chunking)
        if chunking == "cost":
            return plan_cost_chunks(self.costs(), workers, batch_width, oversplit)
        return plan_count_chunks(len(self.items), workers, batch_width, oversplit)

    def chunk_stats(
        self,
        workers: int,
        batch_width: int,
        oversplit: int = DEFAULT_OVERSPLIT,
        chunking: str = DEFAULT_CHUNKING,
    ) -> dict:
        """Observability: chunk count and cost spread of a plan's chunks.

        ``cost_imbalance`` is ``max_chunk_cost / mean_chunk_cost`` — 1.0
        is a perfectly balanced plan; count-based chunking of a window
        ramp approaches ~2x.  Recorded per workload by
        ``benchmarks/bench_seqsim.py``.
        """
        boundaries = self.chunks(workers, batch_width, oversplit, chunking)
        costs = self.costs()
        chunk_costs = [sum(costs[start:end]) for start, end in boundaries]
        total = sum(chunk_costs)
        mean = total / len(chunk_costs) if chunk_costs else 0.0
        return {
            "chunking": chunking,
            "num_chunks": len(boundaries),
            "total_cost": total,
            "max_chunk_cost": max(chunk_costs, default=0),
            "min_chunk_cost": min(chunk_costs, default=0),
            "cost_imbalance": (max(chunk_costs) / mean) if mean else 0.0,
        }


class WindowRampPlan(ScanPlan):
    """Spans ``(start, end)`` of a base: ``expand(base[start..end], x)``.

    Procedure 2's phase-1 ``ustart`` ramp and the partitioning baseline's
    extension search (identity expansion).  Cost grows linearly with the
    window length — the shape cost-balanced chunking exists for.
    """

    __slots__ = ()

    kind = "windows"

    def __init__(
        self,
        base: TestSequence,
        spans: Sequence[tuple[int, int]],
        expansion: ExpansionConfig,
    ) -> None:
        spans = [tuple(span) for span in spans]
        length = len(base)
        for start, end in spans:
            if start < 0 or end >= length or start > end:
                raise SimulationError(
                    f"window [{start}, {end}] out of range for base of "
                    f"length {length}"
                )
        super().__init__(spans, base, expansion)

    def costs(self) -> list[int]:
        multiplier = self.expansion.length_multiplier
        return [(end - start + 1) * multiplier for start, end in self.items]

    def index_lists(self) -> list:
        """Each span as an index list into the base (the packer's input)."""
        return [range(start, end + 1) for start, end in self.items]


class OmissionPlan(ScanPlan):
    """Single-vector omissions: ``expand(base.omit(index), x)``.

    Procedure 2's phase-2 trials.  Uniform cost (every candidate is one
    vector shorter than the base), so cost and count chunking coincide up
    to rounding.
    """

    __slots__ = ()

    kind = "omissions"

    def __init__(
        self,
        base: TestSequence,
        omit_indices: Sequence[int],
        expansion: ExpansionConfig,
    ) -> None:
        omit_indices = [int(index) for index in omit_indices]
        length = len(base)
        for index in omit_indices:
            if not 0 <= index < length:
                raise SimulationError(
                    f"omit index {index} out of range for base of length "
                    f"{length}"
                )
        super().__init__(omit_indices, base, expansion)

    def costs(self) -> list[int]:
        cost = max(0, len(self.base) - 1) * self.expansion.length_multiplier
        return [cost] * len(self.items)

    def index_lists(self) -> list:
        length = len(self.base)
        return [
            [j for j in range(length) if j != index] for index in self.items
        ]


class ExplicitPlan(ScanPlan):
    """Materialized candidate sequences (no shared base, no expansion).

    The restoration compactor's kept-set candidates and the generic
    ``detects`` API.  Cost is each candidate's own length.
    """

    __slots__ = ()

    kind = "explicit"

    def __init__(self, sequences: Sequence[TestSequence]) -> None:
        super().__init__(list(sequences), None, None)

    def costs(self) -> list[int]:
        return [len(sequence) for sequence in self.items]
