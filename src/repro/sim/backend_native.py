"""The ``native`` backend: the numpy data layout driven by a C kernel.

This engine reuses the ``numpy`` backend's storage wholesale — one
C-contiguous ``(2 * num_signals, words)`` ``uint64`` rail array per
batch, the same ``(H, L)`` encoding, the same source/dff/PO patch
compilation — and replaces the three profile-dominating inner loops with
calls into a compiled shared object (see ``_native/repro_kernel.c`` and
:mod:`repro.sim.native_build`):

* :meth:`NativeBatch.eval` — one C call walks the full compiled op list
  in topological order (the big-int reference kernel's exact schedule,
  so results are bit-identical by construction), instead of the numpy
  engine's per-level fused passes.  This removes all per-level Python
  and numpy dispatch overhead, which is what bounds the numpy engine's
  single-thread throughput on deep circuits.
* :meth:`NativeBatch.detect_mask` — the fault-axis PO comparison, one C
  pass over the observed POs (the numpy engine loops them in Python).
* :meth:`NativeBackend.detect_step` — the fused paired-batch
  candidate-axis reduction, likewise one C pass over all POs.

Everything else — input loading, state capture/interchange, source-stem
mask passes, program compilation and the per-fault-batch LRU — is
inherited from :class:`~repro.sim.backend_numpy.NumpyBackend`
unchanged; those paths are a handful of vectorized calls per time step
and are not where the time goes.

Fault injection crosses into C as three sorted, dense-by-entry arrays
compiled per fault batch (gate-pin patches, gate-output stem patches,
and dense per-PO pin masks); the eval walk merges them cursor-style so
the unfaulted common case costs one integer compare per op.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.sim.backend import SimBatch, SimProgram, record_dispatch
from repro.sim.backend_numpy import (
    WORD_BITS,
    NumpyBackend,
    NumpyBatch,
    NumpyProgram,
    _mask_to_words,
    _masks_to_matrix,
    _words_to_mask,
)
from repro.sim.kernel import merge_stem_patches
from repro.sim.native_build import load_native_library


def _addr(array: np.ndarray) -> int:
    """The raw data address of a (C-contiguous) array, for the C ABI."""
    return array.ctypes.data


class NativeProgram(NumpyProgram):
    """A numpy program plus the C kernel's per-batch patch arrays."""

    __slots__ = (
        "pin_ops",
        "pin_pins",
        "pin_sa1",
        "pin_sa0",
        "stem_ops",
        "stem_sa1",
        "stem_sa0",
        "_dense_po",
        "_scan_patches",
    )

    def __init__(self, numpy_program: NumpyProgram, native_fields: dict) -> None:
        super().__init__(
            numpy_program.key,
            numpy_program.batch_size,
            numpy_program.words,
            numpy_program.fixups_by_level,
            numpy_program.src_pass,
            numpy_program.dff_pass,
            numpy_program.po_patches,
            numpy_program.max_group,
        )
        self.pin_ops = native_fields["pin_ops"]
        self.pin_pins = native_fields["pin_pins"]
        self.pin_sa1 = native_fields["pin_sa1"]
        self.pin_sa0 = native_fields["pin_sa0"]
        self.stem_ops = native_fields["stem_ops"]
        self.stem_sa1 = native_fields["stem_sa1"]
        self.stem_sa0 = native_fields["stem_sa0"]
        #: words -> dense (num_pos, words) (sa1, sa0) PO masks.  Faulted
        #: programs are bound to one batch width; the fault-free program
        #: serves every width, hence the per-words memo.
        self._dense_po: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: words -> the eight C-ready source/flop patch arrays for
        #: repro_scan (same per-words memo rationale as _dense_po).
        self._scan_patches: dict[int, tuple] = {}

    def scan_patches(self, words: int) -> tuple:
        """C-ready ``(src_rows, src_force, src_keep, dff_pos, force_h,
        keep_h, force_l, keep_l)`` arrays for the fused scan kernel."""
        cached = self._scan_patches.get(words)
        if cached is None:
            if self.src_pass is not None:
                _, rows, force, keep = self.src_pass
                src = (
                    np.ascontiguousarray(rows, dtype=np.int32),
                    np.ascontiguousarray(force),
                    np.ascontiguousarray(keep),
                )
            else:
                src = (
                    np.zeros(0, dtype=np.int32),
                    np.zeros((0, words), dtype=np.uint64),
                    np.zeros((0, words), dtype=np.uint64),
                )
            if self.dff_pass is not None:
                _, positions, force_h, keep_h, force_l, keep_l = self.dff_pass
                dff = (
                    np.ascontiguousarray(positions, dtype=np.int32),
                    np.ascontiguousarray(force_h),
                    np.ascontiguousarray(keep_h),
                    np.ascontiguousarray(force_l),
                    np.ascontiguousarray(keep_l),
                )
            else:
                empty = np.zeros((0, words), dtype=np.uint64)
                dff = (np.zeros(0, dtype=np.int32), empty, empty, empty, empty)
            cached = src + dff
            self._scan_patches[words] = cached
        return cached

    def dense_po_masks(
        self, num_pos: int, words: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense per-PO-position pin masks for the C detection passes.

        Unpatched positions hold zeros, making ``(h | sa1) & ~sa0`` the
        identity — the C side needs no branch.
        """
        cached = self._dense_po.get(words)
        if cached is None:
            sa1 = np.zeros((num_pos, words), dtype=np.uint64)
            sa0 = np.zeros((num_pos, words), dtype=np.uint64)
            for position, (force1, force0) in self.po_patches.items():
                sa1[position] = force1
                sa0[position] = force0
            cached = (sa1, sa0)
            self._dense_po[words] = cached
        return cached


class NativeBatch(NumpyBatch):
    """A numpy batch whose hot loops run in the compiled kernel."""

    def __init__(
        self, backend: "NativeBackend", program: NativeProgram, batch_size: int
    ) -> None:
        super().__init__(backend, program, batch_size)
        words = self._words
        lib = backend.lib
        self._lib = lib
        num_pos = len(backend.po_sig)
        self._po_sa1, self._po_sa0 = program.dense_po_masks(num_pos, words)
        self._detect_out = np.zeros(words, dtype=np.uint64)
        self._gather = np.empty(
            (2 * max(backend.max_arity, 1), words), dtype=np.uint64
        )
        # The eval argument vector is invariant across time steps; the
        # arrays it points into are kept alive by self/backend/program.
        self._eval_args = (
            _addr(self._V),
            words,
            _addr(backend.c_codes),
            _addr(backend.c_outs),
            _addr(backend.c_in_off),
            _addr(backend.c_ins),
            len(backend.compiled.ops),
            _addr(program.pin_ops),
            _addr(program.pin_pins),
            _addr(program.pin_sa1),
            _addr(program.pin_sa0),
            len(program.pin_ops),
            _addr(program.stem_ops),
            _addr(program.stem_sa1),
            _addr(program.stem_sa0),
            len(program.stem_ops),
            _addr(self._gather),
        )

    def eval(self) -> None:
        record_dispatch("native_ffi_calls")
        self._lib.repro_eval(*self._eval_args, self.threads)

    def detect_mask(self, observations: Sequence[tuple[int, int]]) -> int:
        if not observations:
            return 0
        record_dispatch("native_ffi_calls")
        n = len(observations)
        obs_pos = np.fromiter(
            (position for position, _ in observations),
            dtype=np.int32,
            count=n,
        )
        good_vals = np.fromiter(
            (value for _, value in observations), dtype=np.uint8, count=n
        )
        out = self._detect_out
        out[:] = 0
        self._lib.repro_detect_mask(
            _addr(self._V),
            self._words,
            _addr(obs_pos),
            _addr(good_vals),
            n,
            _addr(self._backend.po_sig),
            _addr(self._po_sa1),
            _addr(self._po_sa0),
            _addr(out),
        )
        return _words_to_mask(out) & self._full_mask


class NativeBackend(NumpyBackend):
    """C-kernel backend over the numpy rail layout."""

    name = "native"
    word_width = WORD_BITS

    def __init__(self, compiled, fuse_levels: bool = True) -> None:
        super().__init__(compiled, fuse_levels=fuse_levels)
        self.lib = load_native_library()
        ops = compiled.ops
        num_ops = len(ops)
        self.c_codes = np.fromiter(
            (code for code, _, _ in ops), dtype=np.int32, count=num_ops
        )
        self.c_outs = np.fromiter(
            (out for _, out, _ in ops), dtype=np.int32, count=num_ops
        )
        offsets = np.zeros(num_ops + 1, dtype=np.int64)
        for position, (_, _, ins) in enumerate(ops):
            offsets[position + 1] = offsets[position] + len(ins)
        self.c_in_off = offsets
        self.c_ins = np.fromiter(
            (k for _, _, ins in ops for k in ins),
            dtype=np.int32,
            count=int(offsets[-1]),
        )
        self.max_arity = max((len(ins) for _, _, ins in ops), default=1)
        self.po_sig = np.asarray(compiled.po_indices, dtype=np.int32)
        self.c_pi = np.asarray(compiled.pi_indices, dtype=np.int32)
        self.c_q = np.asarray(
            [q for q, _ in compiled.flop_pairs], dtype=np.int32
        )
        self.c_d = np.asarray(
            [d for _, d in compiled.flop_pairs], dtype=np.int32
        )
        #: op position of every gate-output signal, for stem patches.
        self._pos_of_out = {out: position for position, (_, out, _) in enumerate(ops)}

    # ------------------------------------------------------------------
    # Program compilation
    # ------------------------------------------------------------------
    def _compile_program(self, faults: tuple[Fault, ...] | None) -> NativeProgram:
        numpy_program = super()._compile_program(faults)
        words = numpy_program.words or 1
        empty_i32 = np.zeros(0, dtype=np.int32)
        empty_masks = np.zeros((0, words), dtype=np.uint64)
        fields = {
            "pin_ops": empty_i32,
            "pin_pins": empty_i32,
            "pin_sa1": empty_masks,
            "pin_sa0": empty_masks,
            "stem_ops": empty_i32,
            "stem_sa1": empty_masks,
            "stem_sa0": empty_masks,
        }
        if faults is not None:
            plan = self._compiled.compile_plan(list(faults))
            pins = sorted(plan.gate_pin.items())
            if pins:
                fields["pin_ops"] = np.asarray(
                    [position for (position, _), _ in pins], dtype=np.int32
                )
                fields["pin_pins"] = np.asarray(
                    [pin for (_, pin), _ in pins], dtype=np.int32
                )
                fields["pin_sa1"] = np.stack(
                    [_mask_to_words(sa1, words) for _, (sa1, _) in pins]
                )
                fields["pin_sa0"] = np.stack(
                    [_mask_to_words(sa0, words) for _, (_, sa0) in pins]
                )
            num_sources = self._compiled.num_inputs + len(
                self._compiled.flop_pairs
            )
            stems = merge_stem_patches(
                plan, lambda index: index >= num_sources
            )
            if stems:
                by_position = sorted(
                    (self._pos_of_out[signal_index], sa1, sa0)
                    for signal_index, (sa1, sa0) in stems.items()
                )
                fields["stem_ops"] = np.asarray(
                    [position for position, _, _ in by_position],
                    dtype=np.int32,
                )
                fields["stem_sa1"] = np.stack(
                    [_mask_to_words(sa1, words) for _, sa1, _ in by_position]
                )
                fields["stem_sa0"] = np.stack(
                    [_mask_to_words(sa0, words) for _, _, sa0 in by_position]
                )
        return NativeProgram(numpy_program, fields)

    def batch(self, program: SimProgram, batch_size: int) -> NativeBatch:
        assert isinstance(program, NativeProgram)
        if program.batch_size is not None and program.batch_size != batch_size:
            raise SimulationError(
                f"program compiled for batch size {program.batch_size}, "
                f"batch opened with {batch_size}"
            )
        return NativeBatch(self, program, batch_size)

    def detect_step(
        self, good: SimBatch, faulty: SimBatch, alive_mask: int
    ) -> int:
        """Paired-batch detection in one C pass over all POs."""
        if alive_mask == 0:
            return 0
        assert isinstance(good, NativeBatch) and isinstance(faulty, NativeBatch)
        assert good._words == faulty._words
        record_dispatch("native_ffi_calls")
        out = good._detect_out
        out[:] = 0
        self.lib.repro_detect_step(
            _addr(good._V),
            _addr(faulty._V),
            good._words,
            _addr(self.po_sig),
            len(self.po_sig),
            _addr(good._po_sa1),
            _addr(good._po_sa0),
            _addr(faulty._po_sa1),
            _addr(faulty._po_sa0),
            _addr(out),
            max(good.threads, faulty.threads),
        )
        return _words_to_mask(out) & alive_mask

    # ------------------------------------------------------------------
    # Fused whole-sequence scan
    # ------------------------------------------------------------------
    def run_scan(
        self,
        good: SimBatch | None,
        faulty: SimBatch,
        packed_stimulus,
        observation_plan,
        alive_mask,
        *,
        collect_final_states: bool = False,
    ) -> list[int | None]:
        """All ``num_steps`` time steps in GIL-released C calls.

        Candidate mode (``observation_plan is None``) issues one call per
        packed stimulus chunk; fault mode issues a single call for the
        whole sequence.  The C side owns the per-step loop — input load,
        good/faulty eval, detection, first-hit bookkeeping and the flop
        latch — so the Python cost is O(chunks), not O(steps).  Stimuli
        without a packed-array form fall back to the stepped base scan.
        """
        paired = observation_plan is None
        if paired:
            chunk_arrays = getattr(packed_stimulus, "chunk_arrays", None)
            if chunk_arrays is None:
                return super().run_scan(
                    good,
                    faulty,
                    packed_stimulus,
                    observation_plan,
                    alive_mask,
                    collect_final_states=collect_final_states,
                )
        else:
            bits_of = getattr(packed_stimulus, "bits", None)
            if bits_of is None:
                return super().run_scan(
                    good,
                    faulty,
                    packed_stimulus,
                    observation_plan,
                    alive_mask,
                    collect_final_states=collect_final_states,
                )
        num_steps = packed_stimulus.num_steps
        num_slots = packed_stimulus.num_slots
        times_out: list[int | None] = [None] * num_slots
        if num_steps == 0 or num_slots == 0:
            record_dispatch("scan_calls")
            return times_out
        assert isinstance(faulty, NativeBatch)
        words = faulty._words
        program = faulty._program
        assert isinstance(program, NativeProgram)
        full_mask = (1 << num_slots) - 1
        # A steady alive mask folds into the initial pending words (the
        # kernel then treats a NULL alive pointer as all-live), which is
        # equivalent to intersecting per step; per-step masks travel as
        # packed (num_steps, words) rows.
        alive_rows: np.ndarray | None = None
        if isinstance(alive_mask, int):
            pending = _mask_to_words(full_mask & alive_mask, words)
        else:
            pending = _mask_to_words(full_mask, words)
            alive_rows = getattr(packed_stimulus, "alive_words", None)
            if alive_rows is None:
                alive_rows = _masks_to_matrix(list(alive_mask), words)
        times = np.full(words * WORD_BITS, -1, dtype=np.int64)
        det = np.zeros(words, dtype=np.uint64)
        (
            src_rows,
            src_force,
            src_keep,
            dff_pos,
            dff_force_h,
            dff_keep_h,
            dff_force_l,
            dff_keep_l,
        ) = program.scan_patches(words)
        if paired:
            assert isinstance(good, NativeBatch) and good._words == words
            gv = _addr(good._V)
            g_sh, g_sl = _addr(good._SH), _addr(good._SL)
            g_po_sa1, g_po_sa0 = _addr(good._po_sa1), _addr(good._po_sa0)
            obs_off = obs_pos = obs_vals = None
        else:
            gv = g_sh = g_sl = g_po_sa1 = g_po_sa0 = None
            plan = observation_plan
            counts = np.fromiter(
                (len(plan[t]) for t in range(num_steps)),
                dtype=np.int64,
                count=num_steps,
            )
            obs_off = np.zeros(num_steps + 1, dtype=np.int64)
            np.cumsum(counts, out=obs_off[1:])
            total = int(obs_off[-1])
            obs_pos = np.fromiter(
                (p for t in range(num_steps) for p, _ in plan[t]),
                dtype=np.int32,
                count=total,
            )
            obs_vals = np.fromiter(
                (
                    1 if v else 0
                    for t in range(num_steps)
                    for _, v in plan[t]
                ),
                dtype=np.uint8,
                count=total,
            )
        # Invariant argument prefix/suffix, built once per scan; only the
        # stimulus pointers, chunk bounds and alive row pointer vary.
        head = (
            gv,
            _addr(faulty._V),
            words,
            _addr(self.c_codes),
            _addr(self.c_outs),
            _addr(self.c_in_off),
            _addr(self.c_ins),
            len(self.compiled.ops),
            _addr(program.pin_ops),
            _addr(program.pin_pins),
            _addr(program.pin_sa1),
            _addr(program.pin_sa0),
            len(program.pin_ops),
            _addr(program.stem_ops),
            _addr(program.stem_sa1),
            _addr(program.stem_sa0),
            len(program.stem_ops),
            _addr(faulty._gather),
            _addr(src_rows),
            _addr(src_force),
            _addr(src_keep),
            len(src_rows),
            _addr(self.c_pi),
            len(self.c_pi),
            _addr(self.c_q),
            _addr(self.c_d),
            len(self.c_q),
            _addr(dff_pos),
            _addr(dff_force_h),
            _addr(dff_keep_h),
            _addr(dff_force_l),
            _addr(dff_keep_l),
            len(dff_pos),
            g_sh,
            g_sl,
            _addr(faulty._SH),
            _addr(faulty._SL),
        )
        tail = (
            _addr(self.po_sig),
            len(self.po_sig),
            g_po_sa1,
            g_po_sa0,
            _addr(faulty._po_sa1),
            _addr(faulty._po_sa0),
            None if obs_off is None else _addr(obs_off),
            None if obs_pos is None else _addr(obs_pos),
            None if obs_vals is None else _addr(obs_vals),
        )
        # Thread lanes for the kernel's word-span partition; bit-identical
        # at any count, so the stepped/fused parity contract is unchanged.
        fixed = (
            _addr(pending),
            _addr(times),
            _addr(det),
            int(collect_final_states),
            faulty.threads,
        )
        executed = 0
        if paired:
            t = 0
            while t < num_steps:
                t0, t1, ones, zeros = chunk_arrays(t)
                alive_ptr = (
                    None
                    if alive_rows is None
                    else alive_rows[t0:t1].ctypes.data
                )
                record_dispatch("native_ffi_calls")
                ret = int(
                    self.lib.repro_scan(
                        *head,
                        _addr(ones),
                        _addr(zeros),
                        None,
                        t0,
                        t1 - t0,
                        *tail,
                        alive_ptr,
                        *fixed,
                    )
                )
                finished = ret < 0
                executed += -ret - 1 if finished else ret
                if finished:
                    break
                t = t1
        else:
            bits = np.ascontiguousarray(bits_of(), dtype=np.uint8)
            record_dispatch("native_ffi_calls")
            ret = int(
                self.lib.repro_scan(
                    *head,
                    None,
                    None,
                    _addr(bits),
                    0,
                    num_steps,
                    *tail,
                    None,
                    *fixed,
                )
            )
            executed = -ret - 1 if ret < 0 else ret
        for slot in range(num_slots):
            t_hit = int(times[slot])
            if t_hit >= 0:
                times_out[slot] = t_hit
        record_dispatch("scan_calls")
        record_dispatch("scan_steps", executed)
        return times_out
