"""The ``numpy`` backend: contiguous ``uint64`` rails, vectorized passes.

Storage
    All signal values live in one C-contiguous ``(2 * num_signals, words)``
    ``uint64`` array ``V``, ``words = ceil(batch_size / 64)``; signal ``i``'s
    ``H`` rail is row ``2i`` and its ``L`` rail is row ``2i + 1``, and slot
    ``s`` is bit ``s % 64`` of word ``s // 64``.  In the ``(H, L)``
    encoding, *inverting a signal is swapping its two rows*, which is the
    key to pass fusion below.

Schedule
    The circuit is levelized once per backend (level of a gate = 1 + max
    level of its inputs; PIs and flop outputs are level 0), and the levels
    are then fused into *slots*: a small level whose outputs are not read
    by the next level's fan-in is deferred and merged into a later slot,
    so thin schedule tails collapse into fewer, wider passes (see
    :meth:`NumpyBackend._levelize`).  Within a slot no gate reads
    another's output, so evaluation order inside a slot is free, and gates
    are fused into a handful of vectorized passes per slot:

    * **and-family** — AND, OR, NAND and NOR all normalize to
      ``X = V[i...] & ...``, ``Y = V[j...] | ...`` with input and output
      inversions folded into the gathered row indices (De Morgan as index
      arithmetic); NOT and BUF are the arity-1 degenerate cases.  One pass
      per slot per arity covers all six opcodes.
    * **xor-family** — XOR and XNOR share one muxing pass, with XNOR's
      output inversion folded into its scatter indices.

    Gathers go through ``ndarray.take(..., out=...)`` into preallocated
    scratch buffers, so the hot loop does almost no allocation.  Batches
    that fit a single ``uint64`` word (``words == 1``) run the same passes
    over 1-D views of the rails, skipping the 2-D gather/scatter
    machinery's per-call overhead — the shape Procedure 2's narrow
    omission batches produce.

Fault injection
    A compiled program keeps the static schedule untouched and adds
    per-level *patched passes*: gates with faulted input pins are
    re-evaluated — again fused by family and arity, with the pin patches
    applied as ``(value | force_mask) & keep_mask`` matrices between
    gather and combine — after the level's static passes ran, and stem
    patches are masked onto the just-computed rows in one vectorized
    gather/modify/scatter.  Same-level gates never read each other, so
    overwriting after the static pass is safe, and deeper levels read the
    corrected values.  Wide fault batches patch ~1 site per slot, so these
    passes stay much smaller than the static schedule, and compiled
    programs are LRU-cached per fault batch on top.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.logic.values import ONE, ZERO, Ternary
from repro.sim.backend import (
    SimBackend,
    SimBatch,
    SimProgram,
    pack_states,
    record_dispatch,
    unpack_states,
)
from repro.sim.compiled import (
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
)
from repro.sim.kernel import merge_stem_patches, source_stem_patches

WORD_BITS = 64
_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)

# Pass kinds (first tuple element) in static and patched schedules.
_PASS_AND_FAMILY = 0
_PASS_XOR = 1
_PASS_MASK_ROWS = 2

#: Same-arity groups at least this large keep their own pass; smaller
#: groups of a level merge into one padded mixed-arity pass.
_MIN_UNIFORM_GROUP = 48

#: Levels with at most this many gates are deferred and fused into a
#: later slot when the next level's fan-in allows (i.e. does not read any
#: deferred output).  Deep circuits taper into long chains of tiny
#: levels; fusing them cuts per-pass numpy dispatch overhead without
#: changing evaluation semantics.
_FUSE_DEFER_MAX = 32

#: Opcodes that normalize into the and-family pass (NOT/BUF are the
#: arity-1 cases of NOR/AND respectively).
_AND_FAMILY_OF = {
    OP_AND: OP_AND,
    OP_NAND: OP_NAND,
    OP_OR: OP_OR,
    OP_NOR: OP_NOR,
    OP_BUF: OP_AND,
    OP_NOT: OP_NOR,
}


def _mask_to_words(mask: int, words: int) -> np.ndarray:
    """A Python-int slot mask as a little-endian ``uint64`` word array."""
    return np.frombuffer(
        mask.to_bytes(words * 8, "little"), dtype=np.uint64
    ).copy()


def _words_to_mask(row: np.ndarray) -> int:
    """A ``uint64`` word array back to a Python-int slot mask."""
    return int.from_bytes(np.ascontiguousarray(row).tobytes(), "little")


def _masks_to_matrix(masks: Sequence[int], words: int) -> np.ndarray:
    """Stack per-row Python-int masks into a ``(len(masks), words)`` array."""
    nbytes = words * 8
    data = b"".join(mask.to_bytes(nbytes, "little") for mask in masks)
    return np.frombuffer(data, dtype=np.uint64).reshape(len(masks), words)


def _mask_rows_pass(
    row_patches: list[tuple[int, np.ndarray, np.ndarray]], words: int
) -> tuple | None:
    """Build a vectorized ``V[rows] = (V[rows] | force) & keep`` pass.

    ``row_patches`` holds ``(row, force, clear)`` triples; ``keep`` is the
    complement of ``clear``.
    """
    if not row_patches:
        return None
    rows = np.asarray([row for row, _, _ in row_patches], dtype=np.intp)
    force = np.stack([sa for _, sa, _ in row_patches])
    keep = ~np.stack([sa for _, _, sa in row_patches])
    return (_PASS_MASK_ROWS, rows, force, keep)


class NumpyProgram(SimProgram):
    """Per-level patched passes plus non-gate patch arrays for one batch."""

    __slots__ = (
        "batch_size",
        "words",
        "fixups_by_level",
        "src_pass",
        "dff_pass",
        "po_patches",
        "max_group",
    )

    def __init__(
        self,
        key: tuple[Fault, ...] | None,
        batch_size: int | None,
        words: int | None,
        fixups_by_level: dict[int, list[tuple]],
        src_pass: tuple | None,
        dff_pass: tuple | None,
        po_patches: dict[int, tuple[np.ndarray, np.ndarray]],
        max_group: int,
    ) -> None:
        super().__init__(key)
        self.batch_size = batch_size
        self.words = words
        self.fixups_by_level = fixups_by_level
        self.src_pass = src_pass
        self.dff_pass = dff_pass
        self.po_patches = po_patches
        self.max_group = max_group


class NumpyBatch(SimBatch):
    """Batch state over the interleaved ``(2 * num_signals, words)`` rails."""

    def __init__(
        self, backend: "NumpyBackend", program: NumpyProgram, batch_size: int
    ) -> None:
        compiled = backend.compiled
        self._backend = backend
        self._program = program
        self._batch_size = batch_size
        self._full_mask = (1 << batch_size) - 1
        words = (batch_size + WORD_BITS - 1) // WORD_BITS
        self._words = words
        self._num_flops = len(compiled.flop_pairs)
        self._V = np.zeros((2 * compiled.num_signals, words), dtype=np.uint64)
        self._SH = np.zeros((self._num_flops, words), dtype=np.uint64)
        self._SL = np.zeros((self._num_flops, words), dtype=np.uint64)
        self._po_indices = compiled.po_indices
        scratch = max(backend.max_group, program.max_group, 1)
        self._buf = [
            np.empty((scratch, words), dtype=np.uint64) for _ in range(4)
        ]
        # Single-word specialization: with words == 1 the rails are a
        # plain vector, so every pass runs on 1-D views of the rails and
        # scratch buffers (and slices the (g, 1) patch matrices down to
        # vectors), skipping the 2-D machinery's per-call shape handling.
        if words == 1:
            self._rails = self._V.reshape(-1)
            self._scratch = [buffer.reshape(-1) for buffer in self._buf]
            self._mask_apply = _apply_pin_mask_1d
        else:
            self._rails = self._V
            self._scratch = self._buf
            self._mask_apply = _apply_pin_mask
        npi = len(backend.pi_h_rows)
        self._pi_rows_h = np.zeros((npi, words), dtype=np.uint64)
        self._pi_rows_l = np.zeros((npi, words), dtype=np.uint64)

    # ------------------------------------------------------------------
    # Input / state loading
    # ------------------------------------------------------------------
    def load_inputs_broadcast(self, bits: Sequence[int]) -> None:
        backend = self._backend
        npi = len(backend.pi_h_rows)
        ones = np.fromiter(
            (1 if bit else 0 for bit in bits), dtype=bool, count=npi
        )
        rows_h = self._pi_rows_h
        rows_l = self._pi_rows_l
        rows_h[ones] = _FULL_WORD
        rows_h[~ones] = 0
        rows_l[~ones] = _FULL_WORD
        rows_l[ones] = 0
        self._V[backend.pi_h_rows] = rows_h
        self._V[backend.pi_l_rows] = rows_l

    def load_inputs_packed(
        self, ones: Sequence[int], zeros: Sequence[int]
    ) -> None:
        backend = self._backend
        self._V[backend.pi_h_rows] = _masks_to_matrix(ones, self._words)
        self._V[backend.pi_l_rows] = _masks_to_matrix(zeros, self._words)

    def load_inputs_words(self, ones_words, zeros_words) -> None:
        # Native ingestion of pre-packed (num_pis, words) uint64 columns:
        # one fancy-index scatter per rail, no Python-int round trip.
        backend = self._backend
        self._V[backend.pi_h_rows] = ones_words
        self._V[backend.pi_l_rows] = zeros_words

    def load_state(self) -> None:
        backend = self._backend
        self._V[backend.q_h_rows] = self._SH
        self._V[backend.q_l_rows] = self._SL

    def apply_source_patches(self) -> None:
        if self._program.src_pass is not None:
            self._run_mask_rows(self._program.src_pass)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def eval(self) -> None:
        run_pass = self._run_pass
        fixups_by_level = self._program.fixups_by_level
        if not fixups_by_level:
            for passes in self._backend.level_passes:
                for entry in passes:
                    run_pass(entry)
            return
        for slot, passes in enumerate(self._backend.level_passes):
            for entry in passes:
                run_pass(entry)
            for entry in fixups_by_level.get(slot, ()):
                run_pass(entry)

    def _run_pass(self, entry: tuple) -> None:
        # `_rails`/`_scratch`/`_mask_apply` are the 2-D arrays for
        # multi-word batches and their 1-D views for words == 1 (where
        # the patch matrices are also sliced down to vectors); the pass
        # bodies are shape-agnostic (`take(..., axis=0)` on a 1-D array
        # gathers elements).
        V = self._rails
        buf0, buf1, buf2, buf3 = self._scratch
        apply_mask = self._mask_apply
        kind = entry[0]
        if kind == _PASS_AND_FAMILY:
            _, cols_and, masks_and, out_and, cols_or, masks_or, out_or = entry
            g = len(out_and)
            acc_and = V.take(cols_and[0], axis=0, out=buf0[:g])
            if masks_and[0] is not None:
                apply_mask(acc_and, masks_and[0])
            for col, mask in zip(cols_and[1:], masks_and[1:]):
                operand = V.take(col, axis=0, out=buf1[:g])
                if mask is not None:
                    apply_mask(operand, mask)
                np.bitwise_and(acc_and, operand, out=acc_and)
            acc_or = V.take(cols_or[0], axis=0, out=buf2[:g])
            if masks_or[0] is not None:
                apply_mask(acc_or, masks_or[0])
            for col, mask in zip(cols_or[1:], masks_or[1:]):
                operand = V.take(col, axis=0, out=buf3[:g])
                if mask is not None:
                    apply_mask(operand, mask)
                np.bitwise_or(acc_or, operand, out=acc_or)
            V[out_and] = acc_and
            V[out_or] = acc_or
        elif kind == _PASS_XOR:
            _, h_cols, h_masks, l_cols, l_masks, out_h, out_l = entry
            g = len(out_h)
            h = V.take(h_cols[0], axis=0, out=buf0[:g])
            if h_masks[0] is not None:
                apply_mask(h, h_masks[0])
            l = V.take(l_cols[0], axis=0, out=buf1[:g])
            if l_masks[0] is not None:
                apply_mask(l, l_masks[0])
            for h_col, h_mask, l_col, l_mask in zip(
                h_cols[1:], h_masks[1:], l_cols[1:], l_masks[1:]
            ):
                hk = V.take(h_col, axis=0, out=buf2[:g])
                if h_mask is not None:
                    apply_mask(hk, h_mask)
                lk = V.take(l_col, axis=0, out=buf3[:g])
                if l_mask is not None:
                    apply_mask(lk, l_mask)
                h, l = (h & lk) | (l & hk), (h & hk) | (l & lk)
            V[out_h] = h
            V[out_l] = l
        else:  # _PASS_MASK_ROWS
            self._run_mask_rows(entry)

    def _run_mask_rows(self, entry: tuple) -> None:
        V = self._rails
        _, rows, force, keep = entry
        g = len(rows)
        values = V.take(rows, axis=0, out=self._scratch[0][:g])
        self._mask_apply(values, (force, keep))
        V[rows] = values

    # ------------------------------------------------------------------
    # Observation and state advance
    # ------------------------------------------------------------------
    def observe_po(self, position: int) -> tuple[int, int]:
        h_row = 2 * self._po_indices[position]
        h = self._V[h_row]
        l = self._V[h_row + 1]
        patch = self._program.po_patches.get(position)
        if patch is not None:
            sa1, sa0 = patch
            h = (h | sa1) & ~sa0
            l = (l | sa0) & ~sa1
        return _words_to_mask(h), _words_to_mask(l)

    def detect_mask_words(
        self, observations: Sequence[tuple[int, int]]
    ) -> np.ndarray:
        """Fault-axis detection as a ``(words,)`` row (no batch masking)."""
        V = self._V
        detected = np.zeros(self._words, dtype=np.uint64)
        po_patches = self._program.po_patches
        for po_position, good_value in observations:
            h_row = 2 * self._po_indices[po_position]
            h = V[h_row]
            l = V[h_row + 1]
            patch = po_patches.get(po_position)
            if patch is not None:
                sa1, sa0 = patch
                h = (h | sa1) & ~sa0
                l = (l | sa0) & ~sa1
            detected |= l if good_value else h
        return detected

    def detect_mask(self, observations: Sequence[tuple[int, int]]) -> int:
        if not observations:
            return 0
        return (
            _words_to_mask(self.detect_mask_words(observations))
            & self._full_mask
        )

    def capture_state(self) -> None:
        backend = self._backend
        next_h = self._V[backend.d_h_rows]
        next_l = self._V[backend.d_l_rows]
        dff_pass = self._program.dff_pass
        if dff_pass is not None:
            _, positions, force_h, keep_h, force_l, keep_l = dff_pass
            next_h[positions] = (next_h[positions] | force_h) & keep_h
            next_l[positions] = (next_l[positions] | force_l) & keep_l
        self._SH = next_h
        self._SL = next_l

    # ------------------------------------------------------------------
    # State interchange
    # ------------------------------------------------------------------
    def set_state_packed(self, packed: Sequence[int]) -> None:
        pairs = unpack_states(packed, self._num_flops)
        self._SH = _masks_to_matrix([h for h, _ in pairs], self._words).copy()
        self._SL = _masks_to_matrix([l for _, l in pairs], self._words).copy()

    def export_state_packed(self) -> list[int]:
        return pack_states(self.export_state_words(), self._batch_size)

    def set_state_scalar(self, values: Sequence[Ternary]) -> None:
        self._SH = np.zeros((self._num_flops, self._words), dtype=np.uint64)
        self._SL = np.zeros((self._num_flops, self._words), dtype=np.uint64)
        for position, value in enumerate(values):
            if value is ONE:
                self._SH[position] = _FULL_WORD
            elif value is ZERO:
                self._SL[position] = _FULL_WORD

    def read_signal(self, index: int) -> tuple[int, int]:
        return (
            _words_to_mask(self._V[2 * index]),
            _words_to_mask(self._V[2 * index + 1]),
        )

    def export_state_words(self) -> list[tuple[int, int]]:
        return [
            (_words_to_mask(self._SH[f]), _words_to_mask(self._SL[f]))
            for f in range(self._num_flops)
        ]


class NumpyBackend(SimBackend):
    """Vectorized backend over 64-bit word arrays."""

    name = "numpy"
    word_width = WORD_BITS

    def __init__(self, compiled, fuse_levels: bool = True) -> None:
        super().__init__(compiled)
        pi_idx = np.asarray(compiled.pi_indices, dtype=np.intp)
        self.pi_h_rows = 2 * pi_idx
        self.pi_l_rows = 2 * pi_idx + 1
        q_idx = np.asarray([q for q, _ in compiled.flop_pairs], dtype=np.intp)
        d_idx = np.asarray([d for _, d in compiled.flop_pairs], dtype=np.intp)
        self.q_h_rows = 2 * q_idx
        self.q_l_rows = 2 * q_idx + 1
        self.d_h_rows = 2 * d_idx
        self.d_l_rows = 2 * d_idx + 1
        po_idx = np.asarray(compiled.po_indices, dtype=np.intp)
        self.po_h_rows = 2 * po_idx
        self.po_l_rows = 2 * po_idx + 1
        self.fuse_levels = fuse_levels
        #: Emission slot of each op: its value is final once the slot's
        #: static passes have run, and nothing emitted at or before that
        #: slot reads it.  Patched re-evaluations key on this.
        self.op_slot: list[int] = [0] * len(compiled.ops)
        self.level_passes: list[list[tuple]] = []
        self.max_group = 0
        self._signal_slot: dict[int, int] = {}
        self._levelize()

    # ------------------------------------------------------------------
    # Static schedule
    # ------------------------------------------------------------------
    def _levelize(self) -> None:
        """Levelize the ops, fuse small adjacent levels into shared slots.

        Classic ASAP levels first.  Then levels are emitted as *slots*
        (the unit :meth:`NumpyBatch.eval` iterates): a level of at most
        :data:`_FUSE_DEFER_MAX` gates is not emitted immediately but
        deferred into the next level's pool — legal because within one
        slot no gate may read another's output, and a deferred gate's
        output is, by construction, read only by gates that have not been
        emitted yet.  When a later level *does* read a deferred output
        ("fan-in disallows"), the pending gates it reads are flushed into
        their own slot first, preserving producer-before-consumer order.
        The net effect is that thin schedule tails collapse into fewer,
        wider fused passes.
        """
        compiled = self._compiled
        ops = compiled.ops
        level = [0] * compiled.num_signals
        by_level: dict[int, list[int]] = {}
        for position, (_, out, ins) in enumerate(ops):
            lvl = 1 + max(level[k] for k in ins)
            level[out] = lvl
            by_level.setdefault(lvl, []).append(position)
        depth = max(by_level, default=0)

        slots: list[list[int]] = []
        pending: list[int] = []
        for lvl in range(1, depth + 1):
            level_ops = by_level.get(lvl, [])
            if pending:
                reads = {k for p in level_ops for k in ops[p][2]}
                forced = [p for p in pending if ops[p][1] in reads]
                if forced:
                    slots.append(forced)
                    pending = [p for p in pending if ops[p][1] not in reads]
            pool = pending + level_ops
            if self.fuse_levels and lvl < depth and len(pool) <= _FUSE_DEFER_MAX:
                pending = pool
                continue
            slots.append(pool)
            pending = []
        if pending:
            slots.append(pending)

        for slot, pool in enumerate(slots):
            for position in pool:
                self.op_slot[position] = slot
                self._signal_slot[ops[position][1]] = slot
            self.level_passes.append(
                self._build_passes([(position, None) for position in pool])
            )

    def _build_passes(
        self, entries: list[tuple[int, dict | None]], words: int | None = None
    ) -> list[tuple]:
        """Fuse gates (with optional per-pin patches) into vectorized passes.

        ``entries`` holds ``(op position, pin patches or None)`` where pin
        patches map ``pin -> (sa1 words, sa0 words)``.  Used for both the
        static schedule (no patches) and per-level patched passes.
        """
        ops = self._compiled.ops
        and_family: dict[int, list[tuple[int, dict | None]]] = {}
        xors: dict[int, list[tuple[int, dict | None]]] = {}
        for position, patches in entries:
            code, _, ins = ops[position]
            if code in _AND_FAMILY_OF:
                and_family.setdefault(len(ins), []).append((position, patches))
            else:
                xors.setdefault(len(ins), []).append((position, patches))
        passes: list[tuple] = []
        # Large same-arity groups get their own tight pass; the long tail
        # of small groups is merged into one pass padded to the largest
        # remaining arity (padding repeats pin 0, idempotent under AND/OR),
        # trading a little gather volume for far fewer numpy dispatches.
        merged: list[tuple[int, dict | None]] = []
        merged_arity = 0
        for arity in sorted(and_family):
            group = and_family[arity]
            if len(group) >= _MIN_UNIFORM_GROUP:
                passes.append(self._and_family_pass(group, arity, words))
            else:
                merged.extend(group)
                merged_arity = arity
        if merged:
            passes.append(self._and_family_pass(merged, merged_arity, words))
        for arity in sorted(xors):
            passes.append(self._xor_pass(xors[arity], arity, words))
        return passes

    def _and_family_pass(
        self,
        entries: list[tuple[int, dict | None]],
        arity: int,
        words: int | None,
    ) -> tuple:
        """AND/OR/NAND/NOR/NOT/BUF fused via rail-swapped (De Morgan) rows.

        Per gate the pass computes ``X = AND(V[cols_and])`` and
        ``Y = OR(V[cols_or])``; which rails the columns point at and which
        output rows receive X and Y encode the opcode:

        ======== =============== ============== ========== ==========
        opcode   cols_and        cols_or        X goes to  Y goes to
        ======== =============== ============== ========== ==========
        AND/BUF  input H rails   input L rails  out H      out L
        NAND     input H rails   input L rails  out L      out H
        OR       input L rails   input H rails  out L      out H
        NOR/NOT  input L rails   input H rails  out H      out L
        ======== =============== ============== ========== ==========

        Pin patches become ``(value | force) & keep`` matrices applied to
        the gathered rail, with the force/keep roles of ``sa1``/``sa0``
        swapped on L-rail gathers.

        ``arity`` may exceed a gate's input count (mixed-arity merged
        passes): missing pins repeat pin 0, column and patch alike, which
        is idempotent under both AND and OR.
        """
        ops = self._compiled.ops
        k = len(entries)
        cols_and = [[0] * k for _ in range(arity)]
        cols_or = [[0] * k for _ in range(arity)]
        out_and = [0] * k
        out_or = [0] * k
        patch_and: list[dict[int, tuple]] = [{} for _ in range(arity)]
        patch_or: list[dict[int, tuple]] = [{} for _ in range(arity)]
        for j, (position, patches) in enumerate(entries):
            code, out, ins = ops[position]
            family = _AND_FAMILY_OF[code]
            inputs_swapped = family in (OP_OR, OP_NOR)
            output_swapped = family in (OP_NAND, OP_OR)
            for pin in range(arity):
                source_pin = pin if pin < len(ins) else 0
                h_row = 2 * ins[source_pin]
                cols_and[pin][j] = h_row + 1 if inputs_swapped else h_row
                cols_or[pin][j] = h_row if inputs_swapped else h_row + 1
                patch = patches.get(source_pin) if patches else None
                if patch is not None:
                    sa1, sa0 = patch
                    if inputs_swapped:  # gathering L rails
                        patch_and[pin][j] = (sa0, sa1)
                        patch_or[pin][j] = (sa1, sa0)
                    else:  # gathering H rails
                        patch_and[pin][j] = (sa1, sa0)
                        patch_or[pin][j] = (sa0, sa1)
            out_h = 2 * out
            out_and[j] = out_h + 1 if output_swapped else out_h
            out_or[j] = out_h if output_swapped else out_h + 1
        self.max_group = max(self.max_group, k)
        return (
            _PASS_AND_FAMILY,
            tuple(np.asarray(col, dtype=np.intp) for col in cols_and),
            tuple(_pin_masks(p, k, words) for p in patch_and),
            np.asarray(out_and, dtype=np.intp),
            tuple(np.asarray(col, dtype=np.intp) for col in cols_or),
            tuple(_pin_masks(p, k, words) for p in patch_or),
            np.asarray(out_or, dtype=np.intp),
        )

    def _xor_pass(
        self,
        entries: list[tuple[int, dict | None]],
        arity: int,
        words: int | None,
    ) -> tuple:
        """XOR/XNOR fused; XNOR's inversion folds into the output rows."""
        ops = self._compiled.ops
        k = len(entries)
        h_cols = [[0] * k for _ in range(arity)]
        l_cols = [[0] * k for _ in range(arity)]
        out_h = [0] * k
        out_l = [0] * k
        patch_h: list[dict[int, tuple]] = [{} for _ in range(arity)]
        patch_l: list[dict[int, tuple]] = [{} for _ in range(arity)]
        for j, (position, patches) in enumerate(entries):
            code, out, ins = ops[position]
            for pin, source in enumerate(ins):
                h_cols[pin][j] = 2 * source
                l_cols[pin][j] = 2 * source + 1
                patch = patches.get(pin) if patches else None
                if patch is not None:
                    sa1, sa0 = patch
                    patch_h[pin][j] = (sa1, sa0)
                    patch_l[pin][j] = (sa0, sa1)
            row = 2 * out
            if code == OP_XNOR:
                out_h[j] = row + 1
                out_l[j] = row
            else:
                out_h[j] = row
                out_l[j] = row + 1
        self.max_group = max(self.max_group, k)
        return (
            _PASS_XOR,
            tuple(np.asarray(col, dtype=np.intp) for col in h_cols),
            tuple(_pin_masks(p, k, words) for p in patch_h),
            tuple(np.asarray(col, dtype=np.intp) for col in l_cols),
            tuple(_pin_masks(p, k, words) for p in patch_l),
            np.asarray(out_h, dtype=np.intp),
            np.asarray(out_l, dtype=np.intp),
        )

    # ------------------------------------------------------------------
    # Program compilation
    # ------------------------------------------------------------------
    def _compile_program(
        self, faults: tuple[Fault, ...] | None
    ) -> NumpyProgram:
        if faults is None:
            return NumpyProgram(None, None, None, {}, None, None, {}, 0)
        compiled = self._compiled
        batch_size = len(faults)
        words = (batch_size + WORD_BITS - 1) // WORD_BITS
        plan = compiled.compile_plan(list(faults))

        src_pass = _mask_rows_pass(
            [
                entry
                for signal_index, sa1, sa0 in source_stem_patches(compiled, plan)
                for entry in (
                    (
                        2 * signal_index,
                        _mask_to_words(sa1, words),
                        _mask_to_words(sa0, words),
                    ),
                    (
                        2 * signal_index + 1,
                        _mask_to_words(sa0, words),
                        _mask_to_words(sa1, words),
                    ),
                )
            ],
            words,
        )
        dff_pass = None
        if plan.dff_pin:
            items = sorted(plan.dff_pin.items())
            positions = np.asarray([p for p, _ in items], dtype=np.intp)
            force_h = np.stack(
                [_mask_to_words(sa1, words) for _, (sa1, _) in items]
            )
            keep_h = ~np.stack(
                [_mask_to_words(sa0, words) for _, (_, sa0) in items]
            )
            force_l = np.stack(
                [_mask_to_words(sa0, words) for _, (_, sa0) in items]
            )
            keep_l = ~np.stack(
                [_mask_to_words(sa1, words) for _, (sa1, _) in items]
            )
            dff_pass = ("dff", positions, force_h, keep_h, force_l, keep_l)
        po_patches = {
            position: (_mask_to_words(sa1, words), _mask_to_words(sa0, words))
            for position, (sa1, sa0) in plan.po_pin.items()
        }

        # Gates with faulted pins, grouped per level, rebuilt as fused
        # patched passes that overwrite the static result of their level.
        patched_by_level: dict[int, list[tuple[int, dict]]] = {}
        pin_patches_by_position: dict[int, dict[int, tuple]] = {}
        for (position, pin), (sa1, sa0) in sorted(plan.gate_pin.items()):
            pin_patches_by_position.setdefault(position, {})[pin] = (
                _mask_to_words(sa1, words),
                _mask_to_words(sa0, words),
            )
        for position, patches in pin_patches_by_position.items():
            patched_by_level.setdefault(self.op_slot[position], []).append(
                (position, patches)
            )
        max_group_before = self.max_group
        fixups_by_level: dict[int, list[tuple]] = {
            level: self._build_passes(entries, words)
            for level, entries in patched_by_level.items()
        }
        program_max_group = self.max_group
        self.max_group = max_group_before

        # Stem patches on gate outputs run after the patched-gate passes of
        # their level, so a gate that is both pin-faulted and stem-faulted
        # is re-evaluated first and masked second (the kernel's order).
        num_sources = compiled.num_inputs + len(compiled.flop_pairs)
        stems = merge_stem_patches(plan, lambda index: index >= num_sources)
        stem_rows_by_level: dict[int, list[tuple[int, np.ndarray, np.ndarray]]] = {}
        for signal_index, (sa1, sa0) in sorted(stems.items()):
            level = self._signal_slot[signal_index]
            sa1_words = _mask_to_words(sa1, words)
            sa0_words = _mask_to_words(sa0, words)
            stem_rows_by_level.setdefault(level, []).extend(
                (
                    (2 * signal_index, sa1_words, sa0_words),
                    (2 * signal_index + 1, sa0_words, sa1_words),
                )
            )
        for level, row_patches in stem_rows_by_level.items():
            stem_pass = _mask_rows_pass(row_patches, words)
            if stem_pass is not None:
                fixups_by_level.setdefault(level, []).append(stem_pass)

        # Mask-rows passes gather into the shared scratch buffers too, so
        # their row counts bound the needed scratch height as well.
        if src_pass is not None:
            program_max_group = max(program_max_group, len(src_pass[1]))
        for row_patches in stem_rows_by_level.values():
            program_max_group = max(program_max_group, len(row_patches))

        return NumpyProgram(
            faults,
            batch_size,
            words,
            fixups_by_level,
            src_pass,
            dff_pass,
            po_patches,
            program_max_group,
        )

    def batch(self, program: SimProgram, batch_size: int) -> NumpyBatch:
        assert isinstance(program, NumpyProgram)
        if program.batch_size is not None and program.batch_size != batch_size:
            raise SimulationError(
                f"program compiled for batch size {program.batch_size}, "
                f"batch opened with {batch_size}"
            )
        return NumpyBatch(self, program, batch_size)

    def detect_step(
        self, good: SimBatch, faulty: SimBatch, alive_mask: int
    ) -> int:
        """Fused paired-batch detection: one array pass over all POs.

        Gathers every PO's rails from both batches at once, applies the
        programs' PO pin patches to the (copied) gathered rows, and
        OR-reduces the per-PO contradiction words — no per-position
        ``observe_po`` round trips and no Python-int mask arithmetic until
        the final reduced word row.
        """
        if alive_mask == 0:
            return 0
        assert isinstance(good, NumpyBatch) and isinstance(faulty, NumpyBatch)
        return _words_to_mask(self._detect_step_words(good, faulty)) & alive_mask

    def _detect_step_words(
        self, good: "NumpyBatch", faulty: "NumpyBatch"
    ) -> np.ndarray:
        """:meth:`detect_step`'s reduction as a ``(words,)`` row."""
        gh = good._V[self.po_h_rows]
        gl = good._V[self.po_l_rows]
        fh = faulty._V[self.po_h_rows]
        fl = faulty._V[self.po_l_rows]
        for position, (sa1, sa0) in good._program.po_patches.items():
            gh[position] = (gh[position] | sa1) & ~sa0
            gl[position] = (gl[position] | sa0) & ~sa1
        for position, (sa1, sa0) in faulty._program.po_patches.items():
            fh[position] = (fh[position] | sa1) & ~sa0
            fl[position] = (fl[position] | sa0) & ~sa1
        return np.bitwise_or.reduce((gh & fl) | (gl & fh), axis=0)

    def run_scan(
        self,
        good: "NumpyBatch | None",
        faulty: "NumpyBatch",
        packed_stimulus,
        observation_plan,
        alive_mask,
        *,
        collect_final_states: bool = False,
    ) -> "list[int | None]":
        """Blocked multi-step scan over resident word arrays.

        Same calling sequence as the per-step reference
        (:meth:`~repro.sim.backend.SimBackend.run_scan`), but the
        per-step liveness/pending bookkeeping stays in ``uint64`` word
        rows — no Python-int mask round trips until the final times —
        and the packed stimulus chunks stay resident in the packer's
        ``(T, num_pis, words)`` arrays, scattered in per step.
        """
        num_steps = packed_stimulus.num_steps
        num_slots = packed_stimulus.num_slots
        times: list[int | None] = [None] * num_slots
        if num_steps == 0 or num_slots == 0:
            return times
        words = faulty._words
        pending = _mask_to_words((1 << num_slots) - 1, words)
        steady = None
        alive_words = None
        if isinstance(alive_mask, int):
            steady = _mask_to_words(alive_mask, words)
        else:
            alive_words = getattr(packed_stimulus, "alive_words", None)
            if alive_words is None:
                alive_words = _masks_to_matrix(list(alive_mask), words)
        executed = 0
        for t in range(num_steps):
            live = (steady if steady is not None else alive_words[t]) & pending
            if not live.any() and not collect_final_states:
                break
            executed += 1
            packed_stimulus.load_step(t, good, faulty)
            if good is not None:
                good.load_state()
            faulty.load_state()
            faulty.apply_source_patches()
            if good is not None:
                good.eval()
            faulty.eval()
            if observation_plan is None:
                detected = self._detect_step_words(good, faulty) & live
            else:
                detected = faulty.detect_mask_words(observation_plan[t]) & live
            if detected.any():
                bits = np.unpackbits(
                    detected.view(np.uint8), bitorder="little"
                )
                for slot in np.nonzero(bits)[0]:
                    times[int(slot)] = t
                pending &= ~detected
                if not pending.any() and not collect_final_states:
                    break
            if good is not None:
                good.capture_state()
            faulty.capture_state()
        record_dispatch("scan_calls")
        record_dispatch("scan_steps", executed)
        return times


def _apply_pin_mask(values: np.ndarray, mask: tuple) -> None:
    """In-place ``values = (values | force) & keep``."""
    force, keep = mask
    np.bitwise_or(values, force, out=values)
    np.bitwise_and(values, keep, out=values)


def _apply_pin_mask_1d(values: np.ndarray, mask: tuple) -> None:
    """1-D variant: slice the ``(g, 1)`` patch matrices down to vectors."""
    force, keep = mask
    np.bitwise_or(values, force[:, 0], out=values)
    np.bitwise_and(values, keep[:, 0], out=values)


def _pin_masks(
    patches: dict[int, tuple], group_size: int, words: int | None
) -> tuple | None:
    """Dense (force, keep) matrices for one pin of a fused pass."""
    if not patches:
        return None
    force = np.zeros((group_size, words), dtype=np.uint64)
    clear = np.zeros((group_size, words), dtype=np.uint64)
    for j, (force_words, clear_words) in patches.items():
        force[j] = force_words
        clear[j] = clear_words
    return force, ~clear
