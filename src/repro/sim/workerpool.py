"""The persistent worker pool shared by every process-sharded simulator.

Before this module existed, each :class:`~repro.sim.sharding.ShardedFaultSimulator`
owned its own ``multiprocessing.Pool``: every simulator construction paid
the full spawn cost (process startup, module imports under ``spawn``) and
re-pickled the circuit, even though Procedure 1, Procedure 2, compaction
and restoration all run over the *same* circuit within one session.  This
module hoists pool ownership out of the simulators:

* **One pool per (worker count, start method), per process.**
  :func:`get_worker_pool` returns a process-global :class:`WorkerPool`
  that is created lazily on first use and lives until
  :func:`close_worker_pools` (registered ``atexit``).  Simulators *borrow*
  the pool; their ``close()`` releases only their own state.
* **Contexts instead of initializers.**  A simulator publishes its
  payload (circuit, backend name, batch width, fault list, ...) as a
  *context*: :meth:`WorkerPool.register_context` broadcasts the spec to
  every worker exactly once (a barrier inside the install task guarantees
  each worker takes exactly one copy), and each worker builds its
  simulator from the spec and caches it by context id.  Tasks then carry
  just the context id plus per-call data, so the heavy payload crosses
  the process boundary once per worker per simulator — not once per
  simulator construction, and never per task.
* **A shared first-hit rendezvous.**  ``first_hit`` is one
  ``multiprocessing.Value`` per pool holding the smallest detecting
  candidate index found so far (:data:`FIRST_HIT_SENTINEL` = none yet).
  The candidate-axis sharder (:mod:`repro.sim.seqshard`) uses it to
  cancel chunks that can no longer influence a deterministic
  first-detection answer.  The parent resets it between dispatches
  (dispatches never overlap — the parent is single-threaded).

Everything crossing the boundary is plain picklable data and every
worker-side function is module-level, so the design is spawn-safe;
``REPRO_SHARDING_START_METHOD`` overrides the default start method
(``fork`` where available, else ``spawn``).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from collections import OrderedDict

from repro.errors import SimulationError

#: ``first_hit`` value meaning "no detecting candidate found yet".
FIRST_HIT_SENTINEL = 1 << 62

#: Ceiling on how long a context broadcast waits for every worker to
#: rendezvous.  A worker that died would otherwise hang the barrier (and
#: the parent) forever; a broken barrier surfaces as an error instead.
BROADCAST_TIMEOUT_S = 300.0


def cpu_count() -> int:
    """Usable CPU cores, honouring the ``REPRO_ASSUME_CPUS`` override.

    The override exists so calibration and the serial-fallback heuristics
    can be pinned to a known machine shape — CI's serve-smoke lane runs
    with ``REPRO_ASSUME_CPUS=1`` to exercise the 1-core policy on
    multi-core runners deterministically.
    """
    assumed = os.environ.get("REPRO_ASSUME_CPUS")
    if assumed:
        try:
            return max(1, int(assumed))
        except ValueError as exc:
            raise SimulationError(
                f"REPRO_ASSUME_CPUS={assumed!r} is not an integer"
            ) from exc
    return max(1, os.cpu_count() or 1)


def default_workers() -> int:
    """A reasonable worker count for this machine (:func:`cpu_count`)."""
    return cpu_count()


def single_core_machine() -> bool:
    """True when this machine has exactly one usable CPU core.

    Process sharding cannot beat the serial engine here — the committed
    smoke baselines show ``workers=4`` running at 0.32–0.87x serial on a
    1-core box — so the simulator factories fall back to serial unless
    the caller explicitly forces sharding.  Tests monkeypatch this to
    exercise both sides regardless of the machine they run on.  A
    measured :class:`~repro.sim.autotune.MachineProfile` supersedes this
    static heuristic wherever a :class:`~repro.core.session.Session`
    resolves worker counts.
    """
    return cpu_count() <= 1


def resolve_start_method() -> str:
    """The multiprocessing start method for shard pools.

    Honors ``REPRO_SHARDING_START_METHOD`` (``fork`` / ``spawn`` /
    ``forkserver``); otherwise prefers ``fork`` where available (cheap,
    and the worker payload is inherited rather than pickled) and falls
    back to ``spawn`` — for which this module is fully pickle-safe.
    """
    override = os.environ.get("REPRO_SHARDING_START_METHOD")
    if override:
        if override not in multiprocessing.get_all_start_methods():
            raise SimulationError(
                f"REPRO_SHARDING_START_METHOD={override!r} is not supported "
                f"here; available: {multiprocessing.get_all_start_methods()}"
            )
        return override
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


#: The three work-distribution tiers plus the measured selector.
#: ``serial`` — one simulator, one kernel thread; ``threads`` — one
#: simulator whose native kernel splits each batch's words axis across
#: the in-process pthread pool; ``processes`` — the shard pool (one
#: simulator per worker process).  ``auto`` defers to the machine
#: profile / single-core heuristics at the factory layer.
PARALLEL_MODES = ("auto", "serial", "threads", "processes")


def resolve_work_distribution(
    parallel: str | None,
    workers: int | None,
    *,
    force: bool = False,
) -> tuple[str, int]:
    """Resolve a ``(parallel, workers)`` request to a concrete tier.

    Returns ``(mode, count)`` where ``mode`` is one of ``serial`` /
    ``threads`` / ``processes`` / ``auto`` and ``count`` is the lane or
    worker count for that tier.  ``workers`` of ``None``/``0`` means
    "size for this machine" via :func:`default_workers`, which routes
    through :func:`cpu_count` and therefore honours the
    ``REPRO_ASSUME_CPUS`` override.  A single usable core collapses
    ``threads`` to ``serial`` (there is nothing to run lanes on) unless
    ``force`` insists — the same policy the factories apply to process
    sharding.  ``auto`` is returned as-is with the resolved count; the
    caller owns the measured-profile / heuristic choice because only it
    knows the axis and circuit size.
    """
    mode = parallel or "auto"
    if mode not in PARALLEL_MODES:
        raise SimulationError(
            f"unknown parallel mode {mode!r}; expected one of {PARALLEL_MODES}"
        )
    count = workers if workers else default_workers()
    if count < 0:
        raise SimulationError(f"workers must be >= 0, got {workers}")
    count = max(1, int(count))
    if mode == "serial" or count == 1:
        return ("serial", 1)
    if mode == "threads" and single_core_machine() and not force:
        return ("serial", 1)
    return (mode, count)


# ----------------------------------------------------------------------
# Worker-process side.  Module-level (spawn-picklable) state and
# functions; each worker holds its built contexts and a small cache of
# attached shared-memory segments.
# ----------------------------------------------------------------------
_WORKER: dict = {}

#: Attached shared-memory segments a worker keeps open (LRU by name).
#: Small: at any moment the candidate axis references at most one result
#: buffer and a couple of published base sequences, and the fault axis
#: one published observation plan per hot sequence.
_WORKER_SHM_CAP = 6


def worker_state() -> dict:
    """This worker process's state dict (contexts, first-hit, shm cache)."""
    return _WORKER


def _worker_init(barrier, first_hit) -> None:
    _WORKER["barrier"] = barrier
    _WORKER["first_hit"] = first_hit
    _WORKER["contexts"] = {}
    _WORKER["shm"] = OrderedDict()
    # Deserialized good-machine observation plans, keyed by the segment
    # name the parent's trace cache published them under (see
    # repro.sim.trace.resolve_observation_plan).
    _WORKER["plans"] = OrderedDict()


def _build_context(spec: tuple) -> object:
    """Build a worker-side context from its published spec.

    Specs are tagged tuples; the owning module supplies the builder.
    Imported lazily so a spawn-started worker only loads the axis it
    actually serves.
    """
    kind = spec[0]
    if kind == "fault":
        from repro.sim.sharding import build_fault_context

        return build_fault_context(spec)
    if kind == "seq":
        from repro.sim.seqshard import build_seq_context

        return build_seq_context(spec)
    raise SimulationError(f"unknown worker context kind {kind!r}")


def _worker_install(payload: tuple) -> int:
    """Install one context in this worker (broadcast task).

    The barrier makes the broadcast exact: all ``workers`` install tasks
    must be in flight simultaneously before any completes, so no worker
    can take a second copy while another has none.
    """
    context_id, spec = payload
    _WORKER["barrier"].wait(BROADCAST_TIMEOUT_S)
    _WORKER["contexts"][context_id] = _build_context(spec)
    return context_id


def _worker_retire(context_id: int) -> int:
    """Drop one context in this worker (broadcast task)."""
    _WORKER["barrier"].wait(BROADCAST_TIMEOUT_S)
    _WORKER["contexts"].pop(context_id, None)
    return context_id


def worker_attach_shm(name: str):
    """Attach (or reuse) a shared-memory segment by name, LRU-cached.

    Attachments register with the parent's resource tracker (an
    idempotent set-add); the parent's eventual ``unlink`` performs the
    single matching unregister, so the tracker ends every name balanced
    and never warns at shutdown.
    """
    from multiprocessing import shared_memory

    # setdefault: callable outside a pool worker too (e.g. the parent
    # resolving a trace-cache reference in tests or serial fallbacks).
    cache: OrderedDict = _WORKER.setdefault("shm", OrderedDict())
    segment = cache.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        cache[name] = segment
        while len(cache) > _WORKER_SHM_CAP:
            _, stale = cache.popitem(last=False)
            try:
                stale.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
    else:
        cache.move_to_end(name)
    return segment


def _ensure_resource_tracker() -> None:
    """Start the shared-memory resource tracker before forking workers.

    Workers attach shared-memory segments, which registers the names with
    the resource tracker.  A ``fork``-context worker created *before* the
    tracker exists would lazily spawn its own private tracker on first
    attach — one that never sees the parent's balancing ``unlink`` and
    therefore warns about "leaked" segments at shutdown.  Starting the
    tracker before the fork makes every process share one tracker, whose
    register/unregister stream balances exactly (worker registrations are
    idempotent set-adds; the parent's unlink performs the single remove).
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - platform without the tracker
        return
    resource_tracker.ensure_running()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class WorkerPool:
    """A persistent process pool hosting contexts for many simulators.

    Simulators do not construct this directly — they call
    :func:`get_worker_pool` and register a context.  ``run_tasks`` feeds
    chunk tasks through ``imap_unordered(chunksize=1)``, which is what
    makes the chunk plans work-stealing.
    """

    def __init__(self, workers: int, start_method: str) -> None:
        if workers < 2:
            raise SimulationError(
                f"a worker pool needs at least 2 processes, got {workers}"
            )
        self._workers = workers
        self._start_method = start_method
        _ensure_resource_tracker()
        context = multiprocessing.get_context(start_method)
        self._barrier = context.Barrier(workers)
        self._first_hit = context.Value("q", FIRST_HIT_SENTINEL)
        self._pool = context.Pool(
            processes=workers,
            initializer=_worker_init,
            initargs=(self._barrier, self._first_hit),
        )
        self._next_context_id = 0
        self._deferred_retires: list[int] = []
        self._closed = False

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def start_method(self) -> str:
        return self._start_method

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Contexts
    # ------------------------------------------------------------------
    def register_context(self, spec: tuple) -> int:
        """Broadcast ``spec`` to every worker; return its context id."""
        if self._closed:
            raise SimulationError("worker pool is closed")
        self._flush_deferred_retires()
        context_id = self._next_context_id
        self._next_context_id += 1
        self._pool.map(
            _worker_install, [(context_id, spec)] * self._workers, chunksize=1
        )
        return context_id

    def retire_context(self, context_id: int) -> None:
        """Broadcast removal of a context (frees worker memory)."""
        if self._closed:
            return
        self._pool.map(_worker_retire, [context_id] * self._workers, chunksize=1)

    def defer_retire(self, context_id: int) -> None:
        """Queue a retire without touching the pool (GC-safe).

        ``__del__`` may fire on any thread at any allocation point —
        including mid-dispatch on this very pool — where a barrier
        broadcast would interleave with in-flight tasks and corrupt the
        exactly-once-per-worker install guarantee.  Deferred retires are
        flushed at the next owning-thread dispatch; until then the stale
        worker-side context merely holds memory.
        """
        self._deferred_retires.append(context_id)

    def _flush_deferred_retires(self) -> None:
        while self._deferred_retires and not self._closed:
            self.retire_context(self._deferred_retires.pop())

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    def run_tasks(self, function, tasks: list[tuple]) -> list:
        """Run chunk tasks with work stealing; result order is arbitrary."""
        self._flush_deferred_retires()
        return list(self._pool.imap_unordered(function, tasks, chunksize=1))

    # ------------------------------------------------------------------
    # First-hit rendezvous
    # ------------------------------------------------------------------
    def reset_first_hit(self) -> None:
        """Arm the shared first-hit slot before a cancellable dispatch."""
        with self._first_hit.get_lock():
            self._first_hit.value = FIRST_HIT_SENTINEL

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pool.terminate()
        self._pool.join()


class PoolContext:
    """Parent-side handle for one registered context (retire exactly once)."""

    __slots__ = ("pool", "context_id", "_retired")

    def __init__(self, pool: WorkerPool, context_id: int) -> None:
        self.pool = pool
        self.context_id = context_id
        self._retired = False

    def retire(self, deferred: bool = False) -> None:
        """Release the context: broadcast now, or queue it (``deferred``).

        Pass ``deferred=True`` from finalizers — a broadcast from a GC
        callback can interleave with an in-flight dispatch on the shared
        pool (see :meth:`WorkerPool.defer_retire`).
        """
        if self._retired:
            return
        self._retired = True
        try:
            if deferred:
                self.pool.defer_retire(self.context_id)
            else:
                self.pool.retire_context(self.context_id)
        except Exception:  # pragma: no cover - pool torn down concurrently
            pass


_POOLS: dict[tuple[int, str], WorkerPool] = {}


def get_worker_pool(workers: int) -> WorkerPool:
    """The session's shared pool for ``workers`` processes.

    Keyed by (worker count, resolved start method), created lazily and
    reused by every sharded simulator until :func:`close_worker_pools` —
    so spawn cost and per-worker circuit pickling are paid once per
    session, not once per simulator.
    """
    method = resolve_start_method()
    key = (workers, method)
    pool = _POOLS.get(key)
    if pool is None or pool.closed:
        pool = WorkerPool(workers, method)
        _POOLS[key] = pool
    return pool


def close_worker_pools() -> None:
    """Terminate every session pool (registered ``atexit``)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(close_worker_pools)
