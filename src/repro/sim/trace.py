"""The good-machine trace cache shared by every simulator of a circuit.

The fault-free response to a base sequence is an *invariant of the run*:
Procedure 1 fault-simulates ``T0`` once, then the scheme's verification,
the baselines and every sharded fault dispatch re-derive the same
fault-free trace — and the candidate axis re-packs the same base input
columns — over and over.  This module computes each piece **once per
(circuit, sequence) per session** and hands every consumer the cached
copy:

* the :class:`~repro.sim.logicsim.GoodTrace` itself (per-step binary PO
  observations and the final flop state), simulated by the scalar
  big-int engine exactly once;
* the **observation plan** derived from it — the per-step binary PO
  values the parallel-fault detection comparison needs
  (:func:`build_observation_plan` moved here from ``faultsim`` so the
  trace layer owns the whole good-machine story);
* the base sequence's packed **PI bit columns**
  (:func:`base_bits_of`) — the interchange format of the derived-candidate
  pipeline (:mod:`repro.sim.seqsim`) and the candidate-axis sharder.

For the process-sharded axes the cache also *publishes* the cached
artifacts through the worker pool's shared-memory contract
(:mod:`repro.sim.workerpool`): :meth:`GoodTraceCache.bits_ref` exposes
the bit matrix as a named segment (the candidate axis attaches instead
of unpickling a base per task) and :meth:`GoodTraceCache.plan_ref`
exposes the pickled observation plan the same way (fault-axis chunk
tasks carry a segment name instead of ``workers x oversplit`` pickled
copies of the plan).  Workers resolve either reference through
:func:`resolve_observation_plan` / the sharder's bit-matrix helper,
caching attachments by segment name.  Both paths degrade gracefully:
without numpy or ``shared_memory`` (or with ``REPRO_SEQSHARD_NO_SHM``
set) the artifacts travel pickled, bit-identically.

Caches are registered per :class:`~repro.sim.compiled.CompiledCircuit`
(:func:`get_trace_cache`) and keep a small LRU of sequences — Procedure
2 alternates one hot window base (``T0``) with a shrinking omission
base, so a handful of entries make re-simulation rare.  Hit/miss
counters are recorded per cache; ``benchmarks/bench_seqsim.py`` reports
them so CI can see the good machine really is simulated once.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from collections import OrderedDict

try:  # Packed bit columns need numpy; the trace itself does not.
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships in CI
    np = None

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - platform without shm
    shared_memory = None

from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.logic.values import ONE, ZERO
from repro.sim.compiled import CompiledCircuit
from repro.sim.logicsim import GoodTrace, LogicSimulator

#: One time step of an observation plan: ``(po_position, good_value)`` for
#: every PO that is binary in the fault-free machine at that step.
ObservationRow = list[tuple[int, int]]

#: Sequences retained per circuit.  Procedure 2 alternates one window
#: base (``T0``) and a shrinking omission base; the scheme's verification
#: adds expanded selections.  Four entries keep the hot bases resident.
SEQUENCE_CACHE_CAPACITY = 4

#: Circuits with live caches per session.  Evicting a cache closes its
#: shared-memory segments; consumers transparently recompute.
CIRCUIT_CACHE_CAPACITY = 8

#: Set (to any non-empty value) to disable the shared-memory publication
#: paths — the same escape hatch the candidate-axis sharder honours.
NO_SHM_ENV = "REPRO_SEQSHARD_NO_SHM"


def shm_available() -> bool:
    """Whether the shared-memory publication path is usable here."""
    return (
        shared_memory is not None
        and np is not None
        and not os.environ.get(NO_SHM_ENV)
    )


def build_observation_plan(trace: GoodTrace) -> list[ObservationRow]:
    """Per time step, the binary fault-free PO values to compare against."""
    plan: list[ObservationRow] = []
    for row in trace.po_values:
        step: ObservationRow = []
        for position, value in enumerate(row):
            if value is ONE:
                step.append((position, 1))
            elif value is ZERO:
                step.append((position, 0))
        plan.append(step)
    return plan


def base_bits_of(base: TestSequence, width: int):
    """``base`` as a ``(len(base), width)`` uint8 bit matrix.

    The interchange format of the derived-candidate pipeline: the packer
    consumes it directly, and the candidate-axis sharder publishes
    exactly this matrix through a shared-memory buffer so workers attach
    instead of unpickling the base per task.
    """
    if len(base):
        return np.asarray(base.vectors(), dtype=np.uint8)
    return np.zeros((0, width), dtype=np.uint8)


def _unlink_segment(segment) -> None:
    """Close and unlink a parent-owned shared-memory segment (tolerant)."""
    if segment is None:
        return
    try:
        segment.close()
        segment.unlink()
    except (FileNotFoundError, BufferError):  # pragma: no cover - teardown race
        pass


class _TraceEntry:
    """Lazily computed artifacts of one (circuit, sequence) pair."""

    __slots__ = (
        "sequence",
        "trace",
        "observation_plan",
        "bits",
        "bits_segment",
        "plan_segment",
        "plan_size",
    )

    def __init__(self, sequence: TestSequence) -> None:
        self.sequence = sequence
        self.trace: GoodTrace | None = None
        self.observation_plan: list[ObservationRow] | None = None
        self.bits = None
        self.bits_segment = None
        self.plan_segment = None
        self.plan_size = 0

    def close(self, unlink: bool) -> None:
        if unlink:
            _unlink_segment(self.bits_segment)
            _unlink_segment(self.plan_segment)
        self.bits_segment = None
        self.plan_segment = None
        self.plan_size = 0


class GoodTraceCache:
    """Per-circuit cache of fault-free traces and packed base columns.

    All methods key on the *value* of the sequence (``TestSequence`` is
    immutable and hashable), so equal sequences share one entry no matter
    how many objects describe them.  The cache is an LRU of
    :data:`SEQUENCE_CACHE_CAPACITY` sequences; eviction unlinks any
    published shared-memory segments.
    """

    def __init__(
        self,
        compiled: CompiledCircuit,
        capacity: int = SEQUENCE_CACHE_CAPACITY,
    ) -> None:
        self.compiled = compiled
        self._capacity = max(1, capacity)
        # Only the process that created a cache may unlink its shm
        # segments.  A fork-started pool worker inherits the parent's
        # registry (and the cache objects in it); evicting one there
        # must not destroy segment names the parent still publishes.
        self._owner_pid = os.getpid()
        # The scalar big-int engine is the fastest single-slot simulator
        # on any circuit; sharing it keeps observation plans trivially
        # identical across batch backends.
        self._logic = LogicSimulator(compiled)
        # Concurrent serving lanes share one cache per circuit; the lock
        # serializes the stateful scalar engine and the LRU bookkeeping.
        # Computation happens under it too, so a cold (circuit, sequence)
        # pair is simulated once even when two lanes race on it.
        self._lock = threading.RLock()
        self._entries: OrderedDict[TestSequence, _TraceEntry] = OrderedDict()
        self._counters = {
            "trace_hits": 0,
            "trace_misses": 0,
            "bits_hits": 0,
            "bits_misses": 0,
        }

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def _owns_segments(self) -> bool:
        return os.getpid() == self._owner_pid

    def _entry(self, sequence: TestSequence) -> _TraceEntry:
        entry = self._entries.get(sequence)
        if entry is None:
            entry = _TraceEntry(sequence)
            self._entries[sequence] = entry
            while len(self._entries) > self._capacity:
                _, stale = self._entries.popitem(last=False)
                stale.close(unlink=self._owns_segments())
        else:
            self._entries.move_to_end(sequence)
        return entry

    # ------------------------------------------------------------------
    # Good-machine artifacts
    # ------------------------------------------------------------------
    def trace(self, sequence: TestSequence) -> GoodTrace:
        """The fault-free response, simulated once per (circuit, sequence).

        Only the all-X-initial-state trace is cached — the one every
        one-shot ``run`` shares.  Incremental sessions carry their own
        evolving state and bypass the cache.
        """
        with self._lock:
            entry = self._entry(sequence)
            if entry.trace is None:
                self._counters["trace_misses"] += 1
                entry.trace = self._logic.run(sequence)
            else:
                self._counters["trace_hits"] += 1
            return entry.trace

    def observation_plan(self, sequence: TestSequence) -> list[ObservationRow]:
        """The detection comparison rows derived from the cached trace."""
        with self._lock:
            entry = self._entry(sequence)
            if entry.observation_plan is None:
                entry.observation_plan = build_observation_plan(
                    self.trace(sequence)
                )
            else:
                # Served without touching trace(): still a trace reuse.
                self._counters["trace_hits"] += 1
            return entry.observation_plan

    def base_bits(self, sequence: TestSequence):
        """The packed PI bit columns (requires numpy), computed once."""
        if np is None:
            raise SimulationError("base_bits requires numpy")
        with self._lock:
            entry = self._entry(sequence)
            if entry.bits is None:
                self._counters["bits_misses"] += 1
                entry.bits = np.ascontiguousarray(
                    base_bits_of(sequence, self.compiled.num_inputs)
                )
            else:
                self._counters["bits_hits"] += 1
            return entry.bits

    # ------------------------------------------------------------------
    # Shared-memory publication (the worker-pool broadcast contract)
    # ------------------------------------------------------------------
    def bits_ref(self, sequence: TestSequence) -> tuple:
        """Cross-process reference for the base's bit matrix.

        ``("shm", name, length, width)`` when shared memory is usable
        (the segment is cache-owned: created once per sequence, unlinked
        on eviction/:meth:`close`), else ``("bytes", payload, length,
        width)`` — the pickle fallback with identical worker-side
        semantics.
        """
        with self._lock:
            bits = self.base_bits(sequence)
            if shm_available() and bits.size:
                entry = self._entry(sequence)
                if entry.bits_segment is None:
                    segment = shared_memory.SharedMemory(
                        create=True, size=bits.nbytes
                    )
                    np.ndarray(bits.shape, dtype=np.uint8, buffer=segment.buf)[
                        :
                    ] = bits
                    entry.bits_segment = segment
                return (
                    "shm",
                    entry.bits_segment.name,
                    bits.shape[0],
                    bits.shape[1],
                )
            return ("bytes", bits.tobytes(), bits.shape[0], bits.shape[1])

    def plan_ref(self, sequence: TestSequence) -> tuple | None:
        """Cross-process reference for the pickled observation plan.

        ``("shmplan", name, size)`` when shared memory is usable, else
        ``None`` — the caller then ships the plan pickled per task, the
        historical contract.
        """
        if not shm_available():
            return None
        with self._lock:
            entry = self._entry(sequence)
            if entry.plan_segment is None:
                payload = pickle.dumps(
                    self.observation_plan(sequence),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, len(payload))
                )
                segment.buf[: len(payload)] = payload
                entry.plan_segment = segment
                entry.plan_size = len(payload)
            return ("shmplan", entry.plan_segment.name, entry.plan_size)

    # ------------------------------------------------------------------
    # Observability and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Hit/miss counters (misses == good-machine simulations run)."""
        with self._lock:
            return dict(self._counters)

    def reset_stats(self) -> None:
        with self._lock:
            for key in self._counters:
                self._counters[key] = 0

    def close(self) -> None:
        """Drop all entries and unlink published segments (idempotent).

        The cache stays usable afterwards — consumers transparently
        recompute — so eviction from the per-session registry can never
        break a live simulator, only cost it a re-simulation.  In a
        process that merely *inherited* the cache across a fork, the
        segments are left alone: only their creating process may unlink
        names other processes still resolve.
        """
        unlink = self._owns_segments()
        with self._lock:
            while self._entries:
                _, entry = self._entries.popitem(last=False)
                entry.close(unlink=unlink)


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
def resolve_observation_plan(plan_or_ref) -> list[ObservationRow]:
    """Resolve a task's observation plan (inline list or shm reference).

    Workers cache deserialized plans by segment name (the parent creates
    one segment per cached sequence, so names are stable across the
    chunks of a dispatch and across dispatches over the same base).
    """
    if not (isinstance(plan_or_ref, tuple) and plan_or_ref[:1] == ("shmplan",)):
        return plan_or_ref
    from repro.sim.workerpool import worker_attach_shm, worker_state

    _, name, size = plan_or_ref
    state = worker_state()
    cache: OrderedDict = state.setdefault("plans", OrderedDict())
    plan = cache.get(name)
    if plan is None:
        segment = worker_attach_shm(name)
        plan = pickle.loads(bytes(segment.buf[:size]))
        cache[name] = plan
        while len(cache) > SEQUENCE_CACHE_CAPACITY:
            cache.popitem(last=False)
    else:
        cache.move_to_end(name)
    return plan


# ----------------------------------------------------------------------
# Per-session registry
# ----------------------------------------------------------------------
_CACHES: OrderedDict[int, GoodTraceCache] = OrderedDict()
_CACHES_LOCK = threading.Lock()


def get_trace_cache(compiled: CompiledCircuit) -> GoodTraceCache:
    """The session's shared trace cache for ``compiled``.

    Keyed by circuit identity (every simulator of one
    :class:`CompiledCircuit` shares one cache), LRU-bounded at
    :data:`CIRCUIT_CACHE_CAPACITY` circuits; eviction closes the evicted
    cache's segments.  The identity check guards against ``id`` reuse
    after garbage collection.  Thread-safe: concurrent serving lanes
    resolving the same circuit get the same cache object.
    """
    key = id(compiled)
    with _CACHES_LOCK:
        cache = _CACHES.get(key)
        if cache is not None and cache.compiled is compiled:
            _CACHES.move_to_end(key)
            return cache
        if cache is not None:
            cache.close()
        cache = GoodTraceCache(compiled)
        _CACHES[key] = cache
        while len(_CACHES) > CIRCUIT_CACHE_CAPACITY:
            _, stale = _CACHES.popitem(last=False)
            stale.close()
        return cache


def close_trace_caches() -> None:
    """Close every registered cache (registered ``atexit``)."""
    with _CACHES_LOCK:
        caches = list(_CACHES.values())
        _CACHES.clear()
    for cache in caches:
        cache.close()


atexit.register(close_trace_caches)
