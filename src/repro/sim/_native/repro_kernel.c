/* Native (H, L) two-rail evaluation kernel.
 *
 * Compiled lazily by repro.sim.native_build (cc/gcc, -O3 -shared) and
 * loaded through ctypes by repro.sim.backend_native.  The data layout is
 * exactly the numpy backend's: all signal values live in one C-contiguous
 * (2 * num_signals, words) uint64 array V, signal i's H rail at row 2i,
 * its L rail at row 2i + 1, slot s at bit s % 64 of word s / 64.  Per the
 * (H, L) encoding contract, H set means 1, L set means 0, neither means
 * X, and both set never occurs.
 *
 * repro_eval is a line-by-line port of the big-int reference kernel
 * (repro/sim/kernel.py, eval_combinational): ops are walked in the
 * compiled topological order; a gate with faulted input pins gathers its
 * (patched) inputs into scratch and folds generically; stem patches mask
 * the just-written output rows.  Because the operation set and the
 * evaluation order match the reference exactly, detection times are
 * bit-identical across backends by construction.
 *
 * Everything below is plain C11 with no dependencies beyond libc, so a
 * bare `cc -O3 -fPIC -shared` anywhere is enough; absence of a compiler
 * simply leaves the backend unregistered (see native_build).
 */

#include <stdint.h>
#include <string.h>

/* Bumped whenever any exported signature or semantic changes; checked by
 * the loader so a stale cached .so can never be driven with the wrong
 * marshaling.  v2 added repro_scan (whole-sequence fused scans). */
#define REPRO_NATIVE_ABI 2

#if defined(_WIN32)
#define EXPORT __declspec(dllexport)
#else
#define EXPORT __attribute__((visibility("default")))
#endif

/* Op codes, mirroring repro.sim.compiled. */
enum {
    OP_AND = 0,
    OP_NAND = 1,
    OP_OR = 2,
    OP_NOR = 3,
    OP_NOT = 4,
    OP_BUF = 5,
    OP_XOR = 6,
    OP_XNOR = 7,
};

EXPORT int64_t repro_abi_version(void) { return REPRO_NATIVE_ABI; }

/* ------------------------------------------------------------------ */
/* Generic n-ary fold over gathered (and possibly patched) input rails. */
/* ------------------------------------------------------------------ */
static void fold_gate(
    int32_t code,
    int64_t arity,
    int64_t words,
    const uint64_t *scratch, /* (2 * arity, words): H rail 2k, L rail 2k+1 */
    uint64_t *out_h,
    uint64_t *out_l)
{
    int64_t w, k;
    switch (code) {
    case OP_AND:
    case OP_NAND:
        for (w = 0; w < words; w++) {
            uint64_t h = ~(uint64_t)0;
            uint64_t l = 0;
            for (k = 0; k < arity; k++) {
                h &= scratch[(2 * k) * words + w];
                l |= scratch[(2 * k + 1) * words + w];
            }
            if (code == OP_NAND) {
                out_h[w] = l;
                out_l[w] = h;
            } else {
                out_h[w] = h;
                out_l[w] = l;
            }
        }
        break;
    case OP_OR:
    case OP_NOR:
        for (w = 0; w < words; w++) {
            uint64_t h = 0;
            uint64_t l = ~(uint64_t)0;
            for (k = 0; k < arity; k++) {
                h |= scratch[(2 * k) * words + w];
                l &= scratch[(2 * k + 1) * words + w];
            }
            if (code == OP_NOR) {
                out_h[w] = l;
                out_l[w] = h;
            } else {
                out_h[w] = h;
                out_l[w] = l;
            }
        }
        break;
    case OP_NOT:
        for (w = 0; w < words; w++) {
            out_h[w] = scratch[words + w];
            out_l[w] = scratch[w];
        }
        break;
    case OP_BUF:
        for (w = 0; w < words; w++) {
            out_h[w] = scratch[w];
            out_l[w] = scratch[words + w];
        }
        break;
    default: /* OP_XOR / OP_XNOR */
        for (w = 0; w < words; w++) {
            uint64_t h = scratch[w];
            uint64_t l = scratch[words + w];
            for (k = 1; k < arity; k++) {
                uint64_t hk = scratch[(2 * k) * words + w];
                uint64_t lk = scratch[(2 * k + 1) * words + w];
                uint64_t nh = (h & lk) | (l & hk);
                l = (h & hk) | (l & lk);
                h = nh;
            }
            if (code == OP_XNOR) {
                out_h[w] = l;
                out_l[w] = h;
            } else {
                out_h[w] = h;
                out_l[w] = l;
            }
        }
        break;
    }
}

/* ------------------------------------------------------------------ */
/* Combinational evaluation over the full compiled op list.             */
/*                                                                      */
/* Static arrays (per backend):                                         */
/*   codes[num_ops]              op codes                               */
/*   outs[num_ops]               output signal index per op             */
/*   in_off[num_ops + 1]         offsets into ins                       */
/*   ins[...]                    flattened input signal indices         */
/* Program arrays (per fault batch, sorted by op position):             */
/*   pin_ops/pin_pins[n_pin]     faulted (op, pin) sites                */
/*   pin_sa1/pin_sa0             (n_pin, words) force-1 / force-0 masks */
/*   stem_ops[n_stem]            ops whose output stem is faulted       */
/*   stem_sa1/stem_sa0           (n_stem, words) masks                  */
/* scratch: (2 * max_arity, words) gather buffer for patched gates.     */
/* ------------------------------------------------------------------ */
static void eval_ops(
    uint64_t *V,
    int64_t words,
    const int32_t *codes,
    const int32_t *outs,
    const int64_t *in_off,
    const int32_t *ins,
    int64_t num_ops,
    const int32_t *pin_ops,
    const int32_t *pin_pins,
    const uint64_t *pin_sa1,
    const uint64_t *pin_sa0,
    int64_t n_pin,
    const int32_t *stem_ops,
    const uint64_t *stem_sa1,
    const uint64_t *stem_sa0,
    int64_t n_stem,
    uint64_t *scratch)
{
    int64_t pc = 0;   /* cursor into the pin-patch arrays */
    int64_t sc = 0;   /* cursor into the stem-patch arrays */
    int64_t op, w, k;
    for (op = 0; op < num_ops; op++) {
        const int32_t code = codes[op];
        const int64_t base = in_off[op];
        const int64_t arity = in_off[op + 1] - base;
        uint64_t *out_h = V + (uint64_t)(2 * outs[op]) * words;
        uint64_t *out_l = out_h + words;

        if (pc < n_pin && pin_ops[pc] == op) {
            /* Patched gate: gather every input rail pair into scratch,
             * apply each (pin, sa1, sa0) patch of this op, then fold
             * generically — the reference kernel's exact order. */
            for (k = 0; k < arity; k++) {
                const uint64_t *src =
                    V + (uint64_t)(2 * ins[base + k]) * words;
                memcpy(scratch + (2 * k) * words, src,
                       (size_t)words * sizeof(uint64_t));
                memcpy(scratch + (2 * k + 1) * words, src + words,
                       (size_t)words * sizeof(uint64_t));
            }
            for (; pc < n_pin && pin_ops[pc] == op; pc++) {
                uint64_t *h = scratch + (2 * (int64_t)pin_pins[pc]) * words;
                uint64_t *l = h + words;
                const uint64_t *sa1 = pin_sa1 + pc * words;
                const uint64_t *sa0 = pin_sa0 + pc * words;
                for (w = 0; w < words; w++) {
                    h[w] = (h[w] | sa1[w]) & ~sa0[w];
                    l[w] = (l[w] | sa0[w]) & ~sa1[w];
                }
            }
            fold_gate(code, arity, words, scratch, out_h, out_l);
        } else {
            switch (code) {
            case OP_AND:
            case OP_NAND:
            case OP_OR:
            case OP_NOR:
                if (arity == 2) {
                    const uint64_t *a =
                        V + (uint64_t)(2 * ins[base]) * words;
                    const uint64_t *b =
                        V + (uint64_t)(2 * ins[base + 1]) * words;
                    if (code == OP_AND) {
                        for (w = 0; w < words; w++) {
                            out_h[w] = a[w] & b[w];
                            out_l[w] = a[words + w] | b[words + w];
                        }
                    } else if (code == OP_NAND) {
                        for (w = 0; w < words; w++) {
                            out_h[w] = a[words + w] | b[words + w];
                            out_l[w] = a[w] & b[w];
                        }
                    } else if (code == OP_OR) {
                        for (w = 0; w < words; w++) {
                            out_h[w] = a[w] | b[w];
                            out_l[w] = a[words + w] & b[words + w];
                        }
                    } else { /* OP_NOR */
                        for (w = 0; w < words; w++) {
                            out_h[w] = a[words + w] & b[words + w];
                            out_l[w] = a[w] | b[w];
                        }
                    }
                } else {
                    const int and_like = (code == OP_AND || code == OP_NAND);
                    for (w = 0; w < words; w++) {
                        uint64_t acc_and = ~(uint64_t)0;
                        uint64_t acc_or = 0;
                        for (k = 0; k < arity; k++) {
                            const uint64_t *src =
                                V + (uint64_t)(2 * ins[base + k]) * words;
                            if (and_like) {
                                acc_and &= src[w];
                                acc_or |= src[words + w];
                            } else {
                                acc_or |= src[w];
                                acc_and &= src[words + w];
                            }
                        }
                        /* and_like: AND over H rails / OR over L rails;
                         * or_like the converse; output routing per the
                         * De Morgan table. */
                        if (code == OP_AND) {
                            out_h[w] = acc_and;
                            out_l[w] = acc_or;
                        } else if (code == OP_NAND) {
                            out_h[w] = acc_or;
                            out_l[w] = acc_and;
                        } else if (code == OP_OR) {
                            out_h[w] = acc_or;
                            out_l[w] = acc_and;
                        } else { /* OP_NOR */
                            out_h[w] = acc_and;
                            out_l[w] = acc_or;
                        }
                    }
                }
                break;
            case OP_NOT: {
                const uint64_t *src = V + (uint64_t)(2 * ins[base]) * words;
                for (w = 0; w < words; w++) {
                    out_h[w] = src[words + w];
                    out_l[w] = src[w];
                }
                break;
            }
            case OP_BUF: {
                const uint64_t *src = V + (uint64_t)(2 * ins[base]) * words;
                for (w = 0; w < words; w++) {
                    out_h[w] = src[w];
                    out_l[w] = src[words + w];
                }
                break;
            }
            default: { /* OP_XOR / OP_XNOR */
                const uint64_t *first =
                    V + (uint64_t)(2 * ins[base]) * words;
                for (w = 0; w < words; w++) {
                    uint64_t h = first[w];
                    uint64_t l = first[words + w];
                    for (k = 1; k < arity; k++) {
                        const uint64_t *src =
                            V + (uint64_t)(2 * ins[base + k]) * words;
                        uint64_t hk = src[w];
                        uint64_t lk = src[words + w];
                        uint64_t nh = (h & lk) | (l & hk);
                        l = (h & hk) | (l & lk);
                        h = nh;
                    }
                    if (code == OP_XNOR) {
                        out_h[w] = l;
                        out_l[w] = h;
                    } else {
                        out_h[w] = h;
                        out_l[w] = l;
                    }
                }
                break;
            }
            }
        }

        if (sc < n_stem && stem_ops[sc] == op) {
            const uint64_t *sa1 = stem_sa1 + sc * words;
            const uint64_t *sa0 = stem_sa0 + sc * words;
            for (w = 0; w < words; w++) {
                out_h[w] = (out_h[w] | sa1[w]) & ~sa0[w];
                out_l[w] = (out_l[w] | sa0[w]) & ~sa1[w];
            }
            sc++;
        }
    }
}

EXPORT void repro_eval(
    uint64_t *V,
    int64_t words,
    const int32_t *codes,
    const int32_t *outs,
    const int64_t *in_off,
    const int32_t *ins,
    int64_t num_ops,
    const int32_t *pin_ops,
    const int32_t *pin_pins,
    const uint64_t *pin_sa1,
    const uint64_t *pin_sa0,
    int64_t n_pin,
    const int32_t *stem_ops,
    const uint64_t *stem_sa1,
    const uint64_t *stem_sa0,
    int64_t n_stem,
    uint64_t *scratch)
{
    eval_ops(V, words, codes, outs, in_off, ins, num_ops, pin_ops,
             pin_pins, pin_sa1, pin_sa0, n_pin, stem_ops, stem_sa1,
             stem_sa0, n_stem, scratch);
}

/* ------------------------------------------------------------------ */
/* Fault-axis detection: slots whose (patched) PO response contradicts  */
/* the fault-free machine's recorded binary value.                      */
/*                                                                      */
/*   obs_pos[n_obs]      PO positions binary in the good machine now    */
/*   good_vals[n_obs]    the good machine's value (0 or 1) per row      */
/*   po_sig[num_pos]     signal index of each PO position               */
/*   po_sa1/po_sa0       dense (num_pos, words) pin-patch masks         */
/*   out[words]          |= detected slots (caller zeroes)              */
/* ------------------------------------------------------------------ */
EXPORT void repro_detect_mask(
    const uint64_t *V,
    int64_t words,
    const int32_t *obs_pos,
    const uint8_t *good_vals,
    int64_t n_obs,
    const int32_t *po_sig,
    const uint64_t *po_sa1,
    const uint64_t *po_sa0,
    uint64_t *out)
{
    int64_t i, w;
    for (i = 0; i < n_obs; i++) {
        const int32_t position = obs_pos[i];
        const uint64_t *rail =
            V + (uint64_t)(2 * po_sig[position]) * words;
        const uint64_t *sa1 = po_sa1 + (int64_t)position * words;
        const uint64_t *sa0 = po_sa0 + (int64_t)position * words;
        if (good_vals[i]) {
            /* good value 1: a slot contradicts when its L rail is set. */
            const uint64_t *l = rail + words;
            for (w = 0; w < words; w++)
                out[w] |= (l[w] | sa0[w]) & ~sa1[w];
        } else {
            for (w = 0; w < words; w++)
                out[w] |= (rail[w] | sa1[w]) & ~sa0[w];
        }
    }
}

/* ------------------------------------------------------------------ */
/* Paired-batch detection: slot s detects when some PO is binary in     */
/* both machines with opposite values — (Hg & Lf) | (Lg & Hf), OR-      */
/* reduced across POs.  Patches are the two programs' dense PO masks.   */
/* ------------------------------------------------------------------ */
EXPORT void repro_detect_step(
    const uint64_t *GV,
    const uint64_t *FV,
    int64_t words,
    const int32_t *po_sig,
    int64_t num_pos,
    const uint64_t *g_sa1,
    const uint64_t *g_sa0,
    const uint64_t *f_sa1,
    const uint64_t *f_sa0,
    uint64_t *out)
{
    int64_t position, w;
    for (position = 0; position < num_pos; position++) {
        const uint64_t *g = GV + (uint64_t)(2 * po_sig[position]) * words;
        const uint64_t *f = FV + (uint64_t)(2 * po_sig[position]) * words;
        const uint64_t *gs1 = g_sa1 + position * words;
        const uint64_t *gs0 = g_sa0 + position * words;
        const uint64_t *fs1 = f_sa1 + position * words;
        const uint64_t *fs0 = f_sa0 + position * words;
        for (w = 0; w < words; w++) {
            const uint64_t gh = (g[w] | gs1[w]) & ~gs0[w];
            const uint64_t gl = (g[words + w] | gs0[w]) & ~gs1[w];
            const uint64_t fh = (f[w] | fs1[w]) & ~fs0[w];
            const uint64_t fl = (f[words + w] | fs0[w]) & ~fs1[w];
            out[w] |= (gh & fl) | (gl & fh);
        }
    }
}

static int ctz64(uint64_t x)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctzll(x);
#else
    int n = 0;
    while (!(x & 1)) {
        x >>= 1;
        n++;
    }
    return n;
#endif
}

/* ------------------------------------------------------------------ */
/* Whole-sequence fused scan: input load, good/faulty eval, flop latch, */
/* detect reduction and first-hit early exit for num_steps time steps   */
/* in one call (the Python driver's per-step loop, moved inside the     */
/* GIL-released kernel).  Two modes share the walk:                     */
/*                                                                      */
/*   paired (GV != NULL): good and faulty machines run side by side     */
/*     over packed per-slot stimulus words; detection is the            */
/*     repro_detect_step reduction over all POs.                        */
/*   fault axis (GV == NULL): the single faulty batch runs over         */
/*     broadcast stimulus bits; detection compares the recorded good-   */
/*     machine observation rows (repro_detect_mask semantics).          */
/*                                                                      */
/* Stimulus/alive arrays are chunk-local (step s of this call); t0 is   */
/* the global time of s == 0, used for recorded times and for indexing  */
/* obs_off.  pending ((words), in/out), the flop state arrays           */
/* ((num_flops, words) H and L per machine, in/out) and times           */
/* ((words * 64), -1 = undetected, in/out) persist across chunked       */
/* calls.  Early-exit contract matches the reference loop exactly: the  */
/* scan stops when the live mask (alive & pending) drains or every      */
/* slot detected, skipping the stopping step's state latch; with        */
/* collect_finals it never stops early and latches every step.          */
/* Returns the number of steps entered (== num_steps when the caller    */
/* should continue with the next chunk) — negated minus one,            */
/* -(executed + 1), when the scan finished (no later chunk can          */
/* detect).                                                             */
/* ------------------------------------------------------------------ */
EXPORT int64_t repro_scan(
    uint64_t *GV,
    uint64_t *FV,
    int64_t words,
    const int32_t *codes,
    const int32_t *outs,
    const int64_t *in_off,
    const int32_t *ins,
    int64_t num_ops,
    const int32_t *pin_ops,
    const int32_t *pin_pins,
    const uint64_t *pin_sa1,
    const uint64_t *pin_sa0,
    int64_t n_pin,
    const int32_t *stem_ops,
    const uint64_t *stem_sa1,
    const uint64_t *stem_sa0,
    int64_t n_stem,
    uint64_t *scratch,
    const int32_t *src_rows,   /* faulty source patches: rail rows ...  */
    const uint64_t *src_force, /* ... (n_src, words) force masks        */
    const uint64_t *src_keep,  /* ... (n_src, words) keep masks         */
    int64_t n_src,
    const int32_t *pi_sig,
    int64_t num_pis,
    const int32_t *q_sig,
    const int32_t *d_sig,
    int64_t num_flops,
    const int32_t *dff_pos,      /* faulty flop patches: positions ...  */
    const uint64_t *dff_force_h, /* ... into the flop list, with        */
    const uint64_t *dff_keep_h,  /* ... (n_dff, words) force/keep       */
    const uint64_t *dff_force_l, /* ... masks per rail                  */
    const uint64_t *dff_keep_l,
    int64_t n_dff,
    uint64_t *g_sh, /* good flop state (num_flops, words); NULL w/o GV  */
    uint64_t *g_sl,
    uint64_t *f_sh, /* faulty flop state (num_flops, words)             */
    uint64_t *f_sl,
    const uint64_t *stim_ones,  /* (num_steps, num_pis, words) or NULL  */
    const uint64_t *stim_zeros,
    const uint8_t *stim_bits,   /* (num_steps, num_pis) or NULL         */
    int64_t t0,
    int64_t num_steps,
    const int32_t *po_sig,
    int64_t num_pos,
    const uint64_t *g_po_sa1, /* dense (num_pos, words); NULL w/o GV    */
    const uint64_t *g_po_sa0,
    const uint64_t *f_po_sa1,
    const uint64_t *f_po_sa0,
    const int64_t *obs_off,   /* fault mode: per-global-step offsets    */
    const int32_t *obs_pos,   /* ... into the flattened observation     */
    const uint8_t *obs_vals,  /* ... position/value rows                */
    const uint64_t *alive,    /* (num_steps, words) or NULL = all alive */
    uint64_t *pending,        /* (words), in/out                        */
    int64_t *times,           /* (words * 64), -1 = undetected, in/out  */
    uint64_t *det,            /* (words) detection scratch              */
    int64_t collect_finals)
{
    int64_t s, w, p, f, i;
    int64_t executed = 0;
    for (s = 0; s < num_steps; s++) {
        const int64_t t = t0 + s;
        const uint64_t *alive_row = alive ? alive + s * words : 0;

        uint64_t any = 0;
        for (w = 0; w < words; w++)
            any |= (alive_row ? alive_row[w] : ~(uint64_t)0) & pending[w];
        if (!any && !collect_finals)
            return -(executed + 1); /* live drained: nothing detects later */
        executed++;

        /* Load this step's primary inputs. */
        if (stim_bits) {
            const uint8_t *bits = stim_bits + s * num_pis;
            for (p = 0; p < num_pis; p++) {
                uint64_t *h = FV + (uint64_t)(2 * pi_sig[p]) * words;
                const uint64_t hv = bits[p] ? ~(uint64_t)0 : 0;
                for (w = 0; w < words; w++) {
                    h[w] = hv;
                    h[words + w] = ~hv;
                }
            }
        } else {
            const uint64_t *ones = stim_ones + s * num_pis * words;
            const uint64_t *zeros = stim_zeros + s * num_pis * words;
            for (p = 0; p < num_pis; p++) {
                uint64_t *h = FV + (uint64_t)(2 * pi_sig[p]) * words;
                memcpy(h, ones + p * words, (size_t)words * sizeof(uint64_t));
                memcpy(h + words, zeros + p * words,
                       (size_t)words * sizeof(uint64_t));
                if (GV) {
                    uint64_t *gh = GV + (uint64_t)(2 * pi_sig[p]) * words;
                    memcpy(gh, ones + p * words,
                           (size_t)words * sizeof(uint64_t));
                    memcpy(gh + words, zeros + p * words,
                           (size_t)words * sizeof(uint64_t));
                }
            }
        }

        /* Load the current flop state into the flop-output signals. */
        for (f = 0; f < num_flops; f++) {
            uint64_t *q = FV + (uint64_t)(2 * q_sig[f]) * words;
            memcpy(q, f_sh + f * words, (size_t)words * sizeof(uint64_t));
            memcpy(q + words, f_sl + f * words,
                   (size_t)words * sizeof(uint64_t));
            if (GV) {
                uint64_t *gq = GV + (uint64_t)(2 * q_sig[f]) * words;
                memcpy(gq, g_sh + f * words, (size_t)words * sizeof(uint64_t));
                memcpy(gq + words, g_sl + f * words,
                       (size_t)words * sizeof(uint64_t));
            }
        }

        /* Faulty source patches (stuck PI / flop-output stems). */
        for (i = 0; i < n_src; i++) {
            uint64_t *row = FV + (uint64_t)src_rows[i] * words;
            const uint64_t *force = src_force + i * words;
            const uint64_t *keep = src_keep + i * words;
            for (w = 0; w < words; w++)
                row[w] = (row[w] | force[w]) & keep[w];
        }

        /* Evaluate: good has no patches, faulty carries the program's. */
        if (GV)
            eval_ops(GV, words, codes, outs, in_off, ins, num_ops,
                     0, 0, 0, 0, 0, 0, 0, 0, 0, scratch);
        eval_ops(FV, words, codes, outs, in_off, ins, num_ops, pin_ops,
                 pin_pins, pin_sa1, pin_sa0, n_pin, stem_ops, stem_sa1,
                 stem_sa0, n_stem, scratch);

        /* Detect. */
        for (w = 0; w < words; w++)
            det[w] = 0;
        if (GV)
            repro_detect_step(GV, FV, words, po_sig, num_pos, g_po_sa1,
                              g_po_sa0, f_po_sa1, f_po_sa0, det);
        else
            repro_detect_mask(FV, words, obs_pos + obs_off[t], obs_vals + obs_off[t],
                              obs_off[t + 1] - obs_off[t], po_sig, f_po_sa1,
                              f_po_sa0, det);

        uint64_t pend_any = 0;
        for (w = 0; w < words; w++) {
            uint64_t d = det[w] & pending[w];
            if (alive_row)
                d &= alive_row[w];
            while (d) {
                const int b = ctz64(d);
                times[w * 64 + b] = t;
                d &= d - 1;
            }
            pending[w] &= ~(det[w] & (alive_row ? alive_row[w] : ~(uint64_t)0));
            pend_any |= pending[w];
        }
        if (!pend_any && !collect_finals)
            return -(executed + 1); /* all detected; skip the state latch */

        /* Latch the flop D values as next state (faulty flop patches). */
        for (f = 0; f < num_flops; f++) {
            const uint64_t *d_rail = FV + (uint64_t)(2 * d_sig[f]) * words;
            memcpy(f_sh + f * words, d_rail, (size_t)words * sizeof(uint64_t));
            memcpy(f_sl + f * words, d_rail + words,
                   (size_t)words * sizeof(uint64_t));
            if (GV) {
                const uint64_t *gd = GV + (uint64_t)(2 * d_sig[f]) * words;
                memcpy(g_sh + f * words, gd, (size_t)words * sizeof(uint64_t));
                memcpy(g_sl + f * words, gd + words,
                       (size_t)words * sizeof(uint64_t));
            }
        }
        for (i = 0; i < n_dff; i++) {
            const int64_t pos = dff_pos[i];
            uint64_t *h = f_sh + pos * words;
            uint64_t *l = f_sl + pos * words;
            const uint64_t *fh = dff_force_h + i * words;
            const uint64_t *kh = dff_keep_h + i * words;
            const uint64_t *fl = dff_force_l + i * words;
            const uint64_t *kl = dff_keep_l + i * words;
            for (w = 0; w < words; w++) {
                h[w] = (h[w] | fh[w]) & kh[w];
                l[w] = (l[w] | fl[w]) & kl[w];
            }
        }
    }
    return executed;
}
