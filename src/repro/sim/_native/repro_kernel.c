/* Native (H, L) two-rail evaluation kernel.
 *
 * Compiled lazily by repro.sim.native_build (cc/gcc, -O3 -shared) and
 * loaded through ctypes by repro.sim.backend_native.  The data layout is
 * exactly the numpy backend's: all signal values live in one C-contiguous
 * (2 * num_signals, words) uint64 array V, signal i's H rail at row 2i,
 * its L rail at row 2i + 1, slot s at bit s % 64 of word s / 64.  Per the
 * (H, L) encoding contract, H set means 1, L set means 0, neither means
 * X, and both set never occurs.
 *
 * repro_eval is a line-by-line port of the big-int reference kernel
 * (repro/sim/kernel.py, eval_combinational): ops are walked in the
 * compiled topological order; a gate with faulted input pins gathers its
 * (patched) inputs into scratch and folds generically; stem patches mask
 * the just-written output rows.  Because the operation set and the
 * evaluation order match the reference exactly, detection times are
 * bit-identical across backends by construction.
 *
 * Thread tier (ABI 3): a persistent pthread pool partitions the `words`
 * axis of repro_eval / repro_detect_step / repro_scan into disjoint word
 * spans, one per thread.  Every slot's value and detection depend only
 * on its own bit column, so span workers never exchange data: each walks
 * the same read-only op/patch arrays over its own words and writes only
 * its own columns of V, scratch, det, pending and times.  A scan span
 * early-exits exactly when its own live slots drain; the single-thread
 * return contract is reproduced by combining span results (executed =
 * max over spans, finished = every span finished, counted through an
 * atomic), so detect times and step accounting stay bit-identical to
 * serial execution by construction.  Dispatch uses a trylock: when the
 * pool is busy serving another caller (concurrent serving lanes), the
 * caller simply runs its request serially over the full word range —
 * same bits, just one thread.
 *
 * Everything below is plain C11 with no dependencies beyond libc and
 * (outside Windows) pthreads, so a bare `cc -O3 -fPIC -shared -pthread`
 * anywhere is enough; absence of a compiler simply leaves the backend
 * unregistered (see native_build).  Without pthreads the n_threads
 * arguments are accepted and ignored: everything runs serially.
 */

#include <stdint.h>
#include <string.h>

#if !defined(_WIN32)
#include <pthread.h>
#include <stdatomic.h>
#define REPRO_HAVE_THREADS 1
#else
#define REPRO_HAVE_THREADS 0
#endif

/* Bumped whenever any exported signature or semantic changes; checked by
 * the loader so a stale cached .so can never be driven with the wrong
 * marshaling.  v2 added repro_scan (whole-sequence fused scans); v3 adds
 * the thread pool and the trailing n_threads argument on repro_eval,
 * repro_detect_step and repro_scan. */
#define REPRO_NATIVE_ABI 3

#if defined(_WIN32)
#define EXPORT __declspec(dllexport)
#else
#define EXPORT __attribute__((visibility("default")))
#endif

/* Op codes, mirroring repro.sim.compiled. */
enum {
    OP_AND = 0,
    OP_NAND = 1,
    OP_OR = 2,
    OP_NOR = 3,
    OP_NOT = 4,
    OP_BUF = 5,
    OP_XOR = 6,
    OP_XNOR = 7,
};

EXPORT int64_t repro_abi_version(void) { return REPRO_NATIVE_ABI; }

/* ------------------------------------------------------------------ */
/* Generic n-ary fold over gathered (and possibly patched) input rails, */
/* restricted to the word span [w0, w1).                                */
/* ------------------------------------------------------------------ */
static void fold_gate(
    int32_t code,
    int64_t arity,
    int64_t words,
    int64_t w0,
    int64_t w1,
    const uint64_t *scratch, /* (2 * arity, words): H rail 2k, L rail 2k+1 */
    uint64_t *out_h,
    uint64_t *out_l)
{
    int64_t w, k;
    switch (code) {
    case OP_AND:
    case OP_NAND:
        for (w = w0; w < w1; w++) {
            uint64_t h = ~(uint64_t)0;
            uint64_t l = 0;
            for (k = 0; k < arity; k++) {
                h &= scratch[(2 * k) * words + w];
                l |= scratch[(2 * k + 1) * words + w];
            }
            if (code == OP_NAND) {
                out_h[w] = l;
                out_l[w] = h;
            } else {
                out_h[w] = h;
                out_l[w] = l;
            }
        }
        break;
    case OP_OR:
    case OP_NOR:
        for (w = w0; w < w1; w++) {
            uint64_t h = 0;
            uint64_t l = ~(uint64_t)0;
            for (k = 0; k < arity; k++) {
                h |= scratch[(2 * k) * words + w];
                l &= scratch[(2 * k + 1) * words + w];
            }
            if (code == OP_NOR) {
                out_h[w] = l;
                out_l[w] = h;
            } else {
                out_h[w] = h;
                out_l[w] = l;
            }
        }
        break;
    case OP_NOT:
        for (w = w0; w < w1; w++) {
            out_h[w] = scratch[words + w];
            out_l[w] = scratch[w];
        }
        break;
    case OP_BUF:
        for (w = w0; w < w1; w++) {
            out_h[w] = scratch[w];
            out_l[w] = scratch[words + w];
        }
        break;
    default: /* OP_XOR / OP_XNOR */
        for (w = w0; w < w1; w++) {
            uint64_t h = scratch[w];
            uint64_t l = scratch[words + w];
            for (k = 1; k < arity; k++) {
                uint64_t hk = scratch[(2 * k) * words + w];
                uint64_t lk = scratch[(2 * k + 1) * words + w];
                uint64_t nh = (h & lk) | (l & hk);
                l = (h & hk) | (l & lk);
                h = nh;
            }
            if (code == OP_XNOR) {
                out_h[w] = l;
                out_l[w] = h;
            } else {
                out_h[w] = h;
                out_l[w] = l;
            }
        }
        break;
    }
}

/* ------------------------------------------------------------------ */
/* Combinational evaluation over the full compiled op list, restricted */
/* to the word span [w0, w1).                                          */
/*                                                                      */
/* Static arrays (per backend):                                         */
/*   codes[num_ops]              op codes                               */
/*   outs[num_ops]               output signal index per op             */
/*   in_off[num_ops + 1]         offsets into ins                       */
/*   ins[...]                    flattened input signal indices         */
/* Program arrays (per fault batch, sorted by op position):             */
/*   pin_ops/pin_pins[n_pin]     faulted (op, pin) sites                */
/*   pin_sa1/pin_sa0             (n_pin, words) force-1 / force-0 masks */
/*   stem_ops[n_stem]            ops whose output stem is faulted       */
/*   stem_sa1/stem_sa0           (n_stem, words) masks                  */
/* scratch: (2 * max_arity, words) gather buffer for patched gates.     */
/* Concurrent spans share one scratch safely: each writes and reads     */
/* only its own word columns of the gather buffer.                      */
/* ------------------------------------------------------------------ */
static void eval_ops(
    uint64_t *V,
    int64_t words,
    int64_t w0,
    int64_t w1,
    const int32_t *codes,
    const int32_t *outs,
    const int64_t *in_off,
    const int32_t *ins,
    int64_t num_ops,
    const int32_t *pin_ops,
    const int32_t *pin_pins,
    const uint64_t *pin_sa1,
    const uint64_t *pin_sa0,
    int64_t n_pin,
    const int32_t *stem_ops,
    const uint64_t *stem_sa1,
    const uint64_t *stem_sa0,
    int64_t n_stem,
    uint64_t *scratch)
{
    const size_t span_bytes = (size_t)(w1 - w0) * sizeof(uint64_t);
    int64_t pc = 0;   /* cursor into the pin-patch arrays */
    int64_t sc = 0;   /* cursor into the stem-patch arrays */
    int64_t op, w, k;
    for (op = 0; op < num_ops; op++) {
        const int32_t code = codes[op];
        const int64_t base = in_off[op];
        const int64_t arity = in_off[op + 1] - base;
        uint64_t *out_h = V + (uint64_t)(2 * outs[op]) * words;
        uint64_t *out_l = out_h + words;

        if (pc < n_pin && pin_ops[pc] == op) {
            /* Patched gate: gather every input rail pair into scratch,
             * apply each (pin, sa1, sa0) patch of this op, then fold
             * generically — the reference kernel's exact order. */
            for (k = 0; k < arity; k++) {
                const uint64_t *src =
                    V + (uint64_t)(2 * ins[base + k]) * words;
                memcpy(scratch + (2 * k) * words + w0, src + w0, span_bytes);
                memcpy(scratch + (2 * k + 1) * words + w0, src + words + w0,
                       span_bytes);
            }
            for (; pc < n_pin && pin_ops[pc] == op; pc++) {
                uint64_t *h = scratch + (2 * (int64_t)pin_pins[pc]) * words;
                uint64_t *l = h + words;
                const uint64_t *sa1 = pin_sa1 + pc * words;
                const uint64_t *sa0 = pin_sa0 + pc * words;
                for (w = w0; w < w1; w++) {
                    h[w] = (h[w] | sa1[w]) & ~sa0[w];
                    l[w] = (l[w] | sa0[w]) & ~sa1[w];
                }
            }
            fold_gate(code, arity, words, w0, w1, scratch, out_h, out_l);
        } else {
            switch (code) {
            case OP_AND:
            case OP_NAND:
            case OP_OR:
            case OP_NOR:
                if (arity == 2) {
                    const uint64_t *a =
                        V + (uint64_t)(2 * ins[base]) * words;
                    const uint64_t *b =
                        V + (uint64_t)(2 * ins[base + 1]) * words;
                    if (code == OP_AND) {
                        for (w = w0; w < w1; w++) {
                            out_h[w] = a[w] & b[w];
                            out_l[w] = a[words + w] | b[words + w];
                        }
                    } else if (code == OP_NAND) {
                        for (w = w0; w < w1; w++) {
                            out_h[w] = a[words + w] | b[words + w];
                            out_l[w] = a[w] & b[w];
                        }
                    } else if (code == OP_OR) {
                        for (w = w0; w < w1; w++) {
                            out_h[w] = a[w] | b[w];
                            out_l[w] = a[words + w] & b[words + w];
                        }
                    } else { /* OP_NOR */
                        for (w = w0; w < w1; w++) {
                            out_h[w] = a[words + w] & b[words + w];
                            out_l[w] = a[w] | b[w];
                        }
                    }
                } else {
                    const int and_like = (code == OP_AND || code == OP_NAND);
                    for (w = w0; w < w1; w++) {
                        uint64_t acc_and = ~(uint64_t)0;
                        uint64_t acc_or = 0;
                        for (k = 0; k < arity; k++) {
                            const uint64_t *src =
                                V + (uint64_t)(2 * ins[base + k]) * words;
                            if (and_like) {
                                acc_and &= src[w];
                                acc_or |= src[words + w];
                            } else {
                                acc_or |= src[w];
                                acc_and &= src[words + w];
                            }
                        }
                        /* and_like: AND over H rails / OR over L rails;
                         * or_like the converse; output routing per the
                         * De Morgan table. */
                        if (code == OP_AND) {
                            out_h[w] = acc_and;
                            out_l[w] = acc_or;
                        } else if (code == OP_NAND) {
                            out_h[w] = acc_or;
                            out_l[w] = acc_and;
                        } else if (code == OP_OR) {
                            out_h[w] = acc_or;
                            out_l[w] = acc_and;
                        } else { /* OP_NOR */
                            out_h[w] = acc_and;
                            out_l[w] = acc_or;
                        }
                    }
                }
                break;
            case OP_NOT: {
                const uint64_t *src = V + (uint64_t)(2 * ins[base]) * words;
                for (w = w0; w < w1; w++) {
                    out_h[w] = src[words + w];
                    out_l[w] = src[w];
                }
                break;
            }
            case OP_BUF: {
                const uint64_t *src = V + (uint64_t)(2 * ins[base]) * words;
                for (w = w0; w < w1; w++) {
                    out_h[w] = src[w];
                    out_l[w] = src[words + w];
                }
                break;
            }
            default: { /* OP_XOR / OP_XNOR */
                const uint64_t *first =
                    V + (uint64_t)(2 * ins[base]) * words;
                for (w = w0; w < w1; w++) {
                    uint64_t h = first[w];
                    uint64_t l = first[words + w];
                    for (k = 1; k < arity; k++) {
                        const uint64_t *src =
                            V + (uint64_t)(2 * ins[base + k]) * words;
                        uint64_t hk = src[w];
                        uint64_t lk = src[words + w];
                        uint64_t nh = (h & lk) | (l & hk);
                        l = (h & hk) | (l & lk);
                        h = nh;
                    }
                    if (code == OP_XNOR) {
                        out_h[w] = l;
                        out_l[w] = h;
                    } else {
                        out_h[w] = h;
                        out_l[w] = l;
                    }
                }
                break;
            }
            }
        }

        if (sc < n_stem && stem_ops[sc] == op) {
            const uint64_t *sa1 = stem_sa1 + sc * words;
            const uint64_t *sa0 = stem_sa0 + sc * words;
            for (w = w0; w < w1; w++) {
                out_h[w] = (out_h[w] | sa1[w]) & ~sa0[w];
                out_l[w] = (out_l[w] | sa0[w]) & ~sa1[w];
            }
            sc++;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Fault-axis detection: slots whose (patched) PO response contradicts  */
/* the fault-free machine's recorded binary value.                      */
/*                                                                      */
/*   obs_pos[n_obs]      PO positions binary in the good machine now    */
/*   good_vals[n_obs]    the good machine's value (0 or 1) per row      */
/*   po_sig[num_pos]     signal index of each PO position               */
/*   po_sa1/po_sa0       dense (num_pos, words) pin-patch masks         */
/*   out[words]          |= detected slots (caller zeroes)              */
/* ------------------------------------------------------------------ */
static void detect_mask_span(
    const uint64_t *V,
    int64_t words,
    int64_t w0,
    int64_t w1,
    const int32_t *obs_pos,
    const uint8_t *good_vals,
    int64_t n_obs,
    const int32_t *po_sig,
    const uint64_t *po_sa1,
    const uint64_t *po_sa0,
    uint64_t *out)
{
    int64_t i, w;
    for (i = 0; i < n_obs; i++) {
        const int32_t position = obs_pos[i];
        const uint64_t *rail =
            V + (uint64_t)(2 * po_sig[position]) * words;
        const uint64_t *sa1 = po_sa1 + (int64_t)position * words;
        const uint64_t *sa0 = po_sa0 + (int64_t)position * words;
        if (good_vals[i]) {
            /* good value 1: a slot contradicts when its L rail is set. */
            const uint64_t *l = rail + words;
            for (w = w0; w < w1; w++)
                out[w] |= (l[w] | sa0[w]) & ~sa1[w];
        } else {
            for (w = w0; w < w1; w++)
                out[w] |= (rail[w] | sa1[w]) & ~sa0[w];
        }
    }
}

EXPORT void repro_detect_mask(
    const uint64_t *V,
    int64_t words,
    const int32_t *obs_pos,
    const uint8_t *good_vals,
    int64_t n_obs,
    const int32_t *po_sig,
    const uint64_t *po_sa1,
    const uint64_t *po_sa0,
    uint64_t *out)
{
    detect_mask_span(V, words, 0, words, obs_pos, good_vals, n_obs, po_sig,
                     po_sa1, po_sa0, out);
}

/* ------------------------------------------------------------------ */
/* Paired-batch detection: slot s detects when some PO is binary in     */
/* both machines with opposite values — (Hg & Lf) | (Lg & Hf), OR-      */
/* reduced across POs.  Patches are the two programs' dense PO masks.   */
/* ------------------------------------------------------------------ */
static void detect_step_span(
    const uint64_t *GV,
    const uint64_t *FV,
    int64_t words,
    int64_t w0,
    int64_t w1,
    const int32_t *po_sig,
    int64_t num_pos,
    const uint64_t *g_sa1,
    const uint64_t *g_sa0,
    const uint64_t *f_sa1,
    const uint64_t *f_sa0,
    uint64_t *out)
{
    int64_t position, w;
    for (position = 0; position < num_pos; position++) {
        const uint64_t *g = GV + (uint64_t)(2 * po_sig[position]) * words;
        const uint64_t *f = FV + (uint64_t)(2 * po_sig[position]) * words;
        const uint64_t *gs1 = g_sa1 + position * words;
        const uint64_t *gs0 = g_sa0 + position * words;
        const uint64_t *fs1 = f_sa1 + position * words;
        const uint64_t *fs0 = f_sa0 + position * words;
        for (w = w0; w < w1; w++) {
            const uint64_t gh = (g[w] | gs1[w]) & ~gs0[w];
            const uint64_t gl = (g[words + w] | gs0[w]) & ~gs1[w];
            const uint64_t fh = (f[w] | fs1[w]) & ~fs0[w];
            const uint64_t fl = (f[words + w] | fs0[w]) & ~fs1[w];
            out[w] |= (gh & fl) | (gl & fh);
        }
    }
}

static int ctz64(uint64_t x)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctzll(x);
#else
    int n = 0;
    while (!(x & 1)) {
        x >>= 1;
        n++;
    }
    return n;
#endif
}

/* ------------------------------------------------------------------ */
/* Persistent thread pool.                                              */
/*                                                                      */
/* One process-global pool, created on first repro_thread_pool_init     */
/* and kept warm for the process lifetime (or until an explicit         */
/* shutdown).  A dispatch hands the same (fn, job) to every             */
/* participating worker with its span index; the caller runs span 0     */
/* itself and then waits for the workers to drain.  Dispatches are      */
/* serialized by a trylock: a caller that finds the pool busy (another  */
/* serving lane mid-scan) simply runs its own request serially over     */
/* the full word range — identical bits, no queueing, no deadlock.     */
/* ------------------------------------------------------------------ */
#if REPRO_HAVE_THREADS

#define REPRO_MAX_THREADS 64

typedef void (*repro_span_fn)(void *job, int64_t span);

static struct {
    pthread_mutex_t lock;     /* guards every field below */
    pthread_cond_t work_cv;
    pthread_cond_t done_cv;
    pthread_mutex_t dispatch; /* serializes whole dispatches (trylock) */
    pthread_t workers[REPRO_MAX_THREADS];
    int64_t spawned;          /* worker threads alive (pool size - 1) */
    uint64_t generation;      /* bumped per dispatch */
    int64_t participants;     /* workers used by the current dispatch */
    int64_t remaining;        /* participants still running */
    repro_span_fn fn;
    void *job;
    int shutdown;
} g_pool = {
    PTHREAD_MUTEX_INITIALIZER,
    PTHREAD_COND_INITIALIZER,
    PTHREAD_COND_INITIALIZER,
    PTHREAD_MUTEX_INITIALIZER,
};

static int64_t g_worker_index[REPRO_MAX_THREADS];

static void *pool_worker(void *arg)
{
    const int64_t index = *(const int64_t *)arg;
    uint64_t seen = 0;
    pthread_mutex_lock(&g_pool.lock);
    for (;;) {
        while (!g_pool.shutdown && g_pool.generation == seen)
            pthread_cond_wait(&g_pool.work_cv, &g_pool.lock);
        if (g_pool.shutdown)
            break;
        seen = g_pool.generation;
        if (index < g_pool.participants) {
            repro_span_fn fn = g_pool.fn;
            void *job = g_pool.job;
            pthread_mutex_unlock(&g_pool.lock);
            /* Worker `index` owns span index + 1; span 0 is the caller. */
            fn(job, index + 1);
            pthread_mutex_lock(&g_pool.lock);
            if (--g_pool.remaining == 0)
                pthread_cond_signal(&g_pool.done_cv);
        }
    }
    pthread_mutex_unlock(&g_pool.lock);
    return 0;
}

EXPORT int64_t repro_threads_available(void) { return 1; }

/* Grow the pool so it can serve `n`-way dispatches; returns the actual
 * pool size (1 == caller only).  Idempotent; never shrinks. */
EXPORT int64_t repro_thread_pool_init(int64_t n)
{
    int64_t size;
    if (n > REPRO_MAX_THREADS)
        n = REPRO_MAX_THREADS;
    pthread_mutex_lock(&g_pool.lock);
    while (g_pool.spawned < n - 1 && !g_pool.shutdown) {
        const int64_t index = g_pool.spawned;
        g_worker_index[index] = index;
        if (pthread_create(&g_pool.workers[index], 0, pool_worker,
                           &g_worker_index[index]) != 0)
            break;
        g_pool.spawned++;
    }
    size = g_pool.spawned + 1;
    pthread_mutex_unlock(&g_pool.lock);
    return size;
}

EXPORT int64_t repro_thread_pool_size(void)
{
    int64_t size;
    pthread_mutex_lock(&g_pool.lock);
    size = g_pool.spawned + 1;
    pthread_mutex_unlock(&g_pool.lock);
    return size;
}

EXPORT void repro_thread_pool_shutdown(void)
{
    int64_t spawned, i;
    pthread_mutex_lock(&g_pool.dispatch);
    pthread_mutex_lock(&g_pool.lock);
    g_pool.shutdown = 1;
    pthread_cond_broadcast(&g_pool.work_cv);
    spawned = g_pool.spawned;
    g_pool.spawned = 0;
    pthread_mutex_unlock(&g_pool.lock);
    for (i = 0; i < spawned; i++)
        pthread_join(g_pool.workers[i], 0);
    pthread_mutex_lock(&g_pool.lock);
    g_pool.shutdown = 0;
    g_pool.generation = 0; /* fresh workers start with seen == 0 */
    pthread_mutex_unlock(&g_pool.lock);
    pthread_mutex_unlock(&g_pool.dispatch);
}

/* Run fn(job, span) for span 0..spans-1, span 0 on the calling thread.
 * Returns 1 when the pool ran it, 0 when the caller must fall back to a
 * serial full-range pass (pool busy or too small). */
static int pool_run(repro_span_fn fn, void *job, int64_t spans)
{
    if (spans < 2)
        return 0;
    if (pthread_mutex_trylock(&g_pool.dispatch) != 0)
        return 0; /* busy: another lane is mid-dispatch */
    pthread_mutex_lock(&g_pool.lock);
    if (g_pool.spawned < spans - 1 || g_pool.shutdown) {
        pthread_mutex_unlock(&g_pool.lock);
        pthread_mutex_unlock(&g_pool.dispatch);
        return 0;
    }
    g_pool.fn = fn;
    g_pool.job = job;
    g_pool.participants = spans - 1;
    g_pool.remaining = spans - 1;
    g_pool.generation++;
    pthread_cond_broadcast(&g_pool.work_cv);
    pthread_mutex_unlock(&g_pool.lock);
    fn(job, 0);
    pthread_mutex_lock(&g_pool.lock);
    while (g_pool.remaining)
        pthread_cond_wait(&g_pool.done_cv, &g_pool.lock);
    pthread_mutex_unlock(&g_pool.lock);
    pthread_mutex_unlock(&g_pool.dispatch);
    return 1;
}

/* Even partition of `words` into `spans` contiguous word spans. */
static void span_bounds(int64_t words, int64_t spans, int64_t *bounds)
{
    const int64_t base = words / spans;
    const int64_t rem = words % spans;
    int64_t w = 0, i;
    for (i = 0; i < spans; i++) {
        bounds[i] = w;
        w += base + (i < rem ? 1 : 0);
    }
    bounds[spans] = words;
}

/* Clamp a requested thread count to something the pool can serve. */
static int64_t clamp_spans(int64_t n_threads, int64_t words)
{
    int64_t spans = n_threads;
    if (spans > words)
        spans = words;
    if (spans > REPRO_MAX_THREADS)
        spans = REPRO_MAX_THREADS;
    if (spans < 1)
        spans = 1;
    return spans;
}

#else /* !REPRO_HAVE_THREADS */

EXPORT int64_t repro_threads_available(void) { return 0; }
EXPORT int64_t repro_thread_pool_init(int64_t n) { (void)n; return 1; }
EXPORT int64_t repro_thread_pool_size(void) { return 1; }
EXPORT void repro_thread_pool_shutdown(void) {}

#endif /* REPRO_HAVE_THREADS */

/* ------------------------------------------------------------------ */
/* Threaded entry points.                                               */
/* ------------------------------------------------------------------ */

#if REPRO_HAVE_THREADS
typedef struct {
    uint64_t *V;
    int64_t words;
    const int32_t *codes;
    const int32_t *outs;
    const int64_t *in_off;
    const int32_t *ins;
    int64_t num_ops;
    const int32_t *pin_ops;
    const int32_t *pin_pins;
    const uint64_t *pin_sa1;
    const uint64_t *pin_sa0;
    int64_t n_pin;
    const int32_t *stem_ops;
    const uint64_t *stem_sa1;
    const uint64_t *stem_sa0;
    int64_t n_stem;
    uint64_t *scratch;
    int64_t bounds[REPRO_MAX_THREADS + 1];
} EvalJob;

static void eval_job_span(void *ptr, int64_t span)
{
    EvalJob *job = ptr;
    eval_ops(job->V, job->words, job->bounds[span], job->bounds[span + 1],
             job->codes, job->outs, job->in_off, job->ins, job->num_ops,
             job->pin_ops, job->pin_pins, job->pin_sa1, job->pin_sa0,
             job->n_pin, job->stem_ops, job->stem_sa1, job->stem_sa0,
             job->n_stem, job->scratch);
}
#endif

EXPORT void repro_eval(
    uint64_t *V,
    int64_t words,
    const int32_t *codes,
    const int32_t *outs,
    const int64_t *in_off,
    const int32_t *ins,
    int64_t num_ops,
    const int32_t *pin_ops,
    const int32_t *pin_pins,
    const uint64_t *pin_sa1,
    const uint64_t *pin_sa0,
    int64_t n_pin,
    const int32_t *stem_ops,
    const uint64_t *stem_sa1,
    const uint64_t *stem_sa0,
    int64_t n_stem,
    uint64_t *scratch,
    int64_t n_threads)
{
#if REPRO_HAVE_THREADS
    const int64_t spans = clamp_spans(n_threads, words);
    if (spans > 1) {
        EvalJob job = {V, words, codes, outs, in_off, ins, num_ops,
                       pin_ops, pin_pins, pin_sa1, pin_sa0, n_pin,
                       stem_ops, stem_sa1, stem_sa0, n_stem, scratch,
                       {0}};
        span_bounds(words, spans, job.bounds);
        if (pool_run(eval_job_span, &job, spans))
            return;
    }
#else
    (void)n_threads;
#endif
    eval_ops(V, words, 0, words, codes, outs, in_off, ins, num_ops,
             pin_ops, pin_pins, pin_sa1, pin_sa0, n_pin, stem_ops,
             stem_sa1, stem_sa0, n_stem, scratch);
}

#if REPRO_HAVE_THREADS
typedef struct {
    const uint64_t *GV;
    const uint64_t *FV;
    int64_t words;
    const int32_t *po_sig;
    int64_t num_pos;
    const uint64_t *g_sa1;
    const uint64_t *g_sa0;
    const uint64_t *f_sa1;
    const uint64_t *f_sa0;
    uint64_t *out;
    int64_t bounds[REPRO_MAX_THREADS + 1];
} DetectJob;

static void detect_job_span(void *ptr, int64_t span)
{
    DetectJob *job = ptr;
    detect_step_span(job->GV, job->FV, job->words, job->bounds[span],
                     job->bounds[span + 1], job->po_sig, job->num_pos,
                     job->g_sa1, job->g_sa0, job->f_sa1, job->f_sa0,
                     job->out);
}
#endif

EXPORT void repro_detect_step(
    const uint64_t *GV,
    const uint64_t *FV,
    int64_t words,
    const int32_t *po_sig,
    int64_t num_pos,
    const uint64_t *g_sa1,
    const uint64_t *g_sa0,
    const uint64_t *f_sa1,
    const uint64_t *f_sa0,
    uint64_t *out,
    int64_t n_threads)
{
#if REPRO_HAVE_THREADS
    const int64_t spans = clamp_spans(n_threads, words);
    if (spans > 1) {
        DetectJob job = {GV, FV, words, po_sig, num_pos, g_sa1, g_sa0,
                         f_sa1, f_sa0, out, {0}};
        span_bounds(words, spans, job.bounds);
        if (pool_run(detect_job_span, &job, spans))
            return;
    }
#else
    (void)n_threads;
#endif
    detect_step_span(GV, FV, words, 0, words, po_sig, num_pos, g_sa1,
                     g_sa0, f_sa1, f_sa0, out);
}

/* ------------------------------------------------------------------ */
/* Whole-sequence fused scan: input load, good/faulty eval, flop latch, */
/* detect reduction and first-hit early exit for num_steps time steps   */
/* in one call (the Python driver's per-step loop, moved inside the     */
/* GIL-released kernel).  Two modes share the walk:                     */
/*                                                                      */
/*   paired (GV != NULL): good and faulty machines run side by side     */
/*     over packed per-slot stimulus words; detection is the            */
/*     repro_detect_step reduction over all POs.                        */
/*   fault axis (GV == NULL): the single faulty batch runs over         */
/*     broadcast stimulus bits; detection compares the recorded good-   */
/*     machine observation rows (repro_detect_mask semantics).          */
/*                                                                      */
/* Stimulus/alive arrays are chunk-local (step s of this call); t0 is   */
/* the global time of s == 0, used for recorded times and for indexing  */
/* obs_off.  pending ((words), in/out), the flop state arrays           */
/* ((num_flops, words) H and L per machine, in/out) and times           */
/* ((words * 64), -1 = undetected, in/out) persist across chunked       */
/* calls.  Early-exit contract matches the reference loop exactly: the  */
/* scan stops when the live mask (alive & pending) drains or every      */
/* slot detected, skipping the stopping step's state latch; with        */
/* collect_finals it never stops early and latches every step.          */
/* Returns the number of steps entered (== num_steps when the caller    */
/* should continue with the next chunk) — negated minus one,            */
/* -(executed + 1), when the scan finished (no later chunk can          */
/* detect).                                                             */
/*                                                                      */
/* Threaded scans run this same walk per word span.  A span's early     */
/* exit depends only on its own live slots, so each span stops at       */
/* exactly the step the serial scan would have stopped servicing those  */
/* slots; combining spans as executed = max(span executed) and          */
/* finished = all spans finished reproduces the serial return value     */
/* bit-for-bit (the serial loop runs until its *last* span drains, and  */
/* an already-drained span contributes no detections or state that any  */
/* other slot can observe).  This leans on the `alive` contract the     */
/* serial early exit already requires: a slot's alive bit is monotone   */
/* non-increasing over steps (packer windows cover a prefix of the      */
/* sequence), so a drained live mask can never turn back on.            */
/* ------------------------------------------------------------------ */

typedef struct {
    uint64_t *GV;
    uint64_t *FV;
    int64_t words;
    const int32_t *codes;
    const int32_t *outs;
    const int64_t *in_off;
    const int32_t *ins;
    int64_t num_ops;
    const int32_t *pin_ops;
    const int32_t *pin_pins;
    const uint64_t *pin_sa1;
    const uint64_t *pin_sa0;
    int64_t n_pin;
    const int32_t *stem_ops;
    const uint64_t *stem_sa1;
    const uint64_t *stem_sa0;
    int64_t n_stem;
    uint64_t *scratch;
    const int32_t *src_rows;
    const uint64_t *src_force;
    const uint64_t *src_keep;
    int64_t n_src;
    const int32_t *pi_sig;
    int64_t num_pis;
    const int32_t *q_sig;
    const int32_t *d_sig;
    int64_t num_flops;
    const int32_t *dff_pos;
    const uint64_t *dff_force_h;
    const uint64_t *dff_keep_h;
    const uint64_t *dff_force_l;
    const uint64_t *dff_keep_l;
    int64_t n_dff;
    uint64_t *g_sh;
    uint64_t *g_sl;
    uint64_t *f_sh;
    uint64_t *f_sl;
    const uint64_t *stim_ones;
    const uint64_t *stim_zeros;
    const uint8_t *stim_bits;
    int64_t t0;
    int64_t num_steps;
    const int32_t *po_sig;
    int64_t num_pos;
    const uint64_t *g_po_sa1;
    const uint64_t *g_po_sa0;
    const uint64_t *f_po_sa1;
    const uint64_t *f_po_sa0;
    const int64_t *obs_off;
    const int32_t *obs_pos;
    const uint8_t *obs_vals;
    const uint64_t *alive;
    uint64_t *pending;
    int64_t *times;
    uint64_t *det;
    int64_t collect_finals;
} ScanArgs;

static int64_t scan_span(const ScanArgs *a, int64_t w0, int64_t w1)
{
    const int64_t words = a->words;
    const size_t span_bytes = (size_t)(w1 - w0) * sizeof(uint64_t);
    int64_t s, w, p, f, i;
    int64_t executed = 0;
    for (s = 0; s < a->num_steps; s++) {
        const int64_t t = a->t0 + s;
        const uint64_t *alive_row = a->alive ? a->alive + s * words : 0;

        uint64_t any = 0;
        for (w = w0; w < w1; w++)
            any |= (alive_row ? alive_row[w] : ~(uint64_t)0) & a->pending[w];
        if (!any && !a->collect_finals)
            return -(executed + 1); /* live drained: nothing detects later */
        executed++;

        /* Load this step's primary inputs. */
        if (a->stim_bits) {
            const uint8_t *bits = a->stim_bits + s * a->num_pis;
            for (p = 0; p < a->num_pis; p++) {
                uint64_t *h = a->FV + (uint64_t)(2 * a->pi_sig[p]) * words;
                const uint64_t hv = bits[p] ? ~(uint64_t)0 : 0;
                for (w = w0; w < w1; w++) {
                    h[w] = hv;
                    h[words + w] = ~hv;
                }
            }
        } else {
            const uint64_t *ones = a->stim_ones + s * a->num_pis * words;
            const uint64_t *zeros = a->stim_zeros + s * a->num_pis * words;
            for (p = 0; p < a->num_pis; p++) {
                uint64_t *h = a->FV + (uint64_t)(2 * a->pi_sig[p]) * words;
                memcpy(h + w0, ones + p * words + w0, span_bytes);
                memcpy(h + words + w0, zeros + p * words + w0, span_bytes);
                if (a->GV) {
                    uint64_t *gh =
                        a->GV + (uint64_t)(2 * a->pi_sig[p]) * words;
                    memcpy(gh + w0, ones + p * words + w0, span_bytes);
                    memcpy(gh + words + w0, zeros + p * words + w0,
                           span_bytes);
                }
            }
        }

        /* Load the current flop state into the flop-output signals. */
        for (f = 0; f < a->num_flops; f++) {
            uint64_t *q = a->FV + (uint64_t)(2 * a->q_sig[f]) * words;
            memcpy(q + w0, a->f_sh + f * words + w0, span_bytes);
            memcpy(q + words + w0, a->f_sl + f * words + w0, span_bytes);
            if (a->GV) {
                uint64_t *gq = a->GV + (uint64_t)(2 * a->q_sig[f]) * words;
                memcpy(gq + w0, a->g_sh + f * words + w0, span_bytes);
                memcpy(gq + words + w0, a->g_sl + f * words + w0,
                       span_bytes);
            }
        }

        /* Faulty source patches (stuck PI / flop-output stems). */
        for (i = 0; i < a->n_src; i++) {
            uint64_t *row = a->FV + (uint64_t)a->src_rows[i] * words;
            const uint64_t *force = a->src_force + i * words;
            const uint64_t *keep = a->src_keep + i * words;
            for (w = w0; w < w1; w++)
                row[w] = (row[w] | force[w]) & keep[w];
        }

        /* Evaluate: good has no patches, faulty carries the program's. */
        if (a->GV)
            eval_ops(a->GV, words, w0, w1, a->codes, a->outs, a->in_off,
                     a->ins, a->num_ops, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                     a->scratch);
        eval_ops(a->FV, words, w0, w1, a->codes, a->outs, a->in_off,
                 a->ins, a->num_ops, a->pin_ops, a->pin_pins, a->pin_sa1,
                 a->pin_sa0, a->n_pin, a->stem_ops, a->stem_sa1,
                 a->stem_sa0, a->n_stem, a->scratch);

        /* Detect. */
        for (w = w0; w < w1; w++)
            a->det[w] = 0;
        if (a->GV)
            detect_step_span(a->GV, a->FV, words, w0, w1, a->po_sig,
                             a->num_pos, a->g_po_sa1, a->g_po_sa0,
                             a->f_po_sa1, a->f_po_sa0, a->det);
        else
            detect_mask_span(a->FV, words, w0, w1,
                             a->obs_pos + a->obs_off[t],
                             a->obs_vals + a->obs_off[t],
                             a->obs_off[t + 1] - a->obs_off[t], a->po_sig,
                             a->f_po_sa1, a->f_po_sa0, a->det);

        uint64_t pend_any = 0;
        for (w = w0; w < w1; w++) {
            uint64_t d = a->det[w] & a->pending[w];
            if (alive_row)
                d &= alive_row[w];
            while (d) {
                const int b = ctz64(d);
                a->times[w * 64 + b] = t;
                d &= d - 1;
            }
            a->pending[w] &=
                ~(a->det[w] & (alive_row ? alive_row[w] : ~(uint64_t)0));
            pend_any |= a->pending[w];
        }
        if (!pend_any && !a->collect_finals)
            return -(executed + 1); /* all detected; skip the state latch */

        /* Latch the flop D values as next state (faulty flop patches). */
        for (f = 0; f < a->num_flops; f++) {
            const uint64_t *d_rail =
                a->FV + (uint64_t)(2 * a->d_sig[f]) * words;
            memcpy(a->f_sh + f * words + w0, d_rail + w0, span_bytes);
            memcpy(a->f_sl + f * words + w0, d_rail + words + w0,
                   span_bytes);
            if (a->GV) {
                const uint64_t *gd =
                    a->GV + (uint64_t)(2 * a->d_sig[f]) * words;
                memcpy(a->g_sh + f * words + w0, gd + w0, span_bytes);
                memcpy(a->g_sl + f * words + w0, gd + words + w0,
                       span_bytes);
            }
        }
        for (i = 0; i < a->n_dff; i++) {
            const int64_t pos = a->dff_pos[i];
            uint64_t *h = a->f_sh + pos * words;
            uint64_t *l = a->f_sl + pos * words;
            const uint64_t *fh = a->dff_force_h + i * words;
            const uint64_t *kh = a->dff_keep_h + i * words;
            const uint64_t *fl = a->dff_force_l + i * words;
            const uint64_t *kl = a->dff_keep_l + i * words;
            for (w = w0; w < w1; w++) {
                h[w] = (h[w] | fh[w]) & kh[w];
                l[w] = (l[w] | fl[w]) & kl[w];
            }
        }
    }
    return executed;
}

#if REPRO_HAVE_THREADS
typedef struct {
    const ScanArgs *args;
    int64_t bounds[REPRO_MAX_THREADS + 1];
    int64_t rets[REPRO_MAX_THREADS];
    /* First-hit early-exit state shared across spans: each span that
     * drains (returns negative) counts itself here, so the combined
     * "no later chunk can detect" verdict needs no locks. */
    _Atomic int64_t finished_spans;
} ScanJob;

static void scan_job_span(void *ptr, int64_t span)
{
    ScanJob *job = ptr;
    const int64_t ret =
        scan_span(job->args, job->bounds[span], job->bounds[span + 1]);
    job->rets[span] = ret;
    if (ret < 0)
        atomic_fetch_add_explicit(&job->finished_spans, 1,
                                  memory_order_relaxed);
}
#endif

EXPORT int64_t repro_scan(
    uint64_t *GV,
    uint64_t *FV,
    int64_t words,
    const int32_t *codes,
    const int32_t *outs,
    const int64_t *in_off,
    const int32_t *ins,
    int64_t num_ops,
    const int32_t *pin_ops,
    const int32_t *pin_pins,
    const uint64_t *pin_sa1,
    const uint64_t *pin_sa0,
    int64_t n_pin,
    const int32_t *stem_ops,
    const uint64_t *stem_sa1,
    const uint64_t *stem_sa0,
    int64_t n_stem,
    uint64_t *scratch,
    const int32_t *src_rows,   /* faulty source patches: rail rows ...  */
    const uint64_t *src_force, /* ... (n_src, words) force masks        */
    const uint64_t *src_keep,  /* ... (n_src, words) keep masks         */
    int64_t n_src,
    const int32_t *pi_sig,
    int64_t num_pis,
    const int32_t *q_sig,
    const int32_t *d_sig,
    int64_t num_flops,
    const int32_t *dff_pos,      /* faulty flop patches: positions ...  */
    const uint64_t *dff_force_h, /* ... into the flop list, with        */
    const uint64_t *dff_keep_h,  /* ... (n_dff, words) force/keep       */
    const uint64_t *dff_force_l, /* ... masks per rail                  */
    const uint64_t *dff_keep_l,
    int64_t n_dff,
    uint64_t *g_sh, /* good flop state (num_flops, words); NULL w/o GV  */
    uint64_t *g_sl,
    uint64_t *f_sh, /* faulty flop state (num_flops, words)             */
    uint64_t *f_sl,
    const uint64_t *stim_ones,  /* (num_steps, num_pis, words) or NULL  */
    const uint64_t *stim_zeros,
    const uint8_t *stim_bits,   /* (num_steps, num_pis) or NULL         */
    int64_t t0,
    int64_t num_steps,
    const int32_t *po_sig,
    int64_t num_pos,
    const uint64_t *g_po_sa1, /* dense (num_pos, words); NULL w/o GV    */
    const uint64_t *g_po_sa0,
    const uint64_t *f_po_sa1,
    const uint64_t *f_po_sa0,
    const int64_t *obs_off,   /* fault mode: per-global-step offsets    */
    const int32_t *obs_pos,   /* ... into the flattened observation     */
    const uint8_t *obs_vals,  /* ... position/value rows                */
    const uint64_t *alive,    /* (num_steps, words) or NULL = all alive */
    uint64_t *pending,        /* (words), in/out                        */
    int64_t *times,           /* (words * 64), -1 = undetected, in/out  */
    uint64_t *det,            /* (words) detection scratch              */
    int64_t collect_finals,
    int64_t n_threads)
{
    ScanArgs args = {GV, FV, words, codes, outs, in_off, ins, num_ops,
                     pin_ops, pin_pins, pin_sa1, pin_sa0, n_pin,
                     stem_ops, stem_sa1, stem_sa0, n_stem, scratch,
                     src_rows, src_force, src_keep, n_src, pi_sig,
                     num_pis, q_sig, d_sig, num_flops, dff_pos,
                     dff_force_h, dff_keep_h, dff_force_l, dff_keep_l,
                     n_dff, g_sh, g_sl, f_sh, f_sl, stim_ones,
                     stim_zeros, stim_bits, t0, num_steps, po_sig,
                     num_pos, g_po_sa1, g_po_sa0, f_po_sa1, f_po_sa0,
                     obs_off, obs_pos, obs_vals, alive, pending, times,
                     det, collect_finals};
#if REPRO_HAVE_THREADS
    const int64_t spans = clamp_spans(n_threads, words);
    if (spans > 1) {
        ScanJob job;
        job.args = &args;
        atomic_init(&job.finished_spans, 0);
        span_bounds(words, spans, job.bounds);
        if (pool_run(scan_job_span, &job, spans)) {
            int64_t executed = 0, i;
            const int64_t finished =
                atomic_load_explicit(&job.finished_spans,
                                     memory_order_relaxed) == spans;
            for (i = 0; i < spans; i++) {
                const int64_t ret = job.rets[i];
                const int64_t span_executed = ret < 0 ? -ret - 1 : ret;
                if (span_executed > executed)
                    executed = span_executed;
            }
            return finished ? -(executed + 1) : executed;
        }
    }
#else
    (void)n_threads;
#endif
    return scan_span(&args, 0, words);
}
