/* ThreadSanitizer harness for the threaded kernel tier.
 *
 * Compiles the kernel source into one fully-instrumented executable (no
 * Python in the loop — TSan cannot be preloaded into an arbitrary
 * interpreter build, but an instrumented binary needs nothing), builds a
 * synthetic combinational program, and drives every threaded entry
 * point against its serial twin:
 *
 *   1. concurrent repro_thread_pool_init from racing caller threads;
 *   2. repro_eval with pin + stem patches, serial vs 4 spans,
 *      byte-compared, hammered back-to-back to churn the dispatch
 *      mutex/condvar;
 *   3. repro_detect_step, serial vs 4 spans, byte-compared;
 *   4. repro_eval from 4 concurrent caller threads (the serving-lane
 *      shape: the pool trylock serves one, the rest run serially),
 *      each result compared against the serial reference;
 *   5. fault-axis repro_scan with per-slot alive windows that drain at
 *      different steps per span, serial vs threaded — detect times,
 *      pending mask and the early-exit return combined through the
 *      finished_spans atomic must match bit-for-bit.
 *
 * Build and run (the CI TSan lane):
 *
 *   cc -fsanitize=thread -g -O1 -pthread \
 *      -o tsan_driver src/repro/sim/_native/tsan_driver.c && ./tsan_driver
 *
 * Exit 0 means no parity mismatch and no TSan report (TSan aborts the
 * process on a race when halt_on_error=1; without it the runtime exits
 * non-zero at the end).
 */

#include "repro_kernel.c"

#include <stdio.h>
#include <stdlib.h>

#define WORDS 64 /* 4096 slots: enough for 4 uneven spans */
#define PIS 4
#define GATES 40
#define SIGNALS (PIS + GATES)
#define STEPS 24
#define LANES 4
#define MAX_ARITY 2

static uint64_t splitmix(uint64_t *state)
{
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/* The synthetic program: gate g reads two earlier signals (one for NOT)
 * and writes signal PIS + g, op codes cycling through the full set. */
static int32_t g_codes[GATES];
static int32_t g_outs[GATES];
static int64_t g_in_off[GATES + 1];
static int32_t g_ins[2 * GATES];

static void build_program(void)
{
    static const int32_t cycle[6] = {OP_AND, OP_OR,  OP_XOR,
                                     OP_NAND, OP_NOR, OP_XNOR};
    uint64_t rng = 0x9027;
    int64_t g, off = 0;
    for (g = 0; g < GATES; g++) {
        const int64_t avail = PIS + g;
        g_outs[g] = (int32_t)(PIS + g);
        g_in_off[g] = off;
        if (g % 7 == 6) {
            g_codes[g] = OP_NOT;
            g_ins[off++] = (int32_t)(splitmix(&rng) % avail);
        } else {
            g_codes[g] = cycle[g % 6];
            g_ins[off++] = (int32_t)(splitmix(&rng) % avail);
            g_ins[off++] = (int32_t)(splitmix(&rng) % avail);
        }
    }
    g_in_off[GATES] = off;
}

/* Complementary pseudo-random H/L rails for every signal. */
static void fill_rails(uint64_t *V, uint64_t seed)
{
    uint64_t rng = seed;
    int64_t s, w;
    for (s = 0; s < SIGNALS; s++) {
        for (w = 0; w < WORDS; w++) {
            const uint64_t h = splitmix(&rng);
            V[(uint64_t)(2 * s) * WORDS + w] = h;
            V[(uint64_t)(2 * s + 1) * WORDS + w] = ~h;
        }
    }
}

/* One pin patch on gate 5 and one stem patch on gate 20. */
static int32_t g_pin_ops[1] = {5};
static int32_t g_pin_pins[1] = {0};
static uint64_t g_pin_sa1[WORDS];
static uint64_t g_pin_sa0[WORDS];
static int32_t g_stem_ops[1] = {20};
static uint64_t g_stem_sa1[WORDS];
static uint64_t g_stem_sa0[WORDS];

static void run_eval(uint64_t *V, uint64_t *scratch, int64_t n_threads)
{
    repro_eval(V, WORDS, g_codes, g_outs, g_in_off, g_ins, GATES,
               g_pin_ops, g_pin_pins, g_pin_sa1, g_pin_sa0, 1,
               g_stem_ops, g_stem_sa1, g_stem_sa0, 1, scratch, n_threads);
}

static int check_eval_parity(void)
{
    const size_t rails = (size_t)(2 * SIGNALS) * WORDS;
    uint64_t *serial = malloc(rails * sizeof(uint64_t));
    uint64_t *threaded = malloc(rails * sizeof(uint64_t));
    uint64_t *scratch = malloc((size_t)(2 * MAX_ARITY) * WORDS * 8);
    int failures = 0;
    int round;
    for (round = 0; round < 50; round++) {
        fill_rails(serial, 0x1000 + (uint64_t)round);
        memcpy(threaded, serial, rails * sizeof(uint64_t));
        run_eval(serial, scratch, 1);
        run_eval(threaded, scratch, LANES);
        if (memcmp(serial, threaded, rails * sizeof(uint64_t)) != 0) {
            fprintf(stderr, "FAIL eval parity, round %d\n", round);
            failures++;
            break;
        }
    }
    free(serial);
    free(threaded);
    free(scratch);
    return failures;
}

static int check_detect_parity(void)
{
    const size_t rails = (size_t)(2 * SIGNALS) * WORDS;
    uint64_t *GV = malloc(rails * sizeof(uint64_t));
    uint64_t *FV = malloc(rails * sizeof(uint64_t));
    uint64_t *scratch = malloc((size_t)(2 * MAX_ARITY) * WORDS * 8);
    int32_t po_sig[8];
    static uint64_t sa_zero[8 * WORDS]; /* shared all-zero masks */
    uint64_t out_serial[WORDS], out_threaded[WORDS];
    int64_t i;
    int failures = 0;
    for (i = 0; i < 8; i++)
        po_sig[i] = (int32_t)(SIGNALS - 8 + i);
    fill_rails(GV, 0x2000);
    fill_rails(FV, 0x3000);
    run_eval(GV, scratch, 1);
    run_eval(FV, scratch, 1);
    memset(out_serial, 0, sizeof(out_serial));
    memset(out_threaded, 0, sizeof(out_threaded));
    repro_detect_step(GV, FV, WORDS, po_sig, 8, sa_zero, sa_zero, sa_zero,
                      sa_zero, out_serial, 1);
    repro_detect_step(GV, FV, WORDS, po_sig, 8, sa_zero, sa_zero, sa_zero,
                      sa_zero, out_threaded, LANES);
    if (memcmp(out_serial, out_threaded, sizeof(out_serial)) != 0) {
        fprintf(stderr, "FAIL detect_step parity\n");
        failures++;
    }
    free(GV);
    free(FV);
    free(scratch);
    return failures;
}

/* --- concurrent callers: the serving-lane shape ------------------- */

typedef struct {
    const uint64_t *reference;
    int failures;
} LaneArg;

static void *lane_main(void *ptr)
{
    LaneArg *arg = ptr;
    const size_t rails = (size_t)(2 * SIGNALS) * WORDS;
    uint64_t *V = malloc(rails * sizeof(uint64_t));
    uint64_t *scratch = malloc((size_t)(2 * MAX_ARITY) * WORDS * 8);
    int round;
    for (round = 0; round < 25; round++) {
        fill_rails(V, 0x4000);
        run_eval(V, scratch, LANES);
        if (memcmp(V, arg->reference, rails * sizeof(uint64_t)) != 0) {
            arg->failures++;
            break;
        }
    }
    free(V);
    free(scratch);
    return 0;
}

static int check_concurrent_callers(void)
{
    const size_t rails = (size_t)(2 * SIGNALS) * WORDS;
    uint64_t *reference = malloc(rails * sizeof(uint64_t));
    uint64_t *scratch = malloc((size_t)(2 * MAX_ARITY) * WORDS * 8);
    pthread_t lanes[LANES];
    LaneArg args[LANES];
    int i, failures = 0;
    fill_rails(reference, 0x4000);
    run_eval(reference, scratch, 1);
    for (i = 0; i < LANES; i++) {
        args[i].reference = reference;
        args[i].failures = 0;
        pthread_create(&lanes[i], 0, lane_main, &args[i]);
    }
    for (i = 0; i < LANES; i++) {
        pthread_join(lanes[i], 0);
        if (args[i].failures) {
            fprintf(stderr, "FAIL concurrent caller lane %d parity\n", i);
            failures += args[i].failures;
        }
    }
    free(reference);
    free(scratch);
    return failures;
}

/* --- pool-init race ------------------------------------------------ */

static void *init_main(void *ptr)
{
    (void)ptr;
    if (repro_thread_pool_init(LANES) < 1 || repro_thread_pool_size() < 1)
        return (void *)1;
    return 0;
}

static int check_pool_init_race(void)
{
    pthread_t racers[LANES];
    void *ret;
    int i, failures = 0;
    for (i = 0; i < LANES; i++)
        pthread_create(&racers[i], 0, init_main, 0);
    for (i = 0; i < LANES; i++) {
        pthread_join(racers[i], &ret);
        if (ret) {
            fprintf(stderr, "FAIL pool init from racer %d\n", i);
            failures++;
        }
    }
    return failures;
}

/* --- fault-axis scan parity ---------------------------------------- */

static int check_scan_parity(void)
{
    const size_t rails = (size_t)(2 * SIGNALS) * WORDS;
    const int64_t num_pos = 8;
    const int64_t obs_per_step = 4;
    int32_t po_sig[8];
    int32_t pi_sig[PIS];
    uint8_t stim_bits[STEPS * PIS];
    int64_t obs_off[STEPS + 1];
    int32_t obs_pos[STEPS * 4];
    uint8_t obs_vals[STEPS * 4];
    static uint64_t sa_zero[8 * WORDS];
    uint64_t *FV = malloc(rails * sizeof(uint64_t));
    uint64_t *scratch = malloc((size_t)(2 * MAX_ARITY) * WORDS * 8);
    uint64_t *alive = malloc((size_t)STEPS * WORDS * sizeof(uint64_t));
    uint64_t pending_s[WORDS], pending_t[WORDS], det[WORDS];
    int64_t *times_s = malloc((size_t)WORDS * 64 * sizeof(int64_t));
    int64_t *times_t = malloc((size_t)WORDS * 64 * sizeof(int64_t));
    uint64_t rng = 0x5000;
    int64_t s, w, b, i;
    int64_t ret_s, ret_t;
    int failures = 0;

    for (i = 0; i < num_pos; i++)
        po_sig[i] = (int32_t)(SIGNALS - num_pos + i);
    for (i = 0; i < PIS; i++)
        pi_sig[i] = (int32_t)i;
    for (s = 0; s < STEPS; s++)
        for (i = 0; i < PIS; i++)
            stim_bits[s * PIS + i] = (uint8_t)(splitmix(&rng) & 1);
    for (s = 0; s <= STEPS; s++)
        obs_off[s] = s * obs_per_step;
    for (s = 0; s < STEPS; s++)
        for (i = 0; i < obs_per_step; i++) {
            obs_pos[s * obs_per_step + i] =
                (int32_t)(splitmix(&rng) % num_pos);
            obs_vals[s * obs_per_step + i] = (uint8_t)(splitmix(&rng) & 1);
        }
    /* Monotone per-slot alive windows: slot (w, b) lives for the first
     * 4..STEPS steps, so spans drain at different steps — the
     * early-exit path the finished_spans atomic combines. */
    for (s = 0; s < STEPS; s++)
        for (w = 0; w < WORDS; w++) {
            uint64_t row = 0;
            for (b = 0; b < 64; b++) {
                const int64_t window = 4 + ((w * 64 + b) % (STEPS - 4));
                if (s < window)
                    row |= (uint64_t)1 << b;
            }
            alive[s * WORDS + w] = row;
        }

    fill_rails(FV, 0x6000);
    for (w = 0; w < WORDS; w++)
        pending_s[w] = pending_t[w] = ~(uint64_t)0;
    for (i = 0; i < WORDS * 64; i++)
        times_s[i] = times_t[i] = -1;

    ret_s = repro_scan(0, FV, WORDS, g_codes, g_outs, g_in_off, g_ins,
                       GATES, g_pin_ops, g_pin_pins, g_pin_sa1, g_pin_sa0,
                       1, g_stem_ops, g_stem_sa1, g_stem_sa0, 1, scratch,
                       0, 0, 0, 0, pi_sig, PIS, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                       0, 0, 0, 0, 0, 0, stim_bits, 0, STEPS, po_sig,
                       num_pos, 0, 0, sa_zero, sa_zero, obs_off, obs_pos,
                       obs_vals, alive, pending_s, times_s, det, 0, 1);
    fill_rails(FV, 0x6000);
    ret_t = repro_scan(0, FV, WORDS, g_codes, g_outs, g_in_off, g_ins,
                       GATES, g_pin_ops, g_pin_pins, g_pin_sa1, g_pin_sa0,
                       1, g_stem_ops, g_stem_sa1, g_stem_sa0, 1, scratch,
                       0, 0, 0, 0, pi_sig, PIS, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                       0, 0, 0, 0, 0, 0, stim_bits, 0, STEPS, po_sig,
                       num_pos, 0, 0, sa_zero, sa_zero, obs_off, obs_pos,
                       obs_vals, alive, pending_t, times_t, det, 0, LANES);

    if (ret_s != ret_t) {
        fprintf(stderr, "FAIL scan return: serial %lld threaded %lld\n",
                (long long)ret_s, (long long)ret_t);
        failures++;
    }
    if (memcmp(pending_s, pending_t, sizeof(pending_s)) != 0) {
        fprintf(stderr, "FAIL scan pending parity\n");
        failures++;
    }
    if (memcmp(times_s, times_t, (size_t)WORDS * 64 * sizeof(int64_t))
        != 0) {
        fprintf(stderr, "FAIL scan detect-time parity\n");
        failures++;
    }
    free(FV);
    free(scratch);
    free(alive);
    free(times_s);
    free(times_t);
    return failures;
}

int main(void)
{
    uint64_t rng = 0x7000;
    int64_t w;
    int failures = 0;
    build_program();
    /* Sparse, disjoint patch masks (sa1 & sa0 must never overlap). */
    for (w = 0; w < WORDS; w++) {
        const uint64_t mask = splitmix(&rng);
        g_pin_sa1[w] = mask & 0x5555555555555555ULL;
        g_pin_sa0[w] = ~mask & 0xaaaaaaaaaaaaaaaaULL;
        g_stem_sa1[w] = mask & 0x0f0f0f0f0f0f0f0fULL;
        g_stem_sa0[w] = ~mask & 0xf0f0f0f0f0f0f0f0ULL;
    }
    if (!repro_threads_available()) {
        printf("kernel built without threads; nothing to sanitize\n");
        return 0;
    }
    failures += check_pool_init_race();
    printf("pool size after racing inits: %lld\n",
           (long long)repro_thread_pool_size());
    failures += check_eval_parity();
    failures += check_detect_parity();
    failures += check_concurrent_callers();
    failures += check_scan_parity();
    repro_thread_pool_shutdown();
    if (failures) {
        fprintf(stderr, "%d parity failure(s)\n", failures);
        return 1;
    }
    printf("tsan driver: all threaded parity checks passed\n");
    return 0;
}
