"""Bit-parallel parallel-sequence simulation of a single fault.

This engine answers the question Procedure 2 asks thousands of times:
*which of these candidate sequences detects fault f?* — with one bit slot
per **candidate sequence** instead of per fault.

Each slot carries its own fault-free machine (the candidates differ, so
their fault-free responses differ) and its own faulty machine with the
same single fault injected in every slot.  Detection in slot ``s`` at time
``t`` requires ``t`` to be inside that candidate's length: slots whose
sequence is exhausted keep simulating padding vectors, but detections in
the padding region are masked off (causality makes the padding harmless
for earlier times).

The hot path is a **packed pipeline**:

* Candidate input columns are packed with NumPy (when importable) in
  chunks of :data:`PACK_CHUNK_STEPS` time steps — one ``packbits`` pass
  per chunk instead of a per-time/per-PI/per-slot Python triple loop —
  and flow into the batches through
  :meth:`~repro.sim.backend.SimBatch.load_inputs_words` (a zero-copy
  scatter on the numpy backend).
* Procedure 2's candidates are never materialized at all: a
  :class:`~repro.sim.scanplan.ScanPlan` (window spans or omission
  indices into a shared base sequence) describes them, and the packer
  derives every expanded candidate column from **one** packed copy of
  the base plus its three per-vector transforms (complement, shift,
  complement+shift) — the expansion operators only reorder time and
  toggle those transforms.  The packed base columns come from the
  session's :class:`~repro.sim.trace.GoodTraceCache`, so a base reused
  across scans (Procedure 2 scans ``T0`` once per target fault) is
  packed once per session, not once per call.
* Detection is one fused
  :meth:`~repro.sim.backend.SimBackend.detect_step` pass across all POs
  per time step (no per-PO ``observe_po`` round trips).
* Partial batches are padded up a halving ladder of stable widths
  (``batch_width``, ``batch_width/2``, ...), so the backend's program LRU
  serves a handful of cached programs per fault for the whole search
  instead of recompiling for every trailing short batch — and callers
  that chunk below ``batch_width`` (Procedure 2's search phase under an
  omission-sized simulator) are not padded up to double their width.

Both machines run on the selected :class:`~repro.sim.backend.SimBackend`.
``pipeline="legacy"`` preserves the historical per-candidate repacking
loop (per-PO observation, per-``(fault, batch size)`` programs) as a
measurable reference — `benchmarks/bench_seqsim.py` tracks the packed
pipeline's speedup over it.

This turns Procedure 2's ``ustart`` search and its vector-omission trials
from per-candidate simulations into one batched pass per
``batch_width`` candidates — the optimization that makes the pure-Python
reproduction tractable (and the vectorized backends fast).
"""

from __future__ import annotations

from collections.abc import Sequence

try:  # The packed pipeline vectorizes with numpy; a pure-Python
    import numpy as np  # fallback keeps the engine dependency-free.
except ImportError:  # pragma: no cover - numpy ships in CI
    np = None

from repro.circuit.netlist import Circuit
from repro.core.ops import ExpansionConfig, expand
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.sim.backend import (
    SimBackend,
    get_backend,
    resolve_auto,
    resolve_scan_mode,
    resolve_simulator_threads,
)
from repro.sim.compiled import CompiledCircuit
from repro.sim.scanplan import (
    ExplicitPlan,
    OmissionPlan,
    ScanPlan,
    WindowRampPlan,
)
from repro.sim.trace import get_trace_cache

DEFAULT_SEQ_BATCH_WIDTH = 128

#: Time steps packed per chunk.  Chunking bounds the packer's working-set
#: (``chunk x num_inputs x batch_width`` bits) and keeps early exits from
#: packing columns that are never simulated.
PACK_CHUNK_STEPS = 128


# ----------------------------------------------------------------------
# Candidate column packers
# ----------------------------------------------------------------------
class _PythonColumns:
    """Reference packer: Python-int columns, one mask per (time, PI).

    Used when numpy is unavailable; semantically identical to the NumPy
    packer (the packed words are the same integers).  Columns are packed
    lazily per step, so the simulation loop's early exits never pay for
    time steps that are never simulated.
    """

    __slots__ = (
        "lengths",
        "max_len",
        "alive_masks",
        "batch_width",
        "_batch",
        "_width",
        "_full",
    )

    def __init__(
        self, batch: list[TestSequence], width: int, batch_width: int
    ) -> None:
        self.lengths = [len(sequence) for sequence in batch]
        self.max_len = max(self.lengths, default=0)
        self.batch_width = batch_width
        self._batch = batch
        self._width = width
        self._full = (1 << batch_width) - 1
        self.alive_masks = []
        for t in range(self.max_len):
            mask = 0
            for slot, length in enumerate(self.lengths):
                if t < length:
                    mask |= 1 << slot
            self.alive_masks.append(mask)

    @property
    def num_steps(self) -> int:
        return self.max_len

    @property
    def num_slots(self) -> int:
        return len(self.lengths)

    def load_step(self, t: int, good, faulty) -> None:
        full = self._full
        lengths = self.lengths
        ones_row: list[int] = []
        zeros_row: list[int] = []
        for position in range(self._width):
            ones = 0
            for slot, sequence in enumerate(self._batch):
                if t < lengths[slot] and sequence[t][position]:
                    ones |= 1 << slot
            ones_row.append(ones)
            zeros_row.append(full & ~ones)
        good.load_inputs_packed(ones_row, zeros_row)
        faulty.load_inputs_packed(ones_row, zeros_row)


class _NumpyColumns:
    """NumPy packer: per-chunk ``packbits`` of candidate bit planes.

    ``bits_for_chunk(t0, t1)`` supplies the raw candidate bits as a
    ``(num_candidates, t1 - t0, width)`` uint8 array; this class owns
    slot-padding to the batch width, the 64-slot word packing, the
    ``zeros = full & ~ones`` complement (padding slots are driven 0, as
    the historical packer did), and per-time alive masks.
    """

    __slots__ = (
        "lengths",
        "max_len",
        "alive_masks",
        "alive_words",
        "batch_width",
        "_bits_for_chunk",
        "_width",
        "_padded_slots",
        "_full_words",
        "_chunk_start",
        "_chunk_end",
        "_chunk_ones",
        "_chunk_zeros",
    )

    def __init__(
        self,
        bits_for_chunk,
        lengths: list[int],
        width: int,
        batch_width: int,
    ) -> None:
        self.lengths = lengths
        self.max_len = max(lengths, default=0)
        self.batch_width = batch_width
        self._bits_for_chunk = bits_for_chunk
        self._width = width
        words = (batch_width + 63) // 64
        self._padded_slots = words * 64
        full = (1 << batch_width) - 1
        self._full_words = np.frombuffer(
            full.to_bytes(words * 8, "little"), dtype=np.uint64
        )
        if self.max_len:
            alive = np.zeros((self.max_len, self._padded_slots), dtype=np.uint8)
            alive[:, : len(lengths)] = (
                np.arange(self.max_len)[:, None]
                < np.asarray(lengths, dtype=np.intp)[None, :]
            )
            packed = np.packbits(alive, axis=-1, bitorder="little")
            self.alive_masks = [
                int.from_bytes(row.tobytes(), "little") for row in packed
            ]
            # The same masks as (max_len, words) uint64 rows, pointed at
            # directly by the native fused-scan kernel.
            self.alive_words = packed.view(np.uint64)
        else:
            self.alive_masks = []
            self.alive_words = None
        self._chunk_start = 0
        self._chunk_end = 0
        self._chunk_ones = None
        self._chunk_zeros = None

    def _pack_chunk(self, t: int) -> None:
        t0 = t
        t1 = min(t + PACK_CHUNK_STEPS, self.max_len)
        bits = self._bits_for_chunk(t0, t1)
        planes = np.zeros(
            (t1 - t0, self._width, self._padded_slots), dtype=np.uint8
        )
        planes[:, :, : bits.shape[0]] = bits.transpose(1, 2, 0)
        ones = np.packbits(planes, axis=-1, bitorder="little").view(np.uint64)
        self._chunk_ones = ones
        self._chunk_zeros = ~ones & self._full_words
        self._chunk_start = t0
        self._chunk_end = t1

    @property
    def num_steps(self) -> int:
        return self.max_len

    @property
    def num_slots(self) -> int:
        return len(self.lengths)

    def chunk_arrays(self, t: int):
        """The packed chunk containing ``t`` as ``(t0, t1, ones, zeros)``.

        ``ones``/``zeros`` are ``(t1 - t0, width, words)`` uint64 — the
        fused native scan consumes whole chunks instead of per-step rows.
        """
        if not self._chunk_start <= t < self._chunk_end or self._chunk_ones is None:
            self._pack_chunk(t)
        return (
            self._chunk_start,
            self._chunk_end,
            self._chunk_ones,
            self._chunk_zeros,
        )

    def load_step(self, t: int, good, faulty) -> None:
        if not self._chunk_start <= t < self._chunk_end or self._chunk_ones is None:
            self._pack_chunk(t)
        offset = t - self._chunk_start
        ones = self._chunk_ones[offset]
        zeros = self._chunk_zeros[offset]
        good.load_inputs_words(ones, zeros)
        faulty.load_inputs_words(ones, zeros)


def _explicit_bits(batch: list[TestSequence], max_len: int, width: int):
    """Chunk supplier over materialized candidate sequences."""
    bits = np.zeros((len(batch), max_len, width), dtype=np.uint8)
    for slot, sequence in enumerate(batch):
        if len(sequence):
            bits[slot, : len(sequence)] = np.asarray(
                sequence.vectors(), dtype=np.uint8
            )
    return lambda t0, t1: bits[:, t0:t1]


def _expansion_time_map(indices, config: ExpansionConfig):
    """Expanded-time maps of ``expand(base[indices], config)``.

    Returns ``(src, comp, shift)`` arrays over the expanded time axis:
    the vector applied at expanded time ``t`` is base vector ``src[t]``
    complemented iff ``comp[t]`` and circularly left-shifted iff
    ``shift[t]`` (the two per-vector transforms commute).  Mirrors
    :func:`repro.core.ops.expand` stage by stage: hold repeats each index,
    repetition tiles the whole map, and each enabled operator appends a
    transformed copy (complement/shift toggling its flag, reversal
    reversing time).
    """
    src = np.repeat(indices, config.hold_cycles)
    src = np.tile(src, config.repetitions)
    comp = np.zeros(len(src), dtype=np.uint8)
    shift = np.zeros(len(src), dtype=np.uint8)
    if config.use_complement:
        src = np.concatenate([src, src])
        comp = np.concatenate([comp, 1 - comp])
        shift = np.concatenate([shift, shift])
    if config.use_shift:
        src = np.concatenate([src, src])
        comp = np.concatenate([comp, comp])
        shift = np.concatenate([shift, 1 - shift])
    if config.use_reverse:
        src = np.concatenate([src, src[::-1]])
        comp = np.concatenate([comp, comp[::-1]])
        shift = np.concatenate([shift, shift[::-1]])
    return src, comp, shift


def omission_index_lists(length: int, omit_indices: Sequence[int]) -> list:
    """Index lists describing ``base.omit(index)`` for each omitted index."""
    return [[j for j in range(length) if j != index] for index in omit_indices]


def _derived_packer(
    base_bits,
    index_lists: list,
    expansion: ExpansionConfig,
    width: int,
    batch_width: int,
) -> _NumpyColumns:
    """Packer whose candidates are ``expand(base[indices], expansion)``.

    ``base_bits`` is the base sequence as bits
    (:func:`repro.sim.trace.base_bits_of`);
    its four per-vector variants (identity, complement, shift,
    complement+shift) form a ``(4, len(base), width)`` table, and every
    candidate column is a gather ``table[transform[slot, t],
    src[slot, t]]`` — no expanded sequence is ever materialized.
    """
    shifted = np.roll(base_bits, -1, axis=1)
    table = np.stack([base_bits, 1 - base_bits, shifted, 1 - shifted])

    lengths: list[int] = []
    maps = []
    for indices in index_lists:
        src, comp, shift = _expansion_time_map(
            np.asarray(indices, dtype=np.intp), expansion
        )
        maps.append((src, comp + 2 * shift))
        lengths.append(len(src))
    max_len = max(lengths, default=0)
    # Compact index dtypes: a wide batch over a long T0 keeps these
    # matrices at (batch_width x expanded_len) elements.
    src_matrix = np.zeros((len(index_lists), max_len), dtype=np.int32)
    tfm_matrix = np.zeros((len(index_lists), max_len), dtype=np.int8)
    for slot, (src, tfm) in enumerate(maps):
        src_matrix[slot, : len(src)] = src
        tfm_matrix[slot, : len(tfm)] = tfm

    def bits_for_chunk(t0: int, t1: int):
        return table[tfm_matrix[:, t0:t1], src_matrix[:, t0:t1]]

    return _NumpyColumns(bits_for_chunk, lengths, width, batch_width)


class SequenceBatchSimulator:
    """Simulates one fault under many candidate sequences at once."""

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        batch_width: int = DEFAULT_SEQ_BATCH_WIDTH,
        backend: str | SimBackend | None = None,
        pipeline: str = "packed",
        scan_mode: str | None = None,
        threads: int = 1,
    ) -> None:
        if isinstance(circuit, CompiledCircuit):
            self._compiled = circuit
        else:
            self._compiled = CompiledCircuit(circuit)
        # "auto" adapts both the engine (paired-axis gate threshold) and,
        # when the big-int kernel wins, the batch width (its sweet spot).
        backend, batch_width = resolve_auto(
            self._compiled, backend, batch_width, paired=True
        )
        self._backend = get_backend(self._compiled, backend)
        self._batch_width = self._backend.validate_batch_width(batch_width)
        # In-kernel thread lanes (native backend only): warm the pool and
        # clamp to what it granted; outcomes are bit-identical either way.
        self._threads = resolve_simulator_threads(self._backend, threads)
        if pipeline not in ("packed", "legacy"):
            raise SimulationError(
                f"unknown seqsim pipeline {pipeline!r}; "
                "expected 'packed' or 'legacy'"
            )
        self._pipeline = pipeline
        self._scan_mode = resolve_scan_mode(scan_mode, paired=True)
        # The session-wide good-machine cache: packed base columns for
        # the derived-candidate pipeline come from here, so a base
        # reused across scans is converted to bits once per session.
        self._trace_cache = get_trace_cache(self._compiled)

    @property
    def compiled(self) -> CompiledCircuit:
        return self._compiled

    @property
    def backend(self) -> SimBackend:
        return self._backend

    @property
    def batch_width(self) -> int:
        return self._batch_width

    @property
    def pipeline(self) -> str:
        return self._pipeline

    @property
    def scan_mode(self) -> str:
        return self._scan_mode

    @property
    def threads(self) -> int:
        """Kernel thread lanes each batch dispatch may use (1 = serial)."""
        return self._threads

    def close(self) -> None:
        """Release simulator resources.

        A no-op here; the process-sharded subclass
        (:class:`repro.sim.seqshard.ShardedSequenceBatchSimulator`)
        retires its worker-pool context and shared-memory buffers.
        Present on the base class so consumers built against
        :func:`repro.sim.seqshard.make_sequence_simulator` can close
        unconditionally.
        """

    def __enter__(self) -> "SequenceBatchSimulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Plan-consuming APIs (the ScanPlan IR's serial executor)
    # ------------------------------------------------------------------
    def scan(self, fault: Fault, plan: ScanPlan) -> list[bool]:
        """Detection outcomes for every candidate a :class:`ScanPlan` holds.

        The single entry point every scan — explicit candidate lists,
        window ramps, omission rounds — funnels through; the sharded
        subclass overrides it to fan the same plan across workers with
        bit-identical outcomes.
        """
        if plan.kind == "explicit":
            return self._scan_explicit(fault, plan.items)
        return self._scan_derived(fault, plan)

    def first_hit(
        self, fault: Fault, plan: ScanPlan, chunk: int | None = None
    ) -> tuple[int | None, int]:
        """Position of the first detecting candidate, scanning in plan order.

        Returns ``(position, evaluated)``: ``position`` indexes the
        plan's candidates (``None`` when nothing detects) and
        ``evaluated`` is the number of candidates simulated under the
        reference serial chunked scan — whole chunks of ``chunk``
        candidates (default ``batch_width``) up to and including the
        winning chunk.  The sharded subclass returns the identical pair
        for any worker count and chunking mode: the winner is the
        *minimum* detecting position (what a serial scan finds first)
        and ``evaluated`` is recomputed from this same formula, so
        Procedure 2's statistics never depend on ``workers``.
        """
        chunk = self._first_hit_chunk(chunk)
        for start in range(0, len(plan), chunk):
            part = plan.slice(start, start + chunk)
            outcomes = self.scan(fault, part)
            for offset, detected in enumerate(outcomes):
                if detected:
                    return start + offset, start + len(part)
        return None, len(plan)

    # ------------------------------------------------------------------
    # Public detection APIs (thin wrappers that build the plans)
    # ------------------------------------------------------------------
    def detects(self, fault: Fault, sequences: list[TestSequence]) -> list[bool]:
        """For each candidate sequence, does it detect ``fault``?"""
        return self.scan(fault, ExplicitPlan(sequences))

    def detects_windows(
        self,
        fault: Fault,
        base: TestSequence,
        spans: list[tuple[int, int]],
        expansion: ExpansionConfig,
    ) -> list[bool]:
        """Does ``expand(base[start..end], expansion)`` detect ``fault``?

        One outcome per ``(start, end)`` (inclusive) span — Procedure 2's
        window-search candidates, derived from the shared base without
        materializing any expanded sequence.
        """
        return self.scan(fault, WindowRampPlan(base, spans, expansion))

    def detects_omissions(
        self,
        fault: Fault,
        base: TestSequence,
        omit_indices: Sequence[int],
        expansion: ExpansionConfig,
    ) -> list[bool]:
        """Does ``expand(base.omit(index), expansion)`` detect ``fault``?

        One outcome per omitted index — Procedure 2's vector-omission
        candidates, derived from the shared base.
        """
        return self.scan(fault, OmissionPlan(base, omit_indices, expansion))

    def first_detecting_window(
        self,
        fault: Fault,
        base: TestSequence,
        spans: list[tuple[int, int]],
        expansion: ExpansionConfig,
        chunk: int | None = None,
    ) -> tuple[int | None, int]:
        """Position of the first detecting span, scanning in list order.

        See :meth:`first_hit` for the ``(position, evaluated)`` contract.
        """
        return self.first_hit(fault, WindowRampPlan(base, spans, expansion), chunk)

    def first_detecting_omission(
        self,
        fault: Fault,
        base: TestSequence,
        omit_indices: Sequence[int],
        expansion: ExpansionConfig,
        chunk: int | None = None,
    ) -> tuple[int | None, int]:
        """Position of the first detecting omission, scanning in order.

        See :meth:`first_hit` for the ``(position, evaluated)`` contract.
        """
        return self.first_hit(
            fault, OmissionPlan(base, omit_indices, expansion), chunk
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _first_hit_chunk(self, chunk: int | None) -> int:
        if chunk is None:
            return self._batch_width
        if chunk < 1:
            raise SimulationError(f"first-hit chunk must be >= 1, got {chunk}")
        return chunk

    def _scan_explicit(
        self, fault: Fault, sequences: list[TestSequence]
    ) -> list[bool]:
        width = self._compiled.num_inputs
        for sequence in sequences:
            if len(sequence) and sequence.width != width:
                raise SimulationError(
                    f"candidate width {sequence.width} != circuit inputs {width}"
                )
        outcomes: list[bool] = []
        for start in range(0, len(sequences), self._batch_width):
            batch = sequences[start : start + self._batch_width]
            if self._pipeline == "legacy":
                outcomes.extend(self._run_batch_legacy(fault, batch))
            else:
                outcomes.extend(
                    self._run_packed(fault, self._pack_explicit(batch))
                )
        return outcomes

    def _scan_derived(self, fault: Fault, plan: ScanPlan) -> list[bool]:
        base = plan.base
        width = self._compiled.num_inputs
        if len(base) and base.width != width:
            raise SimulationError(
                f"base width {base.width} != circuit inputs {width}"
            )
        if np is None or self._pipeline == "legacy":
            # Fallback: materialize the expanded candidates.
            return self._scan_explicit(
                fault,
                [
                    expand(TestSequence([base[j] for j in indices]), plan.expansion)
                    for indices in plan.index_lists()
                ],
            )
        return self._detects_derived_bits(
            fault,
            self._trace_cache.base_bits(base),
            plan.index_lists(),
            plan.expansion,
        )

    def _detects_derived_bits(
        self,
        fault: Fault,
        base_bits,
        index_lists: list,
        expansion: ExpansionConfig,
    ) -> list[bool]:
        """Packed derived detection over a base already converted to bits.

        The entry point the candidate-axis shard workers use: they attach
        the published base-bits buffer and call this directly, skipping
        any per-task base reconstruction.  Requires numpy and the packed
        pipeline (the parent falls back to pickled bases otherwise).
        """
        width = self._compiled.num_inputs
        outcomes: list[bool] = []
        for start in range(0, len(index_lists), self._batch_width):
            chunk = index_lists[start : start + self._batch_width]
            packer = _derived_packer(
                base_bits, chunk, expansion, width, self._pad_width(len(chunk))
            )
            outcomes.extend(self._run_packed(fault, packer))
        return outcomes

    def _pack_explicit(self, batch: list[TestSequence]):
        width = self._compiled.num_inputs
        pad_width = self._pad_width(len(batch))
        if np is None:
            return _PythonColumns(batch, width, pad_width)
        max_len = max((len(sequence) for sequence in batch), default=0)
        return _NumpyColumns(
            _explicit_bits(batch, max_len, width),
            [len(sequence) for sequence in batch],
            width,
            pad_width,
        )

    def _pad_width(self, count: int) -> int:
        """Slot width a ``count``-candidate batch is padded to.

        The smallest rung of the halving ladder ``batch_width``,
        ``batch_width/2``, ``batch_width/4``, ... that holds ``count``.
        Stable rungs keep the backend program LRU at a handful of entries
        per fault (no per-trailing-size recompiles) without padding far
        past the real batch — e.g. Procedure 2's search batches (half the
        omission width) pad to their own rung, not to double the slots.
        """
        width = self._batch_width
        while width // 2 >= count:
            width //= 2
        return width

    def _run_packed(self, fault: Fault, packer) -> list[bool]:
        """Drive one packed candidate batch; return per-slot outcomes.

        The batch is opened at the packer's padded width (see
        :meth:`_pad_width`) — dead slots beyond the real candidates are
        driven with constant 0 and masked out of ``alive`` — so the
        backend LRU serves a small set of cached programs per fault for
        the whole search.
        """
        count = len(packer.lengths)
        if count == 0:
            return []
        backend = self._backend
        batch_width = packer.batch_width
        good = backend.batch(backend.program(None), batch_width)
        faulty = backend.batch(
            backend.program((fault,) * batch_width), batch_width
        )
        good.threads = self._threads
        faulty.threads = self._threads
        # The whole per-step loop — input load, paired eval, detection,
        # first-hit bookkeeping, state latch — lives in run_scan now.
        # "stepped" pins the base class's per-step reference loop (the
        # parity oracle and escape hatch); "fused" dispatches to the
        # backend's whole-sequence kernel.
        if self._scan_mode == "stepped":
            times = SimBackend.run_scan(
                backend, good, faulty, packer, None, packer.alive_masks
            )
        else:
            times = backend.run_scan(
                good, faulty, packer, None, packer.alive_masks
            )
        return [times[slot] is not None for slot in range(count)]

    def _run_batch_legacy(
        self, fault: Fault, batch: list[TestSequence]
    ) -> list[bool]:
        """The pre-packed-pipeline loop, preserved as a benchmark reference.

        Per-candidate Python repacking, per-PO ``observe_po`` comparisons
        and per-``(fault, batch size)`` programs — the baseline
        `benchmarks/bench_seqsim.py` measures the packed pipeline against.
        """
        compiled = self._compiled
        width = compiled.num_inputs
        batch_size = len(batch)
        if batch_size == 0:
            return []
        full = (1 << batch_size) - 1
        backend = self._backend
        good = backend.batch(backend.program(None), batch_size)
        faulty = backend.batch(backend.program((fault,) * batch_size), batch_size)

        lengths = [len(sequence) for sequence in batch]
        max_len = max(lengths)
        # alive[t]: slots whose sequence still covers time t.
        alive_masks: list[int] = []
        for t in range(max_len):
            mask = 0
            for slot, length in enumerate(lengths):
                if t < length:
                    mask |= 1 << slot
            alive_masks.append(mask)
        # Per-time, per-PI packed input words (padding with 0 past the end).
        pi_words: list[tuple[list[int], list[int]]] = []
        for t in range(max_len):
            ones_row: list[int] = []
            zeros_row: list[int] = []
            for position in range(width):
                ones = 0
                for slot, sequence in enumerate(batch):
                    if t < lengths[slot] and sequence[t][position]:
                        ones |= 1 << slot
                ones_row.append(ones)
                zeros_row.append(full & ~ones)
            pi_words.append((ones_row, zeros_row))

        num_outputs = len(compiled.po_indices)
        pending = full

        for t in range(max_len):
            ones_row, zeros_row = pi_words[t]
            good.load_inputs_packed(ones_row, zeros_row)
            faulty.load_inputs_packed(ones_row, zeros_row)
            good.load_state()
            faulty.load_state()
            faulty.apply_source_patches()

            good.eval()
            faulty.eval()

            detected_now = 0
            for position in range(num_outputs):
                gh, gl = good.observe_po(position)
                fh, fl = faulty.observe_po(position)
                detected_now |= (gh & fl) | (gl & fh)
            pending &= ~(detected_now & alive_masks[t])
            if pending == 0:
                break

            good.capture_state()
            faulty.capture_state()

        detected = full & ~pending
        return [bool(detected >> slot & 1) for slot in range(batch_size)]
