"""Bit-parallel parallel-sequence simulation of a single fault.

This engine answers the question Procedure 2 asks thousands of times:
*which of these candidate sequences detects fault f?* — with one bit slot
per **candidate sequence** instead of per fault.

Each slot carries its own fault-free machine (the candidates differ, so
their fault-free responses differ) and its own faulty machine with the
same single fault injected in every slot.  Detection in slot ``s`` at time
``t`` requires ``t`` to be inside that candidate's length: slots whose
sequence is exhausted keep simulating padding vectors, but detections in
the padding region are masked off (causality makes the padding harmless
for earlier times).

This turns Procedure 2's ``ustart`` search and its vector-omission trials
from per-candidate simulations into one batched pass per
``batch_width`` candidates — the optimization that makes the pure-Python
reproduction tractable.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.sim.compiled import CompiledCircuit
from repro.sim.kernel import build_run_ops, eval_combinational, source_stem_patches

DEFAULT_SEQ_BATCH_WIDTH = 128


class SequenceBatchSimulator:
    """Simulates one fault under many candidate sequences at once."""

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        batch_width: int = DEFAULT_SEQ_BATCH_WIDTH,
    ) -> None:
        if batch_width < 1:
            raise SimulationError(f"batch width must be >= 1, got {batch_width}")
        if isinstance(circuit, CompiledCircuit):
            self._compiled = circuit
        else:
            self._compiled = CompiledCircuit(circuit)
        self._batch_width = batch_width
        self._good_ops = build_run_ops(self._compiled, None)

    @property
    def compiled(self) -> CompiledCircuit:
        return self._compiled

    def detects(self, fault: Fault, sequences: list[TestSequence]) -> list[bool]:
        """For each candidate sequence, does it detect ``fault``?"""
        outcomes: list[bool] = []
        for start in range(0, len(sequences), self._batch_width):
            outcomes.extend(
                self._run_batch(fault, sequences[start : start + self._batch_width])
            )
        return outcomes

    def _run_batch(self, fault: Fault, batch: list[TestSequence]) -> list[bool]:
        compiled = self._compiled
        width = compiled.num_inputs
        for sequence in batch:
            if len(sequence) and sequence.width != width:
                raise SimulationError(
                    f"candidate width {sequence.width} != circuit inputs {width}"
                )
        batch_size = len(batch)
        if batch_size == 0:
            return []
        full = (1 << batch_size) - 1
        plan = compiled.compile_plan([fault] * batch_size)
        faulty_ops = build_run_ops(compiled, plan)
        src_patches = source_stem_patches(compiled, plan)
        dff_patches = sorted(plan.dff_pin.items())
        po_patches = plan.po_pin
        good_ops = self._good_ops

        lengths = [len(sequence) for sequence in batch]
        max_len = max(lengths)
        # alive[t]: slots whose sequence still covers time t.
        alive_masks: list[int] = []
        for t in range(max_len):
            mask = 0
            for slot, length in enumerate(lengths):
                if t < length:
                    mask |= 1 << slot
            alive_masks.append(mask)
        # Per-time, per-PI packed input words (padding with 0 past the end).
        pi_words: list[list[tuple[int, int]]] = []
        for t in range(max_len):
            row: list[tuple[int, int]] = []
            for position in range(width):
                ones = 0
                for slot, sequence in enumerate(batch):
                    if t < lengths[slot] and sequence[t][position]:
                        ones |= 1 << slot
                row.append((ones, full & ~ones))
            pi_words.append(row)

        n = compiled.num_signals
        GH = [0] * n
        GL = [0] * n
        FH = [0] * n
        FL = [0] * n
        pi_indices = compiled.pi_indices
        po_indices = compiled.po_indices
        flop_pairs = compiled.flop_pairs
        good_state: list[tuple[int, int]] = [(0, 0)] * len(flop_pairs)
        faulty_state: list[tuple[int, int]] = [(0, 0)] * len(flop_pairs)
        pending = full

        for t in range(max_len):
            words = pi_words[t]
            for position, pi_index in enumerate(pi_indices):
                ones, zeros = words[position]
                GH[pi_index] = ones
                GL[pi_index] = zeros
                FH[pi_index] = ones
                FL[pi_index] = zeros
            for position, (q_index, _) in enumerate(flop_pairs):
                GH[q_index], GL[q_index] = good_state[position]
                FH[q_index], FL[q_index] = faulty_state[position]
            for signal_index, sa1, sa0 in src_patches:
                FH[signal_index] = (FH[signal_index] | sa1) & ~sa0
                FL[signal_index] = (FL[signal_index] | sa0) & ~sa1

            eval_combinational(good_ops, GH, GL)
            eval_combinational(faulty_ops, FH, FL)

            detected_now = 0
            for position, po_index in enumerate(po_indices):
                fh = FH[po_index]
                fl = FL[po_index]
                patch = po_patches.get(position)
                if patch is not None:
                    sa1, sa0 = patch
                    fh = (fh | sa1) & ~sa0
                    fl = (fl | sa0) & ~sa1
                detected_now |= (GH[po_index] & fl) | (GL[po_index] & fh)
            pending &= ~(detected_now & alive_masks[t])
            if pending == 0:
                break

            good_state = [(GH[d], GL[d]) for _, d in flop_pairs]
            next_faulty = [(FH[d], FL[d]) for _, d in flop_pairs]
            for position, (sa1, sa0) in dff_patches:
                h, l = next_faulty[position]
                next_faulty[position] = ((h | sa1) & ~sa0, (l | sa0) & ~sa1)
            faulty_state = next_faulty

        detected = full & ~pending
        return [bool(detected >> slot & 1) for slot in range(batch_size)]
