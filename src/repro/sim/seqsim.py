"""Bit-parallel parallel-sequence simulation of a single fault.

This engine answers the question Procedure 2 asks thousands of times:
*which of these candidate sequences detects fault f?* — with one bit slot
per **candidate sequence** instead of per fault.

Each slot carries its own fault-free machine (the candidates differ, so
their fault-free responses differ) and its own faulty machine with the
same single fault injected in every slot.  Detection in slot ``s`` at time
``t`` requires ``t`` to be inside that candidate's length: slots whose
sequence is exhausted keep simulating padding vectors, but detections in
the padding region are masked off (causality makes the padding harmless
for earlier times).

Both machines run on the selected :class:`~repro.sim.backend.SimBackend`;
the faulty program is compiled once per ``(fault, batch size)`` and
LRU-cached by the backend, so the thousands of Procedure 2 trials against
one fault reuse it for free.

This turns Procedure 2's ``ustart`` search and its vector-omission trials
from per-candidate simulations into one batched pass per
``batch_width`` candidates — the optimization that makes the pure-Python
reproduction tractable (and the vectorized backends fast).
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.sim.backend import SimBackend, get_backend
from repro.sim.compiled import CompiledCircuit

DEFAULT_SEQ_BATCH_WIDTH = 128


class SequenceBatchSimulator:
    """Simulates one fault under many candidate sequences at once."""

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        batch_width: int = DEFAULT_SEQ_BATCH_WIDTH,
        backend: str | SimBackend | None = None,
    ) -> None:
        if isinstance(circuit, CompiledCircuit):
            self._compiled = circuit
        else:
            self._compiled = CompiledCircuit(circuit)
        self._backend = get_backend(self._compiled, backend)
        self._batch_width = self._backend.validate_batch_width(batch_width)

    @property
    def compiled(self) -> CompiledCircuit:
        return self._compiled

    @property
    def backend(self) -> SimBackend:
        return self._backend

    def detects(self, fault: Fault, sequences: list[TestSequence]) -> list[bool]:
        """For each candidate sequence, does it detect ``fault``?"""
        outcomes: list[bool] = []
        for start in range(0, len(sequences), self._batch_width):
            outcomes.extend(
                self._run_batch(fault, sequences[start : start + self._batch_width])
            )
        return outcomes

    def _run_batch(self, fault: Fault, batch: list[TestSequence]) -> list[bool]:
        compiled = self._compiled
        width = compiled.num_inputs
        for sequence in batch:
            if len(sequence) and sequence.width != width:
                raise SimulationError(
                    f"candidate width {sequence.width} != circuit inputs {width}"
                )
        batch_size = len(batch)
        if batch_size == 0:
            return []
        full = (1 << batch_size) - 1
        backend = self._backend
        good = backend.batch(backend.program(None), batch_size)
        faulty = backend.batch(backend.program((fault,) * batch_size), batch_size)

        lengths = [len(sequence) for sequence in batch]
        max_len = max(lengths)
        # alive[t]: slots whose sequence still covers time t.
        alive_masks: list[int] = []
        for t in range(max_len):
            mask = 0
            for slot, length in enumerate(lengths):
                if t < length:
                    mask |= 1 << slot
            alive_masks.append(mask)
        # Per-time, per-PI packed input words (padding with 0 past the end).
        pi_words: list[tuple[list[int], list[int]]] = []
        for t in range(max_len):
            ones_row: list[int] = []
            zeros_row: list[int] = []
            for position in range(width):
                ones = 0
                for slot, sequence in enumerate(batch):
                    if t < lengths[slot] and sequence[t][position]:
                        ones |= 1 << slot
                ones_row.append(ones)
                zeros_row.append(full & ~ones)
            pi_words.append((ones_row, zeros_row))

        num_outputs = len(compiled.po_indices)
        pending = full

        for t in range(max_len):
            ones_row, zeros_row = pi_words[t]
            good.load_inputs_packed(ones_row, zeros_row)
            faulty.load_inputs_packed(ones_row, zeros_row)
            good.load_state()
            faulty.load_state()
            faulty.apply_source_patches()

            good.eval()
            faulty.eval()

            detected_now = 0
            for position in range(num_outputs):
                gh, gl = good.observe_po(position)
                fh, fl = faulty.observe_po(position)
                detected_now |= (gh & fl) | (gl & fh)
            pending &= ~(detected_now & alive_masks[t])
            if pending == 0:
                break

            good.capture_state()
            faulty.capture_state()

        detected = full & ~pending
        return [bool(detected >> slot & 1) for slot in range(batch_size)]
