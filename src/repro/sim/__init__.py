"""Simulation engines.

* :mod:`repro.sim.compiled` — compiles a netlist to a flat op program.
* :mod:`repro.sim.backend` — the pluggable backend layer: the
  :class:`SimBackend` protocol, the registry (:func:`get_backend`,
  :func:`available_backends`) and the per-fault-batch program cache.
* :mod:`repro.sim.backend_python` — reference big-int backend.
* :mod:`repro.sim.backend_numpy` — vectorized ``uint64``-array backend.
* :mod:`repro.sim.logicsim` — fault-free 3-valued sequential simulation.
* :mod:`repro.sim.faultsim` — bit-parallel parallel-fault simulation
  (one input sequence, many faults) with fault dropping.
* :mod:`repro.sim.scanplan` — the :class:`ScanPlan` IR every candidate
  scan is described as (window ramps, omission rounds, explicit lists),
  with per-candidate cost and cost-balanced / count-based chunk
  boundaries shared by the serial and sharded executors.
* :mod:`repro.sim.trace` — the per-session good-machine trace cache:
  fault-free traces, observation plans and packed base bit columns
  computed once per (circuit, sequence) and published over shared
  memory for the sharded axes (:func:`get_trace_cache`).
* :mod:`repro.sim.workerpool` — the persistent per-session worker pool
  both sharded axes borrow (one spawn + one circuit pickle per worker
  per context, shared first-hit cancellation slot).
* :mod:`repro.sim.sharding` — process-sharded fault simulation: chunked
  work-stealing across worker processes behind the same simulator API
  (:func:`make_fault_simulator` is the ``workers=`` seam).
* :mod:`repro.sim.seqsim` — bit-parallel parallel-sequence simulation
  (one fault, many candidate input sequences), the Procedure 2 engine.
* :mod:`repro.sim.seqshard` — process-sharded candidate detection:
  Procedure 2's window/omission scans chunked over the shared pool with
  shared-memory base/result buffers (:func:`make_sequence_simulator` is
  the candidate-axis ``workers=`` seam).
* :mod:`repro.sim.reference` — slow, obviously-correct per-fault scalar
  simulator used to cross-check the fast engines in the tests.
"""

from repro.sim.backend import (
    DEFAULT_BACKEND,
    SimBackend,
    SimBatch,
    SimProgram,
    available_backends,
    get_backend,
)
from repro.sim.compiled import CompiledCircuit
from repro.sim.logicsim import LogicSimulator, GoodTrace
from repro.sim.faultsim import FaultSimulator, FaultSimResult
from repro.sim.sharding import (
    ShardedFaultSimSession,
    ShardedFaultSimulator,
    make_fault_simulator,
)
from repro.sim.scanplan import (
    ExplicitPlan,
    OmissionPlan,
    ScanPlan,
    WindowRampPlan,
)
from repro.sim.seqsim import SequenceBatchSimulator
from repro.sim.seqshard import (
    ShardedSequenceBatchSimulator,
    make_sequence_simulator,
)
from repro.sim.trace import (
    GoodTraceCache,
    close_trace_caches,
    get_trace_cache,
)
from repro.sim.workerpool import WorkerPool, close_worker_pools, get_worker_pool
from repro.sim.detection import DetectionRecord

__all__ = [
    "ScanPlan",
    "WindowRampPlan",
    "OmissionPlan",
    "ExplicitPlan",
    "GoodTraceCache",
    "get_trace_cache",
    "close_trace_caches",
    "CompiledCircuit",
    "DEFAULT_BACKEND",
    "SimBackend",
    "SimBatch",
    "SimProgram",
    "available_backends",
    "get_backend",
    "LogicSimulator",
    "GoodTrace",
    "FaultSimulator",
    "FaultSimResult",
    "ShardedFaultSimSession",
    "ShardedFaultSimulator",
    "make_fault_simulator",
    "SequenceBatchSimulator",
    "ShardedSequenceBatchSimulator",
    "make_sequence_simulator",
    "WorkerPool",
    "get_worker_pool",
    "close_worker_pools",
    "DetectionRecord",
]
