"""Simulation engines.

* :mod:`repro.sim.compiled` — compiles a netlist to a flat op program.
* :mod:`repro.sim.logicsim` — fault-free 3-valued sequential simulation.
* :mod:`repro.sim.faultsim` — bit-parallel parallel-fault simulation
  (one input sequence, many faults) with fault dropping.
* :mod:`repro.sim.seqsim` — bit-parallel parallel-sequence simulation
  (one fault, many candidate input sequences), the Procedure 2 engine.
* :mod:`repro.sim.reference` — slow, obviously-correct per-fault scalar
  simulator used to cross-check the fast engines in the tests.
"""

from repro.sim.compiled import CompiledCircuit
from repro.sim.logicsim import LogicSimulator, GoodTrace
from repro.sim.faultsim import FaultSimulator, FaultSimResult
from repro.sim.seqsim import SequenceBatchSimulator
from repro.sim.detection import DetectionRecord

__all__ = [
    "CompiledCircuit",
    "LogicSimulator",
    "GoodTrace",
    "FaultSimulator",
    "FaultSimResult",
    "SequenceBatchSimulator",
    "DetectionRecord",
]
