"""Fault-free 3-valued sequential logic simulation.

Runs the compiled kernel with a single slot and no injection plan.  The
resulting :class:`GoodTrace` (per-cycle primary output values, and
optionally all signal values) is consumed by the fault simulators for
detection comparison, by the ATPG for guidance, and by the BIST session
model for computing the fault-free signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.logic.values import ONE, X, ZERO, Ternary
from repro.sim.compiled import CompiledCircuit
from repro.sim.kernel import build_run_ops, eval_combinational


@dataclass
class GoodTrace:
    """Fault-free response to a sequence.

    Attributes:
        po_values: ``po_values[t][p]`` is the value of PO ``p`` at time ``t``.
        final_state: flop values after the last vector.
        signal_values: optional full trace ``signal_values[t][signal_index]``.
    """

    po_values: list[list[Ternary]]
    final_state: list[Ternary]
    signal_values: list[list[Ternary]] | None = None

    @property
    def length(self) -> int:
        return len(self.po_values)

    def known_output_fraction(self) -> float:
        """Fraction of PO observations that are binary (initialization metric)."""
        total = sum(len(row) for row in self.po_values)
        if total == 0:
            return 0.0
        known = sum(1 for row in self.po_values for v in row if v is not X)
        return known / total


class LogicSimulator:
    """Fault-free simulator for one circuit (reusable across sequences)."""

    def __init__(self, circuit: Circuit | CompiledCircuit) -> None:
        if isinstance(circuit, CompiledCircuit):
            self._compiled = circuit
        else:
            self._compiled = CompiledCircuit(circuit)
        self._run_ops = build_run_ops(self._compiled, None)

    @property
    def compiled(self) -> CompiledCircuit:
        return self._compiled

    def run(
        self,
        sequence: TestSequence,
        record_signals: bool = False,
        initial_state: list[Ternary] | None = None,
    ) -> GoodTrace:
        """Simulate ``sequence``; flops start at ``initial_state`` (default all-X)."""
        compiled = self._compiled
        if len(sequence) and sequence.width != compiled.num_inputs:
            raise SimulationError(
                f"sequence width {sequence.width} != circuit inputs "
                f"{compiled.num_inputs}"
            )
        n = compiled.num_signals
        H = [0] * n
        L = [0] * n
        if initial_state is None:
            state: list[tuple[int, int]] = [(0, 0)] * len(compiled.flop_pairs)
        else:
            if len(initial_state) != len(compiled.flop_pairs):
                raise SimulationError(
                    f"initial state has {len(initial_state)} flop values, "
                    f"circuit has {len(compiled.flop_pairs)} flops"
                )
            state = [
                (1, 0) if value is ONE else (0, 1) if value is ZERO else (0, 0)
                for value in initial_state
            ]
        pi_indices = compiled.pi_indices
        po_indices = compiled.po_indices
        flop_pairs = compiled.flop_pairs
        run_ops = self._run_ops
        po_trace: list[list[Ternary]] = []
        signal_trace: list[list[Ternary]] | None = [] if record_signals else None

        for vector in sequence:
            for position, pi_index in enumerate(pi_indices):
                if vector[position]:
                    H[pi_index] = 1
                    L[pi_index] = 0
                else:
                    H[pi_index] = 0
                    L[pi_index] = 1
            for position, (q_index, _) in enumerate(flop_pairs):
                H[q_index], L[q_index] = state[position]
            eval_combinational(run_ops, H, L)
            po_trace.append([_scalar(H[i], L[i]) for i in po_indices])
            if signal_trace is not None:
                signal_trace.append([_scalar(H[i], L[i]) for i in range(n)])
            state = [(H[d], L[d]) for _, d in flop_pairs]

        final_state = [_scalar(h, l) for h, l in state]
        return GoodTrace(
            po_values=po_trace, final_state=final_state, signal_values=signal_trace
        )


def _scalar(h: int, l: int) -> Ternary:
    if h:
        return ONE
    if l:
        return ZERO
    return X
