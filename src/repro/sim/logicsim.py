"""Fault-free 3-valued sequential logic simulation.

Runs a single-slot batch of the selected simulation backend with no
injection plan.  The resulting :class:`GoodTrace` (per-cycle primary
output values, and optionally all signal values) is consumed by the fault
simulators for detection comparison, by the ATPG for guidance, and by the
BIST session model for computing the fault-free signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.logic.values import ONE, X, ZERO, Ternary
from repro.sim.backend import AUTO_BACKEND, SimBackend, get_backend
from repro.sim.compiled import CompiledCircuit


@dataclass
class GoodTrace:
    """Fault-free response to a sequence.

    Attributes:
        po_values: ``po_values[t][p]`` is the value of PO ``p`` at time ``t``.
        final_state: flop values after the last vector.
        signal_values: optional full trace ``signal_values[t][signal_index]``.
    """

    po_values: list[list[Ternary]]
    final_state: list[Ternary]
    signal_values: list[list[Ternary]] | None = None

    @property
    def length(self) -> int:
        return len(self.po_values)

    def known_output_fraction(self) -> float:
        """Fraction of PO observations that are binary (initialization metric)."""
        total = sum(len(row) for row in self.po_values)
        if total == 0:
            return 0.0
        known = sum(1 for row in self.po_values for v in row if v is not X)
        return known / total


class LogicSimulator:
    """Fault-free simulator for one circuit (reusable across sequences)."""

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        backend: str | SimBackend | None = None,
    ) -> None:
        if isinstance(circuit, CompiledCircuit):
            self._compiled = circuit
        else:
            self._compiled = CompiledCircuit(circuit)
        if backend == AUTO_BACKEND:
            # Fault-free simulation runs a single slot; the big-int
            # kernel is the fastest engine for that shape on any circuit
            # (1-slot vectorized passes are pure dispatch overhead).
            backend = "python"
        self._backend = get_backend(self._compiled, backend)
        self._program = self._backend.program(None)

    @property
    def compiled(self) -> CompiledCircuit:
        return self._compiled

    @property
    def backend(self) -> SimBackend:
        return self._backend

    def run(
        self,
        sequence: TestSequence,
        record_signals: bool = False,
        initial_state: list[Ternary] | None = None,
    ) -> GoodTrace:
        """Simulate ``sequence``; flops start at ``initial_state`` (default all-X)."""
        compiled = self._compiled
        if len(sequence) and sequence.width != compiled.num_inputs:
            raise SimulationError(
                f"sequence width {sequence.width} != circuit inputs "
                f"{compiled.num_inputs}"
            )
        machine = self._backend.batch(self._program, 1)
        if initial_state is not None:
            if len(initial_state) != len(compiled.flop_pairs):
                raise SimulationError(
                    f"initial state has {len(initial_state)} flop values, "
                    f"circuit has {len(compiled.flop_pairs)} flops"
                )
            machine.set_state_scalar(initial_state)
        num_outputs = len(compiled.po_indices)
        po_trace: list[list[Ternary]] = []
        signal_trace: list[list[Ternary]] | None = [] if record_signals else None

        for vector in sequence:
            machine.load_inputs_broadcast(vector)
            machine.load_state()
            machine.eval()
            po_trace.append(
                [_scalar(*machine.observe_po(p)) for p in range(num_outputs)]
            )
            if signal_trace is not None:
                signal_trace.append(
                    [
                        _scalar(*machine.read_signal(i))
                        for i in range(compiled.num_signals)
                    ]
                )
            machine.capture_state()

        final_state = machine.export_state_scalar()
        return GoodTrace(
            po_values=po_trace, final_state=final_state, signal_values=signal_trace
        )


def _scalar(h: int, l: int) -> Ternary:
    if h:
        return ONE
    if l:
        return ZERO
    return X
