"""Bit-parallel parallel-fault simulation.

One input sequence, many faults: each bit slot of the ``(H, L)`` words is
an independent faulty machine.  The fault-free machine is simulated once
(scalar) and its primary output values drive the detection comparison:
fault ``f`` is detected at time ``t`` if some PO is binary in the
fault-free machine and takes the complementary binary value in ``f``'s
machine — the paper's detection criterion with both machines starting from
the all-unspecified state.

Faults are simulated in batches of ``batch_width`` slots; a batch stops as
soon as every slot has been detected (sequences detect most faults early,
so this early exit matters).

Two usage modes:

* :meth:`FaultSimulator.run` — one-shot, all-X initial state; used by the
  paper's procedures, whose detection semantics require a fresh start.
* :class:`FaultSimSession` — incremental: machine states persist across
  appended extensions, so test *generation* (which grows a sequence chunk
  by chunk) costs O(total length) instead of O(length²).
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.logic.values import ONE, X, ZERO, Ternary
from repro.sim.compiled import CompiledCircuit
from repro.sim.detection import FaultSimResult
from repro.sim.kernel import build_run_ops, eval_combinational, source_stem_patches
from repro.sim.logicsim import LogicSimulator

DEFAULT_BATCH_WIDTH = 192

# Per-flop 2-bit state codes used by packed machine states.
_STATE_X = 0
_STATE_ONE = 1
_STATE_ZERO = 2


class FaultSimulator:
    """Parallel-fault simulator bound to one circuit."""

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        batch_width: int = DEFAULT_BATCH_WIDTH,
    ) -> None:
        if batch_width < 1:
            raise SimulationError(f"batch width must be >= 1, got {batch_width}")
        if isinstance(circuit, CompiledCircuit):
            self._compiled = circuit
        else:
            self._compiled = CompiledCircuit(circuit)
        self._batch_width = batch_width
        self._logic = LogicSimulator(self._compiled)

    @property
    def compiled(self) -> CompiledCircuit:
        return self._compiled

    @property
    def batch_width(self) -> int:
        return self._batch_width

    # ------------------------------------------------------------------
    # One-shot API (all-X initial state)
    # ------------------------------------------------------------------
    def run(self, sequence: TestSequence, faults: list[Fault]) -> FaultSimResult:
        """Simulate ``faults`` under ``sequence``; return detection times."""
        result = FaultSimResult(
            sequence_length=len(sequence), total_faults=len(faults)
        )
        if len(sequence) == 0 or not faults:
            return result
        observation_plan = self._observation_plan(sequence, None)
        width = self._batch_width
        for start in range(0, len(faults), width):
            batch = faults[start : start + width]
            times, _ = self._run_batch(sequence, batch, observation_plan)
            for fault, time in zip(batch, times):
                if time is not None:
                    result.detection_time[fault] = time
        return result

    def detects(self, sequence: TestSequence, fault: Fault) -> bool:
        """Whether ``sequence`` detects the single fault ``fault``."""
        return self.run(sequence, [fault]).is_detected(fault)

    def session(self, faults: list[Fault]) -> "FaultSimSession":
        """Open an incremental session over ``faults`` (all start at all-X)."""
        return FaultSimSession(self, faults)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _observation_plan(
        self,
        sequence: TestSequence,
        good_initial_state: list[Ternary] | None,
    ) -> list[list[tuple[int, int, int]]]:
        """Per time step: (signal index, PO position, value) for binary POs."""
        good = self._logic.run(sequence, initial_state=good_initial_state)
        plan: list[list[tuple[int, int, int]]] = []
        po_indices = self._compiled.po_indices
        for t in range(len(sequence)):
            row: list[tuple[int, int, int]] = []
            for position, value in enumerate(good.po_values[t]):
                if value is ONE:
                    row.append((po_indices[position], position, 1))
                elif value is ZERO:
                    row.append((po_indices[position], position, 0))
            plan.append(row)
        return plan

    def _run_batch(
        self,
        sequence: TestSequence,
        batch: list[Fault],
        observation_plan: list[list[tuple[int, int, int]]],
        initial_states: list[int] | None = None,
        collect_final_states: bool = False,
    ) -> tuple[list[int | None], list[int] | None]:
        """Simulate one batch.

        ``initial_states``: per-slot packed flop states (2 bits per flop,
        see module constants); None means all-X.  Returns per-slot first
        detection times and, if requested, per-slot packed final states.
        """
        compiled = self._compiled
        plan = compiled.compile_plan(batch)
        run_ops = build_run_ops(compiled, plan)
        src_patches = source_stem_patches(compiled, plan)
        dff_patches = sorted(plan.dff_pin.items())
        po_patches = plan.po_pin

        n = compiled.num_signals
        H = [0] * n
        L = [0] * n
        pi_indices = compiled.pi_indices
        flop_pairs = compiled.flop_pairs
        batch_size = len(batch)
        full = (1 << batch_size) - 1
        pending = full
        detect_time: list[int | None] = [None] * batch_size

        if initial_states is None:
            state: list[tuple[int, int]] = [(0, 0)] * len(flop_pairs)
        else:
            state = self._unpack_states(initial_states, len(flop_pairs))

        for t, vector in enumerate(sequence):
            for position, pi_index in enumerate(pi_indices):
                if vector[position]:
                    H[pi_index] = full
                    L[pi_index] = 0
                else:
                    H[pi_index] = 0
                    L[pi_index] = full
            for position, (q_index, _) in enumerate(flop_pairs):
                H[q_index], L[q_index] = state[position]
            for signal_index, sa1, sa0 in src_patches:
                H[signal_index] = (H[signal_index] | sa1) & ~sa0
                L[signal_index] = (L[signal_index] | sa0) & ~sa1

            eval_combinational(run_ops, H, L)

            detected_now = 0
            for po_index, po_position, good_value in observation_plan[t]:
                h = H[po_index]
                l = L[po_index]
                patch = po_patches.get(po_position)
                if patch is not None:
                    sa1, sa0 = patch
                    h = (h | sa1) & ~sa0
                    l = (l | sa0) & ~sa1
                if good_value:
                    detected_now |= l
                else:
                    detected_now |= h
            detected_now &= pending
            if detected_now:
                slot = 0
                remaining = detected_now
                while remaining:
                    if remaining & 1:
                        detect_time[slot] = t
                    remaining >>= 1
                    slot += 1
                pending &= ~detected_now
                if pending == 0 and not collect_final_states:
                    break

            next_state: list[tuple[int, int]] = [
                (H[d_index], L[d_index]) for _, d_index in flop_pairs
            ]
            for position, (sa1, sa0) in dff_patches:
                h, l = next_state[position]
                next_state[position] = ((h | sa1) & ~sa0, (l | sa0) & ~sa1)
            state = next_state

        final_states = (
            self._pack_states(state, batch_size) if collect_final_states else None
        )
        return detect_time, final_states

    @staticmethod
    def _unpack_states(
        packed: list[int], num_flops: int
    ) -> list[tuple[int, int]]:
        """Per-slot packed states -> per-flop (H, L) word pairs."""
        state: list[tuple[int, int]] = []
        for flop in range(num_flops):
            shift = 2 * flop
            h = 0
            l = 0
            for slot, code_word in enumerate(packed):
                code = (code_word >> shift) & 3
                if code == _STATE_ONE:
                    h |= 1 << slot
                elif code == _STATE_ZERO:
                    l |= 1 << slot
            state.append((h, l))
        return state

    @staticmethod
    def _pack_states(
        state: list[tuple[int, int]], batch_size: int
    ) -> list[int]:
        """Per-flop (H, L) word pairs -> per-slot packed states."""
        packed = [0] * batch_size
        for flop, (h, l) in enumerate(state):
            shift = 2 * flop
            for slot in range(batch_size):
                bit = 1 << slot
                if h & bit:
                    packed[slot] |= _STATE_ONE << shift
                elif l & bit:
                    packed[slot] |= _STATE_ZERO << shift
        return packed


class FaultSimSession:
    """Incremental fault simulation across appended sequence extensions.

    Tracks, for every still-undetected fault, the packed state of its
    faulty machine, plus the fault-free machine state; :meth:`commit`
    advances everything by an extension, and :meth:`peek` evaluates an
    extension without advancing (the ATPG's candidate trials).
    """

    def __init__(self, simulator: FaultSimulator, faults: list[Fault]) -> None:
        self._simulator = simulator
        self._compiled = simulator.compiled
        self._num_flops = len(self._compiled.flop_pairs)
        self._good_state: list[Ternary] = [X] * self._num_flops
        self._fault_states: dict[Fault, int] = {fault: 0 for fault in faults}
        self._detection_time: dict[Fault, int] = {}
        self._elapsed = 0

    @property
    def elapsed(self) -> int:
        """Total vectors committed so far."""
        return self._elapsed

    @property
    def detection_time(self) -> dict[Fault, int]:
        """Global first-detection times of all faults detected so far."""
        return dict(self._detection_time)

    @property
    def remaining_faults(self) -> list[Fault]:
        return list(self._fault_states)

    @property
    def num_remaining(self) -> int:
        return len(self._fault_states)

    def peek(self, extension: TestSequence) -> int:
        """How many remaining faults ``extension`` would newly detect."""
        detected, _, _ = self._advance(extension, commit=False)
        return len(detected)

    def commit(self, extension: TestSequence) -> dict[Fault, int]:
        """Advance all machines by ``extension``; return new detections."""
        detected, final_states, good_final = self._advance(extension, commit=True)
        for fault, time in detected.items():
            self._detection_time[fault] = time
            del self._fault_states[fault]
        if final_states is not None:
            self._fault_states.update(final_states)
        if good_final is not None:
            self._good_state = good_final
        self._elapsed += len(extension)
        return detected

    def _advance(
        self, extension: TestSequence, commit: bool
    ) -> tuple[
        dict[Fault, int], dict[Fault, int] | None, list[Ternary] | None
    ]:
        if len(extension) == 0:
            return {}, ({} if commit else None), (list(self._good_state) if commit else None)
        simulator = self._simulator
        good = simulator._logic.run(
            extension, initial_state=self._good_state
        )
        observation_plan: list[list[tuple[int, int, int]]] = []
        po_indices = self._compiled.po_indices
        for t in range(len(extension)):
            row: list[tuple[int, int, int]] = []
            for position, value in enumerate(good.po_values[t]):
                if value is ONE:
                    row.append((po_indices[position], position, 1))
                elif value is ZERO:
                    row.append((po_indices[position], position, 0))
            observation_plan.append(row)

        detected: dict[Fault, int] = {}
        final_states: dict[Fault, int] | None = {} if commit else None
        faults = list(self._fault_states)
        width = simulator.batch_width
        for start in range(0, len(faults), width):
            batch = faults[start : start + width]
            initial = [self._fault_states[fault] for fault in batch]
            times, finals = simulator._run_batch(
                extension,
                batch,
                observation_plan,
                initial_states=initial,
                collect_final_states=commit,
            )
            for slot, (fault, time) in enumerate(zip(batch, times)):
                if time is not None:
                    detected[fault] = self._elapsed + time
                elif commit and finals is not None and final_states is not None:
                    final_states[fault] = finals[slot]
        good_final = good.final_state if commit else None
        return detected, final_states, good_final
