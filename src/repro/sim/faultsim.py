"""Bit-parallel parallel-fault simulation.

One input sequence, many faults: each bit slot of the ``(H, L)`` words is
an independent faulty machine.  The fault-free machine is simulated once
(scalar) and its primary output values drive the detection comparison:
fault ``f`` is detected at time ``t`` if some PO is binary in the
fault-free machine and takes the complementary binary value in ``f``'s
machine — the paper's detection criterion with both machines starting from
the all-unspecified state.

Faults are simulated in batches of ``batch_width`` slots; a batch stops as
soon as every slot has been detected (sequences detect most faults early,
so this early exit matters).

All slot storage and gate evaluation is delegated to a pluggable
:class:`~repro.sim.backend.SimBackend` (``backend="python"`` big-int
kernel by default, ``backend="numpy"`` for the vectorized engine); the
detection bookkeeping here is backend-independent, so detection times are
bit-identical across backends.

Two usage modes:

* :meth:`FaultSimulator.run` — one-shot, all-X initial state; used by the
  paper's procedures, whose detection semantics require a fresh start.
* :class:`FaultSimSession` — incremental: machine states persist across
  appended extensions, so test *generation* (which grows a sequence chunk
  by chunk) costs O(total length) instead of O(length²).
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.core.sequence import TestSequence
from repro.faults.model import Fault
from repro.logic.values import X, Ternary
from repro.sim.backend import (
    BroadcastStimulus,
    SimBackend,
    get_backend,
    resolve_auto,
    resolve_scan_mode,
    resolve_simulator_threads,
)
from repro.sim.compiled import CompiledCircuit
from repro.sim.detection import FaultSimResult
from repro.sim.logicsim import LogicSimulator

# The observation-plan machinery lives with the good-machine trace cache
# (:mod:`repro.sim.trace`); re-exported here for its historical importers.
from repro.sim.trace import (  # noqa: F401  (re-export)
    ObservationRow,
    build_observation_plan,
    get_trace_cache,
)

DEFAULT_BATCH_WIDTH = 192


class FaultSimulator:
    """Parallel-fault simulator bound to one circuit."""

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        batch_width: int = DEFAULT_BATCH_WIDTH,
        backend: str | SimBackend | None = None,
        scan_mode: str | None = None,
        threads: int = 1,
    ) -> None:
        if isinstance(circuit, CompiledCircuit):
            self._compiled = circuit
        else:
            self._compiled = CompiledCircuit(circuit)
        # "auto" adapts both the engine (by gate count) and, when the
        # big-int kernel wins, the batch width (down to its sweet spot).
        backend, batch_width = resolve_auto(self._compiled, backend, batch_width)
        self._backend = get_backend(self._compiled, backend)
        self._batch_width = self._backend.validate_batch_width(batch_width)
        # In-kernel thread lanes: the native backend splits every batch's
        # words axis across the kernel's persistent pool.  Warm the pool
        # here and clamp to what it actually granted; other engines run
        # serial regardless (detection times are identical either way).
        self._threads = resolve_simulator_threads(self._backend, threads)
        # The fault-free machine is a single scalar slot; the big-int
        # kernel is the fastest engine for that shape regardless of the
        # batch backend, and sharing it keeps observation plans trivially
        # identical across backends.  One-shot (all-X) traces come from
        # the session-wide cache — simulated once per (circuit, sequence)
        # no matter how many simulators or dispatches ask; the private
        # LogicSimulator serves sessions, whose good machine starts from
        # an evolving state.
        self._trace_cache = get_trace_cache(self._compiled)
        self._logic = LogicSimulator(self._compiled)
        self._scan_mode = resolve_scan_mode(scan_mode, paired=False)

    @property
    def compiled(self) -> CompiledCircuit:
        return self._compiled

    @property
    def backend(self) -> SimBackend:
        return self._backend

    @property
    def batch_width(self) -> int:
        return self._batch_width

    @property
    def scan_mode(self) -> str:
        return self._scan_mode

    @property
    def threads(self) -> int:
        """Kernel thread lanes each batch dispatch may use (1 = serial)."""
        return self._threads

    def close(self) -> None:
        """Release simulator resources.

        A no-op here; the process-sharded subclass
        (:class:`repro.sim.sharding.ShardedFaultSimulator`) retires its
        worker-pool context.  Present on the base class so consumers built
        against :func:`repro.sim.sharding.make_fault_simulator` can close
        unconditionally.
        """

    def __enter__(self) -> "FaultSimulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # One-shot API (all-X initial state)
    # ------------------------------------------------------------------
    def run(self, sequence: TestSequence, faults: list[Fault]) -> FaultSimResult:
        """Simulate ``faults`` under ``sequence``; return detection times."""
        result = FaultSimResult(
            sequence_length=len(sequence), total_faults=len(faults)
        )
        if len(sequence) == 0 or not faults:
            return result
        observation_plan = self._observation_plan(sequence, None)
        width = self._batch_width
        for start in range(0, len(faults), width):
            batch = faults[start : start + width]
            times, _ = self._run_batch(sequence, batch, observation_plan)
            for fault, time in zip(batch, times):
                if time is not None:
                    result.detection_time[fault] = time
        return result

    def detects(self, sequence: TestSequence, fault: Fault) -> bool:
        """Whether ``sequence`` detects the single fault ``fault``.

        Fast path: one single-slot batch whose inner loop short-circuits
        at the first detection, with no :class:`FaultSimResult` built.
        """
        if len(sequence) == 0:
            return False
        observation_plan = self._observation_plan(sequence, None)
        times, _ = self._run_batch(sequence, [fault], observation_plan)
        return times[0] is not None

    def session(self, faults: list[Fault]) -> "FaultSimSession":
        """Open an incremental session over ``faults`` (all start at all-X)."""
        return FaultSimSession(self, faults)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @property
    def trace_cache(self):
        """The session's :class:`~repro.sim.trace.GoodTraceCache`."""
        return self._trace_cache

    def _observation_plan(
        self,
        sequence: TestSequence,
        good_initial_state: list[Ternary] | None,
    ) -> list[ObservationRow]:
        if good_initial_state is None:
            # All-X start: the run-invariant trace, cached per session.
            return self._trace_cache.observation_plan(sequence)
        good = self._logic.run(sequence, initial_state=good_initial_state)
        return build_observation_plan(good)

    def _run_batch(
        self,
        sequence: TestSequence,
        batch: list[Fault],
        observation_plan: list[ObservationRow],
        initial_states: list[int] | None = None,
        collect_final_states: bool = False,
    ) -> tuple[list[int | None], list[int] | None]:
        """Simulate one batch.

        ``initial_states``: per-slot packed flop states (2 bits per flop,
        see :mod:`repro.sim.backend`); None means all-X.  Returns per-slot
        first detection times and, if requested, per-slot packed final
        states.
        """
        backend = self._backend
        program = backend.program(tuple(batch))
        machines = backend.batch(program, len(batch))
        machines.threads = self._threads
        if initial_states is not None:
            machines.set_state_packed(initial_states)

        # The whole per-step loop runs inside run_scan now; "stepped"
        # pins the base class's per-step reference loop (parity oracle
        # and escape hatch), "fused" takes the backend's whole-sequence
        # kernel.
        stimulus = BroadcastStimulus(sequence, len(batch))
        alive = (1 << len(batch)) - 1
        if self._scan_mode == "stepped":
            detect_time = SimBackend.run_scan(
                backend,
                None,
                machines,
                stimulus,
                observation_plan,
                alive,
                collect_final_states=collect_final_states,
            )
        else:
            detect_time = backend.run_scan(
                None,
                machines,
                stimulus,
                observation_plan,
                alive,
                collect_final_states=collect_final_states,
            )

        final_states = (
            machines.export_state_packed() if collect_final_states else None
        )
        return detect_time, final_states


class FaultSimSession:
    """Incremental fault simulation across appended sequence extensions.

    Tracks, for every still-undetected fault, the packed state of its
    faulty machine, plus the fault-free machine state; :meth:`commit`
    advances everything by an extension, and :meth:`peek` evaluates an
    extension without advancing (the ATPG's candidate trials).
    """

    def __init__(self, simulator: FaultSimulator, faults: list[Fault]) -> None:
        self._simulator = simulator
        self._compiled = simulator.compiled
        self._num_flops = len(self._compiled.flop_pairs)
        self._good_state: list[Ternary] = [X] * self._num_flops
        self._fault_states: dict[Fault, int] = {fault: 0 for fault in faults}
        self._detection_time: dict[Fault, int] = {}
        self._elapsed = 0

    @property
    def elapsed(self) -> int:
        """Total vectors committed so far."""
        return self._elapsed

    @property
    def detection_time(self) -> dict[Fault, int]:
        """Global first-detection times of all faults detected so far."""
        return dict(self._detection_time)

    @property
    def remaining_faults(self) -> list[Fault]:
        return list(self._fault_states)

    @property
    def num_remaining(self) -> int:
        return len(self._fault_states)

    def peek(self, extension: TestSequence) -> int:
        """How many remaining faults ``extension`` would newly detect."""
        detected, _, _ = self._advance(extension, commit=False)
        return len(detected)

    def commit(self, extension: TestSequence) -> dict[Fault, int]:
        """Advance all machines by ``extension``; return new detections."""
        detected, final_states, good_final = self._advance(extension, commit=True)
        for fault, time in detected.items():
            self._detection_time[fault] = time
            del self._fault_states[fault]
        if final_states is not None:
            self._fault_states.update(final_states)
        if good_final is not None:
            self._good_state = good_final
        self._elapsed += len(extension)
        return detected

    def _advance(
        self, extension: TestSequence, commit: bool
    ) -> tuple[
        dict[Fault, int], dict[Fault, int] | None, list[Ternary] | None
    ]:
        if len(extension) == 0:
            return {}, ({} if commit else None), (list(self._good_state) if commit else None)
        simulator = self._simulator
        good = simulator._logic.run(
            extension, initial_state=self._good_state
        )
        observation_plan = build_observation_plan(good)

        detected: dict[Fault, int] = {}
        final_states: dict[Fault, int] | None = {} if commit else None
        faults = list(self._fault_states)
        width = simulator.batch_width
        for start in range(0, len(faults), width):
            batch = faults[start : start + width]
            initial = [self._fault_states[fault] for fault in batch]
            times, finals = simulator._run_batch(
                extension,
                batch,
                observation_plan,
                initial_states=initial,
                collect_final_states=commit,
            )
            for slot, (fault, time) in enumerate(zip(batch, times)):
                if time is not None:
                    detected[fault] = self._elapsed + time
                elif commit and finals is not None and final_states is not None:
                    final_states[fault] = finals[slot]
        good_final = good.final_state if commit else None
        return detected, final_states, good_final
