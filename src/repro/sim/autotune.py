"""Startup autotuning: measure this machine, persist a profile, consult it.

The static execution heuristics are tuned for the *average* machine: the
``workers=`` factories fall back to serial only on single-core boxes
(:func:`~repro.sim.workerpool.single_core_machine`) and the batch widths
in :data:`repro.core.config._BACKEND_BATCH_WIDTHS` were measured on one
development host.  The committed smoke baselines show how wrong a static
threshold can be — ``workers=4`` runs at 0.32–0.87x *serial* throughput
on the 1-core CI runner — and the serving layer (:mod:`repro.serve`)
amortizes whatever the thresholds decide across every request it ever
handles, so it is worth a few hundred milliseconds at startup to measure
the actual machine instead of trusting defaults.

This module provides:

* :class:`MachineProfile` — a frozen record of what was measured: the
  recommended worker count, per-axis serial-vs-sharded speedups and the
  fastest batch widths, with a JSON round-trip and ``save``/``load``
  helpers (default location: ``~/.cache/repro/machine_profile.json``,
  overridden by ``REPRO_PROFILE``).
* :func:`calibrate` — run the measurement pass: time parallel-fault
  simulation and Procedure 2-shaped candidate scans serially, under the
  native kernel's in-process thread lanes, and process-sharded
  (``force_shard=True``, so the static single-core fallback cannot mask
  the measurement), and sweep a few batch widths per axis.  The best
  measured speedup picks the work-distribution tier
  (serial/threads/processes) recorded as ``parallel_mode``.  On a 1-core
  machine (per :func:`~repro.sim.workerpool.cpu_count`, which honours
  ``REPRO_ASSUME_CPUS``) the parallel measurements are skipped — neither
  tier can win without a second core — and the profile records serial
  execution directly.
* :func:`static_profile` — the no-measurement fallback mirroring today's
  static defaults, so consumers can always hold *some* profile.

Consumers: :class:`repro.core.session.Session` resolves ``workers=0``
("auto") through its profile and lets a calibrated serial verdict
override an explicit shard request, and the serve scheduler
(:mod:`repro.serve.scheduler`) plans every job's execution from the
profile instead of the static thresholds.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.errors import SimulationError
from repro.util.rng import SplitMix64
from repro.util.timing import Stopwatch

#: Profile format version; bumped when fields change incompatibly.  v2
#: added the work-distribution tier verdict (``parallel_mode``,
#: ``threads`` and the per-axis thread speedups); v1 profiles are
#: rejected on load, which makes :func:`profile_for_startup` recalibrate
#: rather than run with a verdict that predates the thread tier.
PROFILE_VERSION = 2

#: Environment override for the persisted profile location.
PROFILE_ENV = "REPRO_PROFILE"

#: Sharding must beat serial by this factor before a calibrated profile
#: recommends it — a 1.02x "win" is measurement noise, not a policy.
SHARD_SPEEDUP_THRESHOLD = 1.1

#: Batch-width sweep candidates per engine family, per axis.  The middle
#: entry of each triple is the static default from
#: ``repro.core.config._BACKEND_BATCH_WIDTHS``.
_WIDTH_CANDIDATES: dict[str, dict[str, tuple[int, ...]]] = {
    "python": {
        "fault": (96, 192, 384),
        "search": (16, 32, 64),
        "omission": (48, 96, 192),
    },
    "numpy": {
        "fault": (512, 1024, 2048),
        "search": (64, 128, 256),
        "omission": (128, 256, 512),
    },
}


def _width_family(backend: str) -> str:
    """The width-candidate family of a backend (native shares numpy's)."""
    return "python" if backend == "python" else "numpy"


@dataclass(frozen=True)
class MachineProfile:
    """What calibration learned about this machine.

    Attributes:
        cpu_count: usable cores at calibration time.
        workers: the recommended worker count (``1`` = serial execution).
        backend: the fastest available engine family measured/assumed.
        fault_batch_width: fastest measured parallel-fault batch width.
        search_batch_width: fastest measured window-search batch width.
        omission_batch_width: fastest measured omission batch width.
        parallel_mode: the measured work-distribution verdict —
            ``"serial"``, ``"threads"`` (in-kernel word-span lanes) or
            ``"processes"`` (the shard pool); ``"auto"`` when nothing
            was measured (static profiles), deferring to the factories'
            heuristics.
        threads: recommended in-kernel thread-lane count when
            ``parallel_mode == "threads"`` (``1`` otherwise).
        fault_shard_speedup: measured sharded/serial throughput ratio on
            the fault axis (``0.0`` = not measured).
        candidate_shard_speedup: same for Procedure 2's candidate axis.
        fault_thread_speedup: measured threaded/serial throughput ratio
            on the fault axis (``0.0`` = not measured).
        candidate_thread_speedup: same for the candidate axis.
        fault_scan_mode: measured fused-vs-stepped winner for fault-axis
            scans (``"fused"`` when unmeasured — the static default).
        candidate_scan_mode: same for the paired candidate axis.
        source: ``"static"`` (defaults, nothing measured) or
            ``"calibrated"`` (a real measurement pass ran).
        notes: human-readable trail of what calibration decided and why.
    """

    cpu_count: int
    workers: int
    backend: str
    fault_batch_width: int
    search_batch_width: int
    omission_batch_width: int
    parallel_mode: str = "auto"
    threads: int = 1
    fault_shard_speedup: float = 0.0
    candidate_shard_speedup: float = 0.0
    fault_thread_speedup: float = 0.0
    candidate_thread_speedup: float = 0.0
    fault_scan_mode: str = "fused"
    candidate_scan_mode: str = "fused"
    source: str = "static"
    notes: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    @property
    def calibrated(self) -> bool:
        return self.source == "calibrated"

    @property
    def use_sharding(self) -> bool:
        return self.workers > 1

    @property
    def force_shard(self) -> bool:
        """Bypass the static single-core serial fallback.

        True when a measurement proved a multi-worker tier wins here:
        the factories' :func:`~repro.sim.workerpool.single_core_machine`
        guess must not silently undo a measured verdict (the same flag
        forces the thread tier past the single-core clamp in
        :func:`~repro.sim.workerpool.resolve_work_distribution`).
        """
        return self.calibrated and self.workers > 1

    def resolve_execution(self, requested: int | None) -> tuple[str, int]:
        """The ``(parallel, workers)`` tier a consumer should run with.

        This is how a calibrated profile answers "threads×4": the
        measured serial/threads/processes crossover picks the tier, and
        :meth:`resolve_workers` the lane count.  An uncalibrated
        profile returns ``("auto", count)`` so the factories' static
        heuristics stay in charge.  Results are tier-independent by
        construction; this is purely a throughput decision.
        """
        count = self.resolve_workers(requested)
        if count <= 1:
            return ("serial", 1)
        mode = self.parallel_mode if self.calibrated else "auto"
        if mode == "serial":
            return ("serial", 1)
        if mode not in ("threads", "processes"):
            mode = "auto"
        return (mode, count)

    def resolve_workers(self, requested: int | None) -> int:
        """The worker count a consumer should actually use.

        ``None``/``0`` ("auto") resolve to the profile's recommendation.
        An explicit request is honoured, with one exception: a
        *calibrated* serial verdict overrides an explicit shard request —
        on this machine the measurement showed sharding losing to serial,
        so honouring ``workers=4`` would only burn cycles.  (Results are
        worker-count-independent by construction, so this is purely a
        throughput decision.)
        """
        if requested is None or requested == 0:
            return self.workers
        if requested > 1 and self.calibrated and self.workers == 1:
            return 1
        return requested

    def apply_scan_modes(self) -> None:
        """Install the measured per-axis scan modes process-wide.

        Only a *calibrated* profile installs anything: the static
        profile's ``"fused"`` defaults match
        :func:`repro.sim.backend.resolve_scan_mode`'s own fallback, so
        installing them would add nothing but shadow a later profile.
        """
        if not self.calibrated:
            return
        from repro.sim.backend import set_measured_scan_modes

        set_measured_scan_modes(
            fault=self.fault_scan_mode, paired=self.candidate_scan_mode
        )

    # ------------------------------------------------------------------
    # JSON round-trip and persistence
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        payload = asdict(self)
        payload["notes"] = list(self.notes)
        payload["version"] = PROFILE_VERSION
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "MachineProfile":
        data = dict(payload)
        version = data.pop("version", PROFILE_VERSION)
        if version != PROFILE_VERSION:
            raise SimulationError(
                f"unsupported machine-profile version {version!r} "
                f"(expected {PROFILE_VERSION})"
            )
        data["notes"] = tuple(data.get("notes", ()))
        return cls(**data)

    def save(self, path: str | Path | None = None) -> Path:
        """Write the profile as JSON; returns the path written."""
        target = Path(path) if path is not None else default_profile_path()
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: str | Path | None = None) -> "MachineProfile":
        target = Path(path) if path is not None else default_profile_path()
        return cls.from_json(json.loads(target.read_text(encoding="utf-8")))


def default_profile_path() -> Path:
    """Where profiles persist (``REPRO_PROFILE`` overrides)."""
    override = os.environ.get(PROFILE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "machine_profile.json"


def load_profile(path: str | Path | None = None) -> MachineProfile | None:
    """Load a persisted profile, or ``None`` when none exists/parses."""
    try:
        return MachineProfile.load(path)
    except FileNotFoundError:
        return None
    except (OSError, ValueError, TypeError, SimulationError):
        return None


def _preferred_backend() -> str:
    """The fastest engine family available in this process."""
    from repro.sim.backend import available_backends

    names = available_backends()
    for candidate in ("native", "numpy"):
        if candidate in names:
            return candidate
    return "python"


def static_profile() -> MachineProfile:
    """The defaults-only profile (mirrors today's static thresholds)."""
    from repro.sim.workerpool import cpu_count

    backend = _preferred_backend()
    family = _WIDTH_CANDIDATES[_width_family(backend)]
    return MachineProfile(
        cpu_count=cpu_count(),
        workers=1,
        backend=backend,
        fault_batch_width=family["fault"][1],
        search_batch_width=family["search"][1],
        omission_batch_width=family["omission"][1],
        source="static",
        notes=("static defaults; run `repro calibrate` to measure",),
    )


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def _time(fn) -> float:
    """Seconds one call takes (tests monkeypatch this for determinism)."""
    watch = Stopwatch().start()
    fn()
    return max(watch.stop(), 1e-9)


def _calibration_stimulus(num_inputs: int, length: int, seed: int):
    from repro.core.sequence import TestSequence

    rng = SplitMix64(seed)
    return TestSequence(
        [[rng.next_u64() & 1 for _ in range(num_inputs)] for _ in range(length)]
    )


def _measure_fault_axis(
    compiled,
    faults,
    stimulus,
    backend: str,
    widths: tuple[int, ...],
    workers: int,
    threads: int = 0,
) -> tuple[int, float, float, list[str]]:
    """Best fault batch width and the sharded/threaded serial speedups."""
    from repro.sim.sharding import make_fault_simulator

    notes: list[str] = []
    timings: dict[int, float] = {}
    for width in widths:
        simulator = make_fault_simulator(
            compiled, batch_width=width, backend=backend, workers=1
        )
        try:
            timings[width] = _time(lambda: simulator.run(stimulus, faults))
        finally:
            simulator.close()
    best_width = min(timings, key=timings.get)
    notes.append(
        "fault widths "
        + ", ".join(f"{w}:{timings[w] * 1e3:.0f}ms" for w in widths)
        + f" -> {best_width}"
    )

    speedup = 0.0
    if workers > 1:
        sharded = make_fault_simulator(
            compiled,
            batch_width=best_width,
            backend=backend,
            workers=workers,
            min_shard_faults=1,
            force_shard=True,
        )
        try:
            sharded_seconds = _time(lambda: sharded.run(stimulus, faults))
        finally:
            sharded.close()
        speedup = timings[best_width] / sharded_seconds
        notes.append(
            f"fault axis sharded x{workers}: {speedup:.2f}x serial throughput"
        )

    thread_speedup = 0.0
    if threads > 1:
        threaded = make_fault_simulator(
            compiled,
            batch_width=best_width,
            backend=backend,
            workers=threads,
            parallel="threads",
            force_shard=True,
        )
        try:
            if threaded.threads > 1:
                threaded_seconds = _time(lambda: threaded.run(stimulus, faults))
                thread_speedup = timings[best_width] / threaded_seconds
                notes.append(
                    f"fault axis threads x{threaded.threads}: "
                    f"{thread_speedup:.2f}x serial throughput"
                )
        finally:
            threaded.close()
    return best_width, speedup, thread_speedup, notes


def _measure_candidate_axis(
    compiled,
    fault,
    stimulus,
    backend: str,
    widths: tuple[int, ...],
    workers: int,
    chunking: str,
    threads: int = 0,
) -> tuple[int, float, float, list[str]]:
    """Best search batch width and the sharded/threaded serial speedups."""
    from repro.core.ops import ExpansionConfig
    from repro.sim.seqshard import make_sequence_simulator

    expansion = ExpansionConfig(repetitions=1)
    spans = [(0, end) for end in range(len(stimulus))]
    notes: list[str] = []
    timings: dict[int, float] = {}
    for width in widths:
        simulator = make_sequence_simulator(
            compiled, batch_width=width, backend=backend, workers=1
        )
        try:
            timings[width] = _time(
                lambda: simulator.detects_windows(fault, stimulus, spans, expansion)
            )
        finally:
            simulator.close()
    best_width = min(timings, key=timings.get)
    notes.append(
        "search widths "
        + ", ".join(f"{w}:{timings[w] * 1e3:.0f}ms" for w in widths)
        + f" -> {best_width}"
    )

    speedup = 0.0
    if workers > 1:
        sharded = make_sequence_simulator(
            compiled,
            batch_width=best_width,
            backend=backend,
            workers=workers,
            min_shard_candidates=1,
            chunking=chunking,
            force_shard=True,
        )
        try:
            sharded_seconds = _time(
                lambda: sharded.detects_windows(fault, stimulus, spans, expansion)
            )
        finally:
            sharded.close()
        speedup = timings[best_width] / sharded_seconds
        notes.append(
            f"candidate axis sharded x{workers}: {speedup:.2f}x serial throughput"
        )

    thread_speedup = 0.0
    if threads > 1:
        threaded = make_sequence_simulator(
            compiled,
            batch_width=best_width,
            backend=backend,
            workers=threads,
            parallel="threads",
            force_shard=True,
        )
        try:
            if threaded.threads > 1:
                threaded_seconds = _time(
                    lambda: threaded.detects_windows(
                        fault, stimulus, spans, expansion
                    )
                )
                thread_speedup = timings[best_width] / threaded_seconds
                notes.append(
                    f"candidate axis threads x{threaded.threads}: "
                    f"{thread_speedup:.2f}x serial throughput"
                )
        finally:
            threaded.close()
    return best_width, speedup, thread_speedup, notes


def _measure_scan_modes(
    compiled,
    faults,
    probe_fault,
    stimulus,
    backend: str,
    fault_width: int,
    search_width: int,
) -> tuple[str, str, list[str]]:
    """Fused-vs-stepped crossover per axis at the measured best widths.

    The fused whole-sequence kernels are bit-identical to the stepped
    calling sequence by contract, so this is purely a throughput
    measurement; a machine where the fused path loses (e.g. a pathological
    allocator making the chunk buffers expensive) gets the stepped loop
    back via the same profile that carries its batch widths.
    """
    from repro.core.ops import ExpansionConfig
    from repro.sim.faultsim import FaultSimulator
    from repro.sim.seqsim import SequenceBatchSimulator

    notes: list[str] = []
    fault_timings: dict[str, float] = {}
    for mode in ("fused", "stepped"):
        simulator = FaultSimulator(
            compiled, batch_width=fault_width, backend=backend, scan_mode=mode
        )
        fault_timings[mode] = _time(lambda: simulator.run(stimulus, faults))
    fault_mode = min(fault_timings, key=fault_timings.get)
    notes.append(
        "fault scan "
        + ", ".join(f"{m}:{fault_timings[m] * 1e3:.0f}ms" for m in fault_timings)
        + f" -> {fault_mode}"
    )

    expansion = ExpansionConfig(repetitions=1)
    spans = [(0, end) for end in range(len(stimulus))]
    candidate_timings: dict[str, float] = {}
    for mode in ("fused", "stepped"):
        simulator = SequenceBatchSimulator(
            compiled, batch_width=search_width, backend=backend, scan_mode=mode
        )
        candidate_timings[mode] = _time(
            lambda: simulator.detects_windows(
                probe_fault, stimulus, spans, expansion
            )
        )
    candidate_mode = min(candidate_timings, key=candidate_timings.get)
    notes.append(
        "candidate scan "
        + ", ".join(
            f"{m}:{candidate_timings[m] * 1e3:.0f}ms" for m in candidate_timings
        )
        + f" -> {candidate_mode}"
    )
    return fault_mode, candidate_mode, notes


def calibrate(
    quick: bool = True,
    circuit_name: str | None = None,
    workers: int | None = None,
    seed: int = 1999,
) -> MachineProfile:
    """Measure this machine and return a calibrated profile.

    ``quick=True`` (the default, and what service startup uses) measures
    on a small catalog circuit with a short stimulus — a few hundred
    milliseconds; ``quick=False`` uses a larger circuit and stimulus for
    stabler crossovers.  ``workers`` pins the sharded measurement's
    worker count (default: one per CPU, capped at 4 — the committed
    bench configurations).  Measurement is throughput-only: detection
    results are backend-, width- and worker-independent by construction,
    so calibration never changes any answer, only how fast it arrives.
    """
    from repro.circuits.catalog import load_circuit
    from repro.faults.universe import FaultUniverse
    from repro.sim.compiled import CompiledCircuit
    from repro.sim.scanplan import DEFAULT_CHUNKING
    from repro.sim.workerpool import cpu_count

    cpus = cpu_count()
    backend = _preferred_backend()
    family = _WIDTH_CANDIDATES[_width_family(backend)]
    notes: list[str] = [f"cpus={cpus} backend={backend}"]

    if circuit_name is None:
        circuit_name = "syn298" if quick else "syn1423"
    stimulus_length = 48 if quick else 192

    shard_workers = 0
    thread_workers = 0
    if cpus > 1:
        shard_workers = workers if workers and workers > 1 else min(cpus, 4)
        from repro.sim.native_build import native_threads_available

        if backend == "native" and native_threads_available():
            thread_workers = shard_workers
        elif backend == "native":
            notes.append("native kernel is serial-only: thread tier skipped")
    else:
        notes.append("1 core: parallel tiers cannot win, measuring serial only")

    compiled = CompiledCircuit(load_circuit(circuit_name))
    universe = FaultUniverse(compiled.circuit)
    faults = list(universe.faults())
    stimulus = _calibration_stimulus(
        compiled.num_inputs, stimulus_length, seed
    )
    notes.append(
        f"workload {circuit_name}: {len(faults)} faults, "
        f"{stimulus_length}-vector stimulus"
    )

    fault_width, fault_speedup, fault_thread_speedup, fault_notes = (
        _measure_fault_axis(
            compiled,
            faults,
            stimulus,
            backend,
            family["fault"],
            shard_workers,
            threads=thread_workers,
        )
    )
    notes.extend(fault_notes)

    probe_fault = faults[len(faults) // 2]
    (
        search_width,
        candidate_speedup,
        candidate_thread_speedup,
        search_notes,
    ) = _measure_candidate_axis(
        compiled,
        probe_fault,
        stimulus,
        backend,
        family["search"],
        shard_workers,
        DEFAULT_CHUNKING,
        threads=thread_workers,
    )
    notes.extend(search_notes)

    fault_scan_mode, candidate_scan_mode, scan_notes = _measure_scan_modes(
        compiled,
        faults,
        probe_fault,
        stimulus,
        backend,
        fault_width,
        search_width,
    )
    notes.extend(scan_notes)

    # Tier verdict: the best measured speedup picks serial vs threads vs
    # processes, with the same noise threshold sharding always had.  On a
    # tie threads win — same throughput without the process pool's
    # memory and dispatch overheads.
    best_shard = max(fault_speedup, candidate_speedup)
    best_thread = max(fault_thread_speedup, candidate_thread_speedup)
    parallel_mode = "serial"
    recommended = 1
    recommended_threads = 1
    if best_thread >= SHARD_SPEEDUP_THRESHOLD and best_thread >= best_shard:
        parallel_mode = "threads"
        recommended = thread_workers
        recommended_threads = thread_workers
        notes.append(
            f"threads win ({best_thread:.2f}x >= {SHARD_SPEEDUP_THRESHOLD}x, "
            f">= sharded {best_shard:.2f}x): threads x{recommended}"
        )
    elif shard_workers > 1 and best_shard >= SHARD_SPEEDUP_THRESHOLD:
        parallel_mode = "processes"
        recommended = shard_workers
        notes.append(
            f"sharding wins ({best_shard:.2f}x >= "
            f"{SHARD_SPEEDUP_THRESHOLD}x): workers={recommended}"
        )
    elif shard_workers > 1:
        notes.append(
            f"parallel tiers lose (threads {best_thread:.2f}x, sharded "
            f"{best_shard:.2f}x < {SHARD_SPEEDUP_THRESHOLD}x): serial execution"
        )

    # The omission axis shares the candidate pipeline; scale its static
    # default by the same factor the search sweep preferred.
    statics = _WIDTH_CANDIDATES[_width_family(backend)]
    omission_width = statics["omission"][1] * search_width // statics["search"][1]

    return MachineProfile(
        cpu_count=cpus,
        workers=recommended,
        backend=backend,
        fault_batch_width=fault_width,
        search_batch_width=search_width,
        omission_batch_width=max(1, omission_width),
        parallel_mode=parallel_mode,
        threads=recommended_threads,
        fault_shard_speedup=round(fault_speedup, 3),
        candidate_shard_speedup=round(candidate_speedup, 3),
        fault_thread_speedup=round(fault_thread_speedup, 3),
        candidate_thread_speedup=round(candidate_thread_speedup, 3),
        fault_scan_mode=fault_scan_mode,
        candidate_scan_mode=candidate_scan_mode,
        source="calibrated",
        notes=tuple(notes),
    )


def profile_for_startup(
    path: str | Path | None = None,
    quick: bool = True,
    refresh: bool = False,
    save: bool = True,
) -> MachineProfile:
    """The profile a long-lived process should start from.

    Loads the persisted profile when present (unless ``refresh``),
    otherwise calibrates and (by default) persists the result.  Falls
    back to :func:`static_profile` if calibration itself fails — a
    serving process must come up even on a machine where the measurement
    pass cannot run.
    """
    if not refresh:
        existing = load_profile(path)
        if existing is not None:
            return existing
    try:
        profile = calibrate(quick=quick)
    except Exception:  # pragma: no cover - calibration is best-effort
        return static_profile()
    if save:
        try:
            profile.save(path)
        except OSError:  # pragma: no cover - read-only home, etc.
            profile = replace(
                profile, notes=profile.notes + ("profile not persisted",)
            )
    return profile
