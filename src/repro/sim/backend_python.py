"""The reference ``python`` backend: arbitrary-precision big-int words.

One Python integer per signal per rail; a batch of ``W`` slots lives in
the low ``W`` bits.  Evaluation is the historical flat kernel of
:mod:`repro.sim.kernel` — the fastest correct thing CPython does without
third-party dependencies, and the semantic reference the vectorized
backends are tested against.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.faults.model import Fault
from repro.logic.values import ONE, ZERO, Ternary
from repro.sim.backend import (
    SimBackend,
    SimBatch,
    SimProgram,
    pack_states,
    unpack_states,
)
from repro.sim.kernel import (
    RunOp,
    build_run_ops,
    detect_pair_mask,
    eval_combinational,
    source_stem_patches,
)


class PythonProgram(SimProgram):
    """Run-ready op list plus the non-gate patch sets of one fault batch."""

    __slots__ = ("run_ops", "src_patches", "dff_patches", "po_patches")

    def __init__(
        self,
        key: tuple[Fault, ...] | None,
        run_ops: list[RunOp],
        src_patches: list[tuple[int, int, int]],
        dff_patches: list[tuple[int, tuple[int, int]]],
        po_patches: dict[int, tuple[int, int]],
    ) -> None:
        super().__init__(key)
        self.run_ops = run_ops
        self.src_patches = src_patches
        self.dff_patches = dff_patches
        self.po_patches = po_patches


class PythonBatch(SimBatch):
    """Batch state over Python-int words."""

    __slots__ = (
        "_compiled",
        "_program",
        "_batch_size",
        "_full",
        "_H",
        "_L",
        "_state",
    )

    def __init__(
        self, compiled, program: PythonProgram, batch_size: int
    ) -> None:
        self._compiled = compiled
        self._program = program
        self._batch_size = batch_size
        self._full = (1 << batch_size) - 1
        n = compiled.num_signals
        self._H: list[int] = [0] * n
        self._L: list[int] = [0] * n
        self._state: list[tuple[int, int]] = [(0, 0)] * len(compiled.flop_pairs)

    def load_inputs_broadcast(self, bits: Sequence[int]) -> None:
        H = self._H
        L = self._L
        full = self._full
        for position, pi_index in enumerate(self._compiled.pi_indices):
            if bits[position]:
                H[pi_index] = full
                L[pi_index] = 0
            else:
                H[pi_index] = 0
                L[pi_index] = full

    def load_inputs_packed(
        self, ones: Sequence[int], zeros: Sequence[int]
    ) -> None:
        H = self._H
        L = self._L
        for position, pi_index in enumerate(self._compiled.pi_indices):
            H[pi_index] = ones[position]
            L[pi_index] = zeros[position]

    def load_state(self) -> None:
        H = self._H
        L = self._L
        for position, (q_index, _) in enumerate(self._compiled.flop_pairs):
            H[q_index], L[q_index] = self._state[position]

    def apply_source_patches(self) -> None:
        H = self._H
        L = self._L
        for signal_index, sa1, sa0 in self._program.src_patches:
            H[signal_index] = (H[signal_index] | sa1) & ~sa0
            L[signal_index] = (L[signal_index] | sa0) & ~sa1

    def eval(self) -> None:
        eval_combinational(self._program.run_ops, self._H, self._L)

    def observe_po(self, position: int) -> tuple[int, int]:
        po_index = self._compiled.po_indices[position]
        h = self._H[po_index]
        l = self._L[po_index]
        patch = self._program.po_patches.get(position)
        if patch is not None:
            sa1, sa0 = patch
            h = (h | sa1) & ~sa0
            l = (l | sa0) & ~sa1
        return h, l

    def detect_mask(self, observations: Sequence[tuple[int, int]]) -> int:
        detected = 0
        for po_position, good_value in observations:
            h, l = self.observe_po(po_position)
            if good_value:
                detected |= l
            else:
                detected |= h
        return detected & self._full

    def capture_state(self) -> None:
        H = self._H
        L = self._L
        next_state = [(H[d], L[d]) for _, d in self._compiled.flop_pairs]
        for position, (sa1, sa0) in self._program.dff_patches:
            h, l = next_state[position]
            next_state[position] = ((h | sa1) & ~sa0, (l | sa0) & ~sa1)
        self._state = next_state

    def set_state_packed(self, packed: Sequence[int]) -> None:
        self._state = unpack_states(packed, len(self._compiled.flop_pairs))

    def export_state_packed(self) -> list[int]:
        return pack_states(self._state, self._batch_size)

    def set_state_scalar(self, values: Sequence[Ternary]) -> None:
        full = self._full
        self._state = [
            (full, 0) if value is ONE else (0, full) if value is ZERO else (0, 0)
            for value in values
        ]

    def read_signal(self, index: int) -> tuple[int, int]:
        return self._H[index], self._L[index]

    def export_state_words(self) -> list[tuple[int, int]]:
        return list(self._state)


class PythonBackend(SimBackend):
    """Backend over the pure-Python big-int kernel (always available)."""

    name = "python"
    word_width = None

    def _compile_program(
        self, faults: tuple[Fault, ...] | None
    ) -> PythonProgram:
        compiled = self._compiled
        plan = None if faults is None else compiled.compile_plan(list(faults))
        run_ops = build_run_ops(compiled, plan)
        src_patches = source_stem_patches(compiled, plan)
        dff_patches = sorted(plan.dff_pin.items()) if plan is not None else []
        po_patches = dict(plan.po_pin) if plan is not None else {}
        return PythonProgram(faults, run_ops, src_patches, dff_patches, po_patches)

    def batch(self, program: SimProgram, batch_size: int) -> PythonBatch:
        assert isinstance(program, PythonProgram)
        return PythonBatch(self._compiled, program, batch_size)

    def detect_step(
        self, good: SimBatch, faulty: SimBatch, alive_mask: int
    ) -> int:
        """Reference paired-batch detection over the big-int rails.

        Semantically identical to the :class:`SimBackend` default, but
        reads the rails directly through the flat kernel loop instead of
        one ``observe_po`` round trip per PO.
        """
        if alive_mask == 0:
            return 0
        assert isinstance(good, PythonBatch) and isinstance(faulty, PythonBatch)
        return (
            detect_pair_mask(
                self._compiled.po_indices,
                good._H,
                good._L,
                faulty._H,
                faulty._L,
                good._program.po_patches,
                faulty._program.po_patches,
            )
            & alive_mask
        )
