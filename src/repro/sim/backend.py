"""Pluggable simulation backend layer.

Every bit-parallel engine in this package (fault-free logic simulation,
parallel-fault simulation, parallel-sequence simulation) runs the same
abstract loop over a compiled circuit:

1. **compile** — lower an :class:`~repro.sim.compiled.InjectionPlan` into a
   backend-native combinational program (:meth:`SimBackend.program`);
2. **load inputs** — write one time step's primary-input values into every
   slot of the batch;
3. **eval combinational** — run the program over the ``(H, L)`` words;
4. **observe POs** — read primary outputs (with per-PO fault patches) for
   the detection comparison;
5. **advance state** — latch the flop ``D`` values (with per-flop fault
   patches) as the next cycle's state.

:class:`SimBackend` is the seam between that loop and the data
representation.  The ``python`` backend keeps the historical
arbitrary-precision-integer kernel (one big int per signal per rail); the
``numpy`` backend stores the rails as contiguous ``uint64`` arrays and
evaluates a levelized, opcode-grouped schedule with vectorized passes; the
``native`` backend keeps the numpy layout but drives the hot loops from a
lazily compiled C kernel (:mod:`repro.sim.backend_native`).
All observe the **(H, L) encoding contract** of
:mod:`repro.logic.encoding`: per slot, ``H`` set means 1, ``L`` set means
0, neither means X, and both set never occurs.

All slot masks crossing the backend boundary (detection masks, packed flop
states, packed input columns) are plain Python integers, so the simulators'
bookkeeping is backend-independent and results are bit-identical across
backends by construction.

Backends also memoize compiled programs per fault batch
(:meth:`SimBackend.program` keeps a small LRU), which makes the thousands
of repeated Procedure 2 trials against the same fault free of recompilation
cost.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Sequence

from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.logic.values import ONE, X, ZERO, Ternary
from repro.sim.compiled import CompiledCircuit

#: Default backend used when a consumer does not select one explicitly.
DEFAULT_BACKEND = "python"

#: Env escape hatch forcing every simulator's scan mode ("fused" or
#: "stepped"); beats the measured default, loses to an explicit
#: ``scan_mode=`` argument.  CI's fallback lane runs the whole suite
#: under ``REPRO_SCAN_MODE=stepped``.
SCAN_MODE_ENV = "REPRO_SCAN_MODE"

#: Scan modes a simulator accepts: ``"fused"`` dispatches whole-sequence
#: :meth:`SimBackend.run_scan` kernels, ``"stepped"`` forces the per-step
#: reference loop (the default implementation below), ``"auto"``/``None``
#: resolves via :func:`resolve_scan_mode`.
SCAN_MODES = ("auto", "fused", "stepped")

#: Selector name for adaptive per-circuit/per-batch backend resolution.
AUTO_BACKEND = "auto"

#: ``backend="auto"`` picks the vectorized engine at or above this gate
#: count; below it the big-int kernel's lower per-pass overhead wins.
AUTO_GATE_THRESHOLD = 1000

#: Crossover for the *paired-batch* candidate axis
#: (:class:`~repro.sim.seqsim.SequenceBatchSimulator`).  It runs two
#: machines per slot at moderate widths and is dispatch-bound on the
#: vectorized engine, so numpy only wins on much larger circuits than on
#: the fault axis (`benchmarks/bench_seqsim.py`: python leads through
#: syn5378's 2.8k gates, numpy leads at syn35932's 16k).
AUTO_PAIRED_GATE_THRESHOLD = 8000

#: Crossovers for the compiled C kernel (``native``), measured the same
#: way (`benchmarks/bench_faultsim.py` / `bench_seqsim.py` on the
#: catalog circuits).  The native engine removes all interpreter and
#: numpy dispatch overhead, so it overtakes both pure-Python engines
#: almost immediately: by syn298 (119 gates) it already leads both axes,
#: and the gap widens monotonically with circuit size.  The thresholds
#: below sit under the smallest catalog circuit; only toy circuits
#: (pedagogical examples, unit-test fixtures) stay on the big-int
#: kernel, where build/ctypes overhead is not worth amortizing.
AUTO_NATIVE_GATE_THRESHOLD = 64
AUTO_NATIVE_PAIRED_GATE_THRESHOLD = 64

#: Batch widths ``"auto"`` clamps to when it resolves the big-int kernel:
#: python throughput peaks near these slot counts (fault axis / paired
#: candidate axis), so an auto consumer handed numpy-tuned wide batches
#: narrows them instead of dragging huge ints past the sweet spot.
AUTO_PYTHON_FAULT_WIDTH = 192
AUTO_PYTHON_PAIRED_WIDTH = 96

#: Max entries kept in each backend's per-fault-batch program cache.
PROGRAM_CACHE_SIZE = 256

#: Rough per-circuit memory budget for cached programs, in signal units
#: (a compiled program's size scales with the circuit's signal count, for
#: both backends).  Shrinks the entry cap on large circuits so a sweep of
#: one-shot wide batches cannot pin hundreds of megabyte-scale op lists.
PROGRAM_CACHE_SIGNAL_BUDGET = 4_000_000

# Per-flop 2-bit state codes used by packed machine states (the
# backend-independent interchange format of FaultSimSession).
STATE_X = 0
STATE_ONE = 1
STATE_ZERO = 2


# ----------------------------------------------------------------------
# Scan-mode resolution
# ----------------------------------------------------------------------
#: Measured per-axis scan-mode overrides installed by an autotune
#: machine profile (:mod:`repro.sim.autotune`): keys ``False`` (fault
#: axis) / ``True`` (paired candidate axis) map to ``"fused"`` or
#: ``"stepped"``.  Empty means the static default ("fused" wherever a
#: backend provides a fused kernel; the per-step default is used by
#: backends without one either way).
_MEASURED_SCAN_MODES: dict[bool, str] = {}


def set_measured_scan_modes(
    fault: str | None = None, paired: str | None = None
) -> None:
    """Install (or clear, with ``None``) measured per-axis scan modes."""
    for key, mode in ((False, fault), (True, paired)):
        if mode is None:
            _MEASURED_SCAN_MODES.pop(key, None)
        elif mode not in ("fused", "stepped"):
            raise SimulationError(
                f"unknown scan mode {mode!r}; expected 'fused' or 'stepped'"
            )
        else:
            _MEASURED_SCAN_MODES[key] = mode


def resolve_scan_mode(scan_mode: str | None = None, paired: bool = False) -> str:
    """Resolve a simulator's ``scan_mode`` selector to fused/stepped.

    Precedence: an explicit ``"fused"``/``"stepped"`` argument wins;
    then the :data:`SCAN_MODE_ENV` escape hatch (read at resolution
    time, so the CI fallback lane covers every construction site); then
    the per-axis measured crossover a machine profile installed via
    :func:`set_measured_scan_modes`; then ``"fused"`` — the fused path
    is bit-identical by contract and strictly fewer dispatches, so it
    is the static default, and backends without a fused kernel run the
    per-step reference loop under either name.
    """
    if scan_mode is not None and scan_mode != "auto":
        if scan_mode not in SCAN_MODES:
            raise SimulationError(
                f"unknown scan mode {scan_mode!r}; expected one of {SCAN_MODES}"
            )
        return scan_mode
    env = os.environ.get(SCAN_MODE_ENV)
    if env:
        if env not in ("fused", "stepped"):
            raise SimulationError(
                f"{SCAN_MODE_ENV}={env!r} is not a scan mode; "
                "expected 'fused' or 'stepped'"
            )
        return env
    measured = _MEASURED_SCAN_MODES.get(paired)
    if measured is not None:
        return measured
    return "fused"


def resolve_simulator_threads(backend: "SimBackend", threads: int) -> int:
    """Clamp a simulator's requested kernel thread lanes to reality.

    Only the native backend executes thread lanes (it splits each
    batch's words axis across the kernel's persistent pthread pool);
    for it, the pool is warmed here and the request clamped to the size
    it granted.  Every other backend — and serial-only native builds —
    resolves to ``1``.  Detection times are bit-identical at any count,
    so clamping is purely a performance decision, never an error.
    """
    count = int(threads)
    if count <= 1:
        return 1
    if getattr(backend, "name", None) != "native":
        return 1
    from repro.sim.native_build import ensure_thread_pool

    # The pool never shrinks, so a smaller request than the current pool
    # still runs on exactly `count` lanes (the extra workers idle).
    return max(1, min(count, ensure_thread_pool(count)))


# ----------------------------------------------------------------------
# Dispatch accounting
# ----------------------------------------------------------------------
#: Process-wide backend-boundary dispatch counters.  ``native_ffi_calls``
#: counts actual ctypes crossings into the C kernel; ``scan_calls`` /
#: ``scan_steps`` count whole-sequence scans and the time steps they
#: simulated.  Sharded workers count in their own processes; the parent's
#: counters cover work it ran locally.  Concurrent serving lanes all
#: record into this one table, so updates take the lock below — a plain
#: dict read-modify-write would silently drop counts under contention.
_DISPATCH_COUNTERS: dict[str, int] = {}
_DISPATCH_LOCK = threading.Lock()


def record_dispatch(kind: str, count: int = 1) -> None:
    """Add ``count`` dispatches of ``kind`` to the process counters."""
    with _DISPATCH_LOCK:
        _DISPATCH_COUNTERS[kind] = _DISPATCH_COUNTERS.get(kind, 0) + count


def dispatch_counters() -> dict[str, int]:
    """A snapshot of the process dispatch counters."""
    with _DISPATCH_LOCK:
        return dict(_DISPATCH_COUNTERS)


def reset_dispatch_counters() -> None:
    """Zero the process dispatch counters (benchmark bracketing)."""
    with _DISPATCH_LOCK:
        _DISPATCH_COUNTERS.clear()


class BroadcastStimulus:
    """Whole-sequence fault-axis stimulus: one scalar vector per step.

    The :meth:`SimBackend.run_scan` stimulus for the fault axis — every
    slot of the (single faulty) batch receives the same per-step primary
    input vector, broadcast across slots.  ``bits()`` exposes the whole
    sequence as a ``(num_steps, num_inputs)`` uint8 array for array
    backends (built lazily; requires numpy).
    """

    __slots__ = ("sequence", "num_steps", "num_slots", "_bits")

    def __init__(self, sequence, num_slots: int) -> None:
        self.sequence = sequence
        self.num_steps = len(sequence)
        self.num_slots = num_slots
        self._bits = None

    def load_step(self, t: int, good, faulty) -> None:
        faulty.load_inputs_broadcast(self.sequence[t])

    def bits(self):
        import numpy as np

        if self._bits is None:
            self._bits = np.asarray(self.sequence.vectors(), dtype=np.uint8)
        return self._bits


def unpack_states(packed: Sequence[int], num_flops: int) -> list[tuple[int, int]]:
    """Per-slot packed states -> per-flop ``(H, L)`` Python-int word pairs."""
    state: list[tuple[int, int]] = []
    for flop in range(num_flops):
        shift = 2 * flop
        h = 0
        l = 0
        for slot, code_word in enumerate(packed):
            code = (code_word >> shift) & 3
            if code == STATE_ONE:
                h |= 1 << slot
            elif code == STATE_ZERO:
                l |= 1 << slot
        state.append((h, l))
    return state


def pack_states(state: Sequence[tuple[int, int]], batch_size: int) -> list[int]:
    """Per-flop ``(H, L)`` word pairs -> per-slot packed states."""
    packed = [0] * batch_size
    for flop, (h, l) in enumerate(state):
        shift = 2 * flop
        for slot in range(batch_size):
            bit = 1 << slot
            if h & bit:
                packed[slot] |= STATE_ONE << shift
            elif l & bit:
                packed[slot] |= STATE_ZERO << shift
    return packed


class SimProgram:
    """A backend-compiled combinational program for one fault batch.

    Opaque to the simulators: they obtain one from
    :meth:`SimBackend.program` and hand it back to
    :meth:`SimBackend.batch`.  ``key`` is the fault tuple the program was
    compiled for (``None`` = fault-free).
    """

    __slots__ = ("key",)

    def __init__(self, key: tuple[Fault, ...] | None) -> None:
        self.key = key


class SimBatch(ABC):
    """One in-flight batch of slot machines over a compiled program.

    The per-time-step calling sequence is::

        load_inputs_broadcast(...)   # or load_inputs_packed(...)
        load_state()
        apply_source_patches()
        eval()
        ... observe_po() / detect_mask() ...
        capture_state()

    State starts all-X; :meth:`set_state_packed` /
    :meth:`set_state_scalar` override it before the first step.
    """

    #: Thread lanes the backend may split this batch's ``words`` axis
    #: across for kernel calls (:meth:`eval`, fused scans, paired
    #: detection).  Simulators running with ``parallel="threads"`` set
    #: it after opening the batch; ``1`` means serial.  Only the native
    #: backend consumes it — results are bit-identical at any value, so
    #: other engines simply ignore it.
    threads: int = 1

    @abstractmethod
    def load_inputs_broadcast(self, bits: Sequence[int]) -> None:
        """Drive each PI with one scalar bit, replicated into every slot."""

    @abstractmethod
    def load_inputs_packed(self, ones: Sequence[int], zeros: Sequence[int]) -> None:
        """Drive each PI with per-slot values given as (ones, zeros) masks."""

    def load_inputs_words(self, ones_words, zeros_words) -> None:
        """Drive each PI from ``(num_pis, words)`` little-endian ``uint64``
        matrices (row ``p`` packs PI ``p``'s per-slot values, 64 slots per
        word).

        This is the zero-copy ingestion path for NumPy-packed candidate
        columns (:mod:`repro.sim.seqsim`).  The default converts each row
        back to a Python-int mask and defers to
        :meth:`load_inputs_packed`; array-native backends override it with
        a direct scatter.
        """
        self.load_inputs_packed(
            [int.from_bytes(row.tobytes(), "little") for row in ones_words],
            [int.from_bytes(row.tobytes(), "little") for row in zeros_words],
        )

    @abstractmethod
    def load_state(self) -> None:
        """Write the current flop state into the flop-output signals."""

    @abstractmethod
    def apply_source_patches(self) -> None:
        """Force stuck values on faulted PI / flop-output stems."""

    @abstractmethod
    def eval(self) -> None:
        """Evaluate the combinational program over the current signals."""

    @abstractmethod
    def observe_po(self, position: int) -> tuple[int, int]:
        """The ``(H, L)`` Python-int masks of PO ``position`` (patched)."""

    @abstractmethod
    def detect_mask(self, observations: Sequence[tuple[int, int]]) -> int:
        """Slots whose PO response contradicts the fault-free machine.

        ``observations`` holds ``(po_position, good_value)`` pairs for the
        POs that are binary in the fault-free machine this time step.
        """

    @abstractmethod
    def capture_state(self) -> None:
        """Latch the flop ``D`` values (with flop patches) as next state."""

    @abstractmethod
    def set_state_packed(self, packed: Sequence[int]) -> None:
        """Set per-slot flop states from packed 2-bit-per-flop codes."""

    @abstractmethod
    def export_state_packed(self) -> list[int]:
        """Current flop states as per-slot packed 2-bit-per-flop codes."""

    @abstractmethod
    def set_state_scalar(self, values: Sequence[Ternary]) -> None:
        """Set every slot's flop state from one scalar ternary vector."""

    @abstractmethod
    def read_signal(self, index: int) -> tuple[int, int]:
        """The raw ``(H, L)`` Python-int masks of signal ``index``."""

    def export_state_scalar(self) -> list[Ternary]:
        """Slot 0's flop state as scalar ternary values."""
        values: list[Ternary] = []
        for h, l in self.export_state_words():
            if h & 1:
                values.append(ONE)
            elif l & 1:
                values.append(ZERO)
            else:
                values.append(X)
        return values

    @abstractmethod
    def export_state_words(self) -> list[tuple[int, int]]:
        """Current flop states as per-flop ``(H, L)`` Python-int pairs."""


class SimBackend(ABC):
    """A simulation engine implementation bound to one compiled circuit."""

    #: Registry name ("python", "numpy", ...).
    name: str = "abstract"
    #: Slot granularity of the backend's words: batches are stored in
    #: units of this many slots.  ``None`` means arbitrary precision (the
    #: big-int backend); the numpy backend uses 64 and rounds storage up
    #: to whole words.
    word_width: int | None = None

    def __init__(self, compiled: CompiledCircuit) -> None:
        self._compiled = compiled
        self._programs: OrderedDict[tuple[Fault, ...] | None, SimProgram] = (
            OrderedDict()
        )
        # One backend instance is shared by every consumer of a compiled
        # circuit (see get_backend), including concurrent serving lanes,
        # so the LRU's pop/insert/evict must be atomic.
        self._program_lock = threading.Lock()
        self._program_cache_limit = max(
            8,
            min(
                PROGRAM_CACHE_SIZE,
                PROGRAM_CACHE_SIGNAL_BUDGET // max(1, compiled.num_signals),
            ),
        )

    @property
    def compiled(self) -> CompiledCircuit:
        return self._compiled

    def validate_batch_width(self, batch_width: int) -> int:
        """Check a requested batch width against this backend's words.

        Returns the width unchanged when acceptable; raises
        :class:`~repro.errors.SimulationError` otherwise.
        """
        if batch_width < 1:
            raise SimulationError(
                f"batch width must be >= 1, got {batch_width}"
            )
        return batch_width

    def program(self, faults: tuple[Fault, ...] | None) -> SimProgram:
        """The compiled program for ``faults`` (LRU-cached per batch).

        Fault ``i`` of the tuple occupies slot ``i``; ``None`` compiles the
        fault-free program.  Repeated requests for the same batch (the
        normal case in Procedure 2's trial loops) return the cached
        program without rebuilding op lists.
        """
        cache = self._programs
        with self._program_lock:
            program = cache.pop(faults, None)
            if program is not None:
                cache[faults] = program
                return program
        # Compile outside the lock: two lanes racing on the same new
        # batch may both compile, but the loser's program is simply
        # dropped — correctness never depends on cache identity.
        program = self._compile_program(faults)
        with self._program_lock:
            cached = cache.pop(faults, None)
            if cached is not None:
                program = cached
            cache[faults] = program
            while len(cache) > self._program_cache_limit:
                cache.popitem(last=False)
        return program

    @abstractmethod
    def _compile_program(self, faults: tuple[Fault, ...] | None) -> SimProgram:
        """Lower ``faults`` into a backend-native program (uncached)."""

    @abstractmethod
    def batch(self, program: SimProgram, batch_size: int) -> SimBatch:
        """Open a fresh batch of ``batch_size`` all-X machines."""

    def detect_step(self, good: SimBatch, faulty: SimBatch, alive_mask: int) -> int:
        """Paired-batch detection: slots where ``faulty`` contradicts ``good``.

        Both batches must have been evaluated for the same time step with
        identical per-slot inputs; slot ``s`` of ``good`` runs the
        fault-free machine of candidate ``s`` and slot ``s`` of ``faulty``
        the faulted one.  A slot detects when some PO is binary in both
        machines with opposite values — ``(Hg & Lf) | (Lg & Hf)`` per PO,
        OR-reduced across all POs — masked by ``alive_mask`` (slots whose
        candidate sequence still covers this time step).

        This default walks :meth:`SimBatch.observe_po` per PO and is the
        semantic reference; backends override it with a fused pass over
        all POs at once.
        """
        if alive_mask == 0:
            return 0
        detected = 0
        for position in range(len(self._compiled.po_indices)):
            gh, gl = good.observe_po(position)
            fh, fl = faulty.observe_po(position)
            detected |= (gh & fl) | (gl & fh)
        return detected & alive_mask

    def run_scan(
        self,
        good: "SimBatch | None",
        faulty: SimBatch,
        packed_stimulus,
        observation_plan,
        alive_mask,
        *,
        collect_final_states: bool = False,
    ) -> "list[int | None]":
        """Execute a whole-sequence scan in one backend call.

        Runs every time step — input load, good/faulty evaluation, flop
        latch, detect reduction — and returns per-slot **first detection
        times** (``None`` for slots never detected).  This default is the
        per-step reference loop (the semantic gate the fused kernels are
        bit-identical to); array backends override it with fused
        multi-step kernels.

        Two axes share the primitive:

        * **paired candidate axis** (``observation_plan is None``):
          ``good`` and ``faulty`` run side by side, detection is
          :meth:`detect_step` across all POs, and ``alive_mask`` is a
          per-step sequence of slot masks (candidates end at different
          times; the masks shrink monotonically, so a drained live mask
          ends the scan).
        * **fault axis** (``observation_plan`` is the fault-free
          machine's per-step observation rows): ``good`` is ``None`` —
          the good machine is the recorded plan — detection is
          :meth:`SimBatch.detect_mask`, and ``alive_mask`` is one
          constant int mask.

        ``packed_stimulus`` supplies ``num_steps``, ``num_slots`` and
        ``load_step(t, good, faulty)`` (a candidate column packer or a
        :class:`BroadcastStimulus`).  State ownership: the batches'
        flop state advances exactly as the stepped calling sequence
        would — ``capture_state`` is skipped after the early-exiting
        step — and with ``collect_final_states`` the scan never exits
        early and latches every step, so
        :meth:`SimBatch.export_state_packed` afterwards matches the
        stepped path bit for bit.
        """
        num_steps = packed_stimulus.num_steps
        num_slots = packed_stimulus.num_slots
        steady = isinstance(alive_mask, int)
        pending = (1 << num_slots) - 1
        times: list[int | None] = [None] * num_slots
        executed = 0
        for t in range(num_steps):
            live = (alive_mask if steady else alive_mask[t]) & pending
            if live == 0 and not collect_final_states:
                # Alive masks only shrink (candidates end, detections
                # clear pending), so nothing can detect from here on.
                break
            executed += 1
            packed_stimulus.load_step(t, good, faulty)
            if good is not None:
                good.load_state()
            faulty.load_state()
            faulty.apply_source_patches()
            if good is not None:
                good.eval()
            faulty.eval()
            if observation_plan is None:
                detected_now = self.detect_step(good, faulty, live)
            else:
                detected_now = faulty.detect_mask(observation_plan[t]) & live
            if detected_now:
                slot = 0
                remaining = detected_now
                while remaining:
                    if remaining & 1:
                        times[slot] = t
                    remaining >>= 1
                    slot += 1
                pending &= ~detected_now
                if pending == 0 and not collect_final_states:
                    break
            if good is not None:
                good.capture_state()
            faulty.capture_state()
        record_dispatch("scan_calls")
        record_dispatch("scan_steps", executed)
        return times


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: Guards the per-compiled-circuit backend-instance memo in get_backend:
#: concurrent serving lanes resolving the same circuit must converge on
#: one shared instance (and therefore one program cache).
_BACKEND_MEMO_LOCK = threading.Lock()


def _load_python_backend() -> type[SimBackend]:
    from repro.sim.backend_python import PythonBackend

    return PythonBackend


def _load_numpy_backend() -> type[SimBackend]:
    try:
        import numpy  # noqa: F401
    except ImportError as error:  # pragma: no cover - numpy ships in CI
        raise SimulationError(
            "the 'numpy' simulation backend requires numpy; install it or "
            "select backend='python'"
        ) from error
    from repro.sim.backend_numpy import NumpyBackend

    return NumpyBackend


def _load_native_backend() -> type[SimBackend]:
    try:
        import numpy  # noqa: F401
    except ImportError as error:  # pragma: no cover - numpy ships in CI
        raise SimulationError(
            "the 'native' simulation backend requires numpy; install it or "
            "select backend='python'"
        ) from error
    # Compiles the C kernel on first use; raises SimulationError with the
    # unavailability reason (no compiler, failed build, REPRO_NO_NATIVE).
    from repro.sim.native_build import load_native_library

    load_native_library()
    from repro.sim.backend_native import NativeBackend

    return NativeBackend


_REGISTRY = {
    "python": _load_python_backend,
    "numpy": _load_numpy_backend,
    "native": _load_native_backend,
}


def registry_backends() -> list[str]:
    """Every registered backend name, whether or not it is usable here.

    Parity suites parametrize over this (not :func:`available_backends`)
    so an engine that cannot run on the current machine shows up as an
    explicit skip with :func:`backend_unavailable_reason`, never as
    silent absence.
    """
    return list(_REGISTRY)


def backend_unavailable_reason(name: str) -> str | None:
    """Why backend ``name`` cannot be used here, or ``None`` if it can.

    Probing may do real work (the native backend compiles its kernel on
    the first probe), after which the answer is memoized by the loader.
    """
    loader = _REGISTRY.get(name)
    if loader is None:
        return f"unknown backend {name!r}; registered: {registry_backends()}"
    try:
        loader()
    except SimulationError as error:
        return str(error)
    return None


def available_backends() -> list[str]:
    """Backend names accepted by ``backend=`` selectors, best first."""
    names = []
    for name, loader in _REGISTRY.items():
        try:
            loader()
        except SimulationError:
            continue
        names.append(name)
    return names


def _auto_usable(name: str) -> bool:
    """Availability probe for ``auto`` resolution (never raises)."""
    try:
        _REGISTRY[name]()
    except SimulationError:
        return False
    return True


def resolve_backend_name(
    compiled: CompiledCircuit,
    backend: str | None,
    paired: bool = False,
) -> str:
    """Resolve a backend *name* selector, expanding :data:`AUTO_BACKEND`.

    ``"auto"`` picks the engine the benchmarks show fastest for this
    circuit, per axis, preferring ``native`` > ``numpy`` > ``python``
    among the engines usable on this machine.  Each engine has a
    measured per-axis gate-count crossover below which the next engine
    down wins on overhead: ``native`` at or above
    :data:`AUTO_NATIVE_GATE_THRESHOLD` /
    :data:`AUTO_NATIVE_PAIRED_GATE_THRESHOLD` gates (fault / paired
    candidate axis), else ``numpy`` at or above
    :data:`AUTO_GATE_THRESHOLD` / :data:`AUTO_PAIRED_GATE_THRESHOLD`,
    else ``python``.  An unavailable engine (numpy not importable, no C
    compiler, ``REPRO_NO_NATIVE``) is silently skipped in that cascade.
    The choice is deterministic in ``(circuit, paired)`` on a given
    machine, so sharded workers resolving independently agree with
    their parent.  Results are bit-identical either way; only
    throughput differs.
    """
    name = backend or DEFAULT_BACKEND
    if name != AUTO_BACKEND:
        return name
    gates = len(compiled.ops)
    if paired:
        native_threshold = AUTO_NATIVE_PAIRED_GATE_THRESHOLD
        numpy_threshold = AUTO_PAIRED_GATE_THRESHOLD
    else:
        native_threshold = AUTO_NATIVE_GATE_THRESHOLD
        numpy_threshold = AUTO_GATE_THRESHOLD
    if gates >= native_threshold and _auto_usable("native"):
        return "native"
    if gates >= numpy_threshold and _auto_usable("numpy"):
        return "numpy"
    return "python"


def resolve_auto(
    compiled: CompiledCircuit,
    backend: "str | SimBackend | None",
    batch_width: int,
    paired: bool = False,
) -> "tuple[str | SimBackend | None, int]":
    """Adaptive backend *and batch width* resolution for a simulator.

    Non-``"auto"`` selectors (names, instances, ``None``) pass through
    with the requested width untouched.  ``"auto"`` resolves the engine
    via :func:`resolve_backend_name` and, when that lands on the big-int
    kernel, clamps the batch width down to the kernel's measured sweet
    spot (:data:`AUTO_PYTHON_FAULT_WIDTH` /
    :data:`AUTO_PYTHON_PAIRED_WIDTH`) — batch widths never change
    results, so an auto consumer configured with numpy-tuned wide
    batches gets the python-tuned shape instead of oversized ints.
    """
    if not isinstance(backend, str) or backend != AUTO_BACKEND:
        return backend, batch_width
    name = resolve_backend_name(compiled, backend, paired)
    if name == "python":
        sweet_spot = (
            AUTO_PYTHON_PAIRED_WIDTH if paired else AUTO_PYTHON_FAULT_WIDTH
        )
        batch_width = min(batch_width, sweet_spot) if batch_width > 0 else batch_width
    return name, batch_width


def get_backend(
    compiled: CompiledCircuit,
    backend: "str | SimBackend | None" = None,
) -> SimBackend:
    """Resolve a ``backend=`` selector against a compiled circuit.

    Accepts a registry name (including ``"auto"``, resolved by gate count
    via :func:`resolve_backend_name`; batch-shape-aware consumers go
    through :func:`resolve_auto` first), an existing :class:`SimBackend`
    instance (which must be bound to the same compiled circuit), or
    ``None`` for :data:`DEFAULT_BACKEND`.  Instances are memoized on the
    compiled circuit so every consumer of the same circuit shares one
    backend — and therefore one program cache.
    """
    if isinstance(backend, SimBackend):
        if backend.compiled is not compiled:
            raise SimulationError(
                "backend instance is bound to a different compiled circuit"
            )
        return backend
    name = resolve_backend_name(compiled, backend)
    loader = _REGISTRY.get(name)
    if loader is None:
        raise SimulationError(
            f"unknown simulation backend {name!r}; "
            f"available: {available_backends()}"
        )
    with _BACKEND_MEMO_LOCK:
        cache: dict[str, SimBackend] = compiled.__dict__.setdefault(
            "_sim_backends", {}
        )
        instance = cache.get(name)
    if instance is None:
        instance = loader()(compiled)
        with _BACKEND_MEMO_LOCK:
            instance = cache.setdefault(name, instance)
    return instance
