"""Process-sharded parallel-sequence (candidate-axis) simulation.

:mod:`repro.sim.sharding` shards the *fault* axis; this module shards the
other hot axis: Procedure 2's candidate sets.  A
:class:`ShardedSequenceBatchSimulator` splits the candidate lists behind
``detects`` / ``detects_windows`` / ``detects_omissions`` into chunked,
work-stealing tasks on the session's persistent
:class:`~repro.sim.workerpool.WorkerPool` — the same pool the fault axis
borrows, so Procedure 1's fault universes and Procedure 2's candidate
populations interleave on one warm set of processes.

Three mechanisms keep the IPC off the hot path:

* **Context publication.**  The circuit, resolved backend name, batch
  width and pipeline are published once as a pool context; each worker
  builds its own serial :class:`~repro.sim.seqsim.SequenceBatchSimulator`
  from them.  Tasks then carry a context id plus per-call data.
* **Shared-memory buffers.**  On the packed/numpy pipeline the base
  sequence crosses the boundary as its bit matrix
  (:func:`~repro.sim.trace.base_bits_of`), published by the session's
  :class:`~repro.sim.trace.GoodTraceCache` in a
  ``multiprocessing.shared_memory`` segment — one segment per (circuit,
  sequence) per session, shared with the serial pipeline's packers, so
  the sharder no longer rebuilds packed base columns per context.
  Workers attach (LRU-cached by name) and derive every expanded
  candidate from the mapped bits — window spans and omission indices
  travel as tuples of ints.  Detection outcomes flow back through a
  persistent shared result buffer (one byte per candidate) instead of
  pickled lists.  Both buffers degrade gracefully: when shared memory or
  numpy is unavailable — or ``REPRO_SEQSHARD_NO_SHM`` is set — bases
  ship pickled and outcomes return pickled, with identical results.
* **First-hit cancellation.**  Procedure 2's scans only need the *first*
  detecting candidate.  :meth:`first_detecting_window` /
  :meth:`first_detecting_omission` dispatch all chunks at once and share
  the pool's ``first_hit`` value: a worker that finds a detection
  publishes its global candidate index, and every worker abandons
  sub-batches that can no longer beat the current minimum.  The merged
  answer is the minimum detecting index — exactly what the serial scan
  returns — and the reported evaluated-candidate count is recomputed
  from the serial formula, so results and statistics are bit-identical
  for any worker count.

The cost model dictates the chunk shape: a candidate batch costs about as
much as simulating its *longest* member (bit-parallel slots ride along),
so a chunk narrower than one full backend pass multiplies total steps
without shrinking the critical path.  Chunk boundaries come from the
:class:`~repro.sim.scanplan.ScanPlan` the caller hands in — cost-balanced
by default (equal simulated-step budgets, the right shape for Procedure
2's linearly-growing window ramps) or candidate-count-based
(``chunking="count"``, the historical fault-axis plan), both floored at
one full ``batch_width`` pass.  Sharding wins appear once a scan spans
several serial passes (candidates well past ``batch_width`` — exactly
the s5378/s35932-class scans), and the serial-fallback floor scales with
the batch width (:data:`SERIAL_FALLBACK_CANDIDATES` or one full pass,
whichever is larger, unless ``min_shard_candidates`` overrides it
explicitly).  First-hit scans are the exception: their serial cost is
the ramp of whole chunks up to the winner, so fanning the scan out pays
whenever the winner sits deep.

The consumer seam is :func:`make_sequence_simulator`, mirroring
:func:`~repro.sim.sharding.make_fault_simulator`: Procedure 1/2,
restoration and the partitioning baseline opt in purely through the
``workers`` knob already on their configs.
"""

from __future__ import annotations

try:  # numpy enables the shared-memory bit-matrix path.
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships in CI
    np = None

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - platform without shm
    shared_memory = None

from repro.circuit.netlist import Circuit
from repro.core.ops import ExpansionConfig
from repro.core.sequence import TestSequence
from repro.errors import SimulationError
from repro.faults.model import Fault
from repro.sim.backend import SimBackend
from repro.sim.compiled import CompiledCircuit
from repro.sim.scanplan import (
    DEFAULT_CHUNKING,
    ScanPlan,
    plan_count_chunks,
    validate_chunking,
)
from repro.sim.seqsim import (
    DEFAULT_SEQ_BATCH_WIDTH,
    SequenceBatchSimulator,
    omission_index_lists,
)

# The shm escape hatch and teardown helpers live with the trace cache
# (one definition for both publishers); re-exported here for the
# historical importers (NO_SHM_ENV is this module's documented knob).
from repro.sim.trace import (  # noqa: F401  (re-export)
    NO_SHM_ENV,
    _unlink_segment,
    shm_available,
)
from repro.sim.workerpool import (
    PoolContext,
    default_workers,
    get_worker_pool,
    resolve_work_distribution,
    single_core_machine,
    worker_attach_shm,
    worker_state,
)

#: Baseline serial-fallback floor for the candidate axis.  The effective
#: default floor is ``max(SERIAL_FALLBACK_CANDIDATES, batch_width)``: a
#: scan that fits one bit-parallel pass costs about one longest-candidate
#: simulation either way, so there is nothing for a second process to
#: take off the critical path.
SERIAL_FALLBACK_CANDIDATES = 64

#: Target chunks per worker (work stealing, as on the fault axis).
DEFAULT_OVERSPLIT = 4

#: Minimum byte size of the persistent result buffer (grow-only).
_RESULT_BUFFER_FLOOR = 1024


def plan_candidate_chunks(
    num_candidates: int,
    workers: int,
    batch_width: int,
    oversplit: int = DEFAULT_OVERSPLIT,
) -> list[tuple[int, int]]:
    """Contiguous count-based candidate chunks (back-compat shim).

    Chunk boundaries now come from :meth:`repro.sim.scanplan.ScanPlan.chunks`
    (cost-balanced by default); this helper remains for callers that
    want the historical candidate-count plan without building a plan
    object.  It delegates to the shared
    :func:`repro.sim.scanplan.plan_count_chunks` planner.
    """
    return plan_count_chunks(num_candidates, workers, batch_width, oversplit)


# ----------------------------------------------------------------------
# Worker-process side.  Module-level (spawn-picklable) context builder
# and task functions, dispatched by the shared pool.
# ----------------------------------------------------------------------
def build_seq_context(spec: tuple) -> dict:
    """Build this worker's serial simulator for one published context."""
    _, circuit, backend_name, batch_width, pipeline, scan_mode = spec
    compiled = CompiledCircuit(circuit)
    return {
        "simulator": SequenceBatchSimulator(
            compiled,
            batch_width=batch_width,
            backend=backend_name,
            pipeline=pipeline,
            scan_mode=scan_mode,
        )
    }


def _worker_base_bits(base_ref: tuple):
    """Resolve a base reference to its bit matrix (shm or raw bytes)."""
    kind = base_ref[0]
    if kind == "shm":
        _, name, length, width = base_ref
        segment = worker_attach_shm(name)
        return np.ndarray((length, width), dtype=np.uint8, buffer=segment.buf)
    if kind == "bytes":
        _, payload, length, width = base_ref
        return np.frombuffer(payload, dtype=np.uint8).reshape(length, width)
    raise SimulationError(f"unknown base reference kind {kind!r}")


def _chunk_outcomes(
    simulator: SequenceBatchSimulator,
    fault: Fault,
    base_ref: tuple | None,
    kind: str,
    items: list,
    expansion: ExpansionConfig | None,
) -> list[bool]:
    """Detection outcomes for one chunk of candidates, by workload kind."""
    if kind == "explicit":
        return simulator.detects(fault, items)
    if base_ref is not None and base_ref[0] == "seq":
        base = base_ref[1]
        if kind == "windows":
            return simulator.detects_windows(fault, base, items, expansion)
        return simulator.detects_omissions(fault, base, items, expansion)
    bits = _worker_base_bits(base_ref)
    if kind == "windows":
        index_lists = [range(start, end + 1) for start, end in items]
    else:
        index_lists = omission_index_lists(bits.shape[0], items)
    return simulator._detects_derived_bits(fault, bits, index_lists, expansion)


def _run_seq_chunk(task: tuple) -> tuple[int, list[bool] | None]:
    """Evaluate one candidate chunk; outcomes go to shm or come back pickled."""
    (
        context_id,
        chunk_id,
        fault,
        base_ref,
        kind,
        items,
        global_start,
        expansion,
        result_ref,
    ) = task
    state = worker_state()
    simulator = state["contexts"][context_id]["simulator"]
    outcomes = _chunk_outcomes(simulator, fault, base_ref, kind, items, expansion)
    if result_ref is None:
        return chunk_id, outcomes
    _, name, _total = result_ref
    segment = worker_attach_shm(name)
    segment.buf[global_start : global_start + len(outcomes)] = bytes(
        bytearray(outcomes)
    )
    return chunk_id, None


def _run_seq_chunk_first_hit(task: tuple) -> tuple[int, int | None]:
    """First-hit variant: stop early once no remaining candidate can win.

    Scans the chunk in ``step``-sized sub-batches.  Between sub-batches
    the worker consults the pool's shared ``first_hit`` value: if the
    published minimum already precedes everything left in this chunk, the
    rest is abandoned — it cannot change the (deterministic) answer,
    which is the global minimum detecting index.
    """
    (
        context_id,
        chunk_id,
        fault,
        base_ref,
        kind,
        items,
        global_start,
        expansion,
        step,
    ) = task
    state = worker_state()
    simulator = state["contexts"][context_id]["simulator"]
    first_hit = state["first_hit"]
    for start in range(0, len(items), step):
        # Locked read: a torn 64-bit load (32-bit platforms) could
        # fabricate a small index and wrongly abandon the true minimum.
        with first_hit.get_lock():
            best_so_far = first_hit.value
        if best_so_far <= global_start + start:
            break
        part = items[start : start + step]
        outcomes = _chunk_outcomes(simulator, fault, base_ref, kind, part, expansion)
        for offset, detected in enumerate(outcomes):
            if detected:
                found = global_start + start + offset
                with first_hit.get_lock():
                    if found < first_hit.value:
                        first_hit.value = found
                return chunk_id, found
    return chunk_id, None


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ShardedSequenceBatchSimulator(SequenceBatchSimulator):
    """A :class:`SequenceBatchSimulator` that shards the candidate axis.

    Drop-in: every detection API shards across ``workers`` processes when
    the candidate list is large enough and falls back to the inherited
    serial engine otherwise.  Outcomes are bit-identical to serial for
    any worker count — candidate slots are independent machines and
    batching is order-preserving, so partitioning the list cannot change
    results; the parity suite enforces it.

    The simulator borrows the session's persistent worker pool; circuit
    pickling happens once per worker when the context is first published,
    and the packed base columns (published by the session's
    :class:`~repro.sim.trace.GoodTraceCache`) / detection masks travel
    through shared memory when available.  :meth:`close` retires the
    context and unlinks the result buffer; the pool and the trace
    cache's base segments stay warm for the next borrower.
    """

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        batch_width: int = DEFAULT_SEQ_BATCH_WIDTH,
        backend: str | SimBackend | None = None,
        pipeline: str = "packed",
        workers: int | None = None,
        min_shard_candidates: int | None = None,
        oversplit: int = DEFAULT_OVERSPLIT,
        chunking: str = DEFAULT_CHUNKING,
        scan_mode: str | None = None,
    ) -> None:
        super().__init__(
            circuit,
            batch_width=batch_width,
            backend=backend,
            pipeline=pipeline,
            scan_mode=scan_mode,
        )
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise SimulationError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        if min_shard_candidates is None:
            # One bit-parallel pass costs ~one longest-candidate run no
            # matter how many slots it carries: scans inside a single
            # pass have nothing to parallelize (see the module docstring).
            min_shard_candidates = max(
                SERIAL_FALLBACK_CANDIDATES, self._batch_width + 1
            )
        self._min_shard_candidates = max(1, min_shard_candidates)
        self._oversplit = max(1, oversplit)
        self._chunking = validate_chunking(chunking)
        self._context: PoolContext | None = None
        self._result_segment = None
        self._result_capacity = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self._workers

    @property
    def chunking(self) -> str:
        return self._chunking

    def should_shard(self, num_candidates: int) -> bool:
        """Whether a candidate list of this size goes to the pool."""
        return self._workers > 1 and num_candidates >= self._min_shard_candidates

    def close(self, _deferred: bool = False) -> None:
        """Retire the pool context and unlink the result buffer (idempotent).

        The worker pool is session-owned and stays warm; base-bit
        segments are owned by the session's trace cache
        (:func:`repro.sim.trace.close_trace_caches` is their final
        teardown); see :func:`repro.sim.workerpool.close_worker_pools`.
        """
        if self._context is not None:
            self._context.retire(deferred=_deferred)
            self._context = None
        _unlink_segment(self._result_segment)
        self._result_segment = None
        self._result_capacity = 0

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            # Deferred: a finalizer may run on any thread mid-dispatch,
            # where a barrier broadcast on the shared pool is unsafe.
            self.close(_deferred=True)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Sharded plan executors (the public detection APIs inherit from the
    # serial class and funnel through these two overrides)
    # ------------------------------------------------------------------
    def scan(self, fault: Fault, plan: ScanPlan) -> list[bool]:
        if not self.should_shard(len(plan)):
            return super().scan(fault, plan)
        self._validate_plan(plan)
        return self._run_sharded(fault, plan)

    def first_hit(
        self, fault: Fault, plan: ScanPlan, chunk: int | None = None
    ) -> tuple[int | None, int]:
        if not self.should_shard(len(plan)):
            return super().first_hit(fault, plan, chunk)
        self._validate_plan(plan)
        return self._first_hit_sharded(fault, plan, chunk)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_plan(self, plan: ScanPlan) -> None:
        width = self._compiled.num_inputs
        if plan.base is not None:
            if len(plan.base) and plan.base.width != width:
                raise SimulationError(
                    f"base width {plan.base.width} != circuit inputs {width}"
                )
            return
        for sequence in plan.items:
            if len(sequence) and sequence.width != width:
                raise SimulationError(
                    f"candidate width {sequence.width} != circuit inputs {width}"
                )

    def _ensure_context(self) -> PoolContext:
        """The published context, rebound if the session pool changed."""
        pool = get_worker_pool(self._workers)
        context = self._context
        if context is not None and context.pool is pool and not pool.closed:
            return context
        if context is not None:
            context.retire()
        # The parent resolves the scan mode (env, measured profile) and
        # ships the resolved string: spawned workers inherit the
        # environment only at pool start, not at dispatch time.
        spec = (
            "seq",
            self._compiled.circuit,
            self._backend.name,
            self._batch_width,
            self._pipeline,
            self._scan_mode,
        )
        self._context = PoolContext(pool, pool.register_context(spec))
        return self._context

    def _use_derived_bits(self) -> bool:
        """Whether bases cross the boundary as bit matrices.

        Requires numpy and the packed pipeline on the parent; the workers
        run the same resolved configuration, so the capability matches.
        """
        return np is not None and self._pipeline == "packed"

    def _base_ref(self, base: TestSequence) -> tuple:
        """The cross-process reference for ``base``.

        Packed/numpy: the base's bit matrix from the session's
        :class:`~repro.sim.trace.GoodTraceCache` — one shared-memory
        segment per (circuit, sequence) per session, shared with the
        serial packers and every other sharded simulator of this
        circuit (raw bytes when shared memory is unavailable).
        Legacy/no-numpy: the pickled sequence itself.
        """
        if not self._use_derived_bits():
            return ("seq", base)
        return self._trace_cache.bits_ref(base)

    def _result_ref(self, total: int) -> tuple | None:
        """The shared result buffer reference (grow-only), or None."""
        if not shm_available() or total <= 0:
            return None
        if self._result_segment is None or self._result_capacity < total:
            _unlink_segment(self._result_segment)
            capacity = max(total, _RESULT_BUFFER_FLOOR)
            self._result_segment = shared_memory.SharedMemory(
                create=True, size=capacity
            )
            self._result_capacity = capacity
        return ("shm", self._result_segment.name, total)

    def _run_sharded(self, fault: Fault, plan: ScanPlan) -> list[bool]:
        """Fan a plan's chunks out; merge outcomes into candidate order."""
        context = self._ensure_context()
        chunks = plan.chunks(
            self._workers, self._batch_width, self._oversplit, self._chunking
        )
        base_ref = self._base_ref(plan.base) if plan.base is not None else None
        result_ref = self._result_ref(len(plan))
        tasks = [
            (
                context.context_id,
                chunk_id,
                fault,
                base_ref,
                plan.kind,
                plan.items[start:end],
                start,
                plan.expansion,
                result_ref,
            )
            for chunk_id, (start, end) in enumerate(chunks)
        ]
        results = context.pool.run_tasks(_run_seq_chunk, tasks)
        if result_ref is not None:
            buffer = self._result_segment.buf
            return [bool(buffer[position]) for position in range(len(plan))]
        outcomes: list[bool] = [False] * len(plan)
        for chunk_id, chunk_outcomes in results:
            start, end = chunks[chunk_id]
            outcomes[start:end] = chunk_outcomes
        return outcomes

    def _first_hit_sharded(
        self,
        fault: Fault,
        plan: ScanPlan,
        chunk: int | None,
    ) -> tuple[int | None, int]:
        """Cancellable scan for the minimum detecting candidate index.

        Deterministic by construction: every chunk that could contain a
        smaller index than the current best keeps running, so the merged
        minimum equals the serial scan's first hit; chunks wholly past
        the best abandon early.  The evaluated-candidate count is
        recomputed from the serial chunked-scan formula so Procedure 2's
        statistics match ``workers=1`` exactly — for either chunking
        mode, whose boundaries only shape the worker tasks.
        """
        serial_chunk = self._first_hit_chunk(chunk)
        context = self._ensure_context()
        # First-hit chunks are floored at the caller's serial chunk width
        # (the cancellation granularity), not the batch width: a scan
        # usually resolves long before its deepest chunks run, and
        # abandoning a narrow chunk wastes less than abandoning a
        # full-width one.
        chunks = plan.chunks(
            self._workers, serial_chunk, self._oversplit, self._chunking
        )
        base_ref = self._base_ref(plan.base) if plan.base is not None else None
        step = serial_chunk
        context.pool.reset_first_hit()
        tasks = [
            (
                context.context_id,
                chunk_id,
                fault,
                base_ref,
                plan.kind,
                plan.items[start:end],
                start,
                plan.expansion,
                step,
            )
            for chunk_id, (start, end) in enumerate(chunks)
        ]
        results = context.pool.run_tasks(_run_seq_chunk_first_hit, tasks)
        winner = min(
            (found for _, found in results if found is not None),
            default=None,
        )
        if winner is None:
            return None, len(plan)
        evaluated = min(len(plan), (winner // serial_chunk + 1) * serial_chunk)
        return winner, evaluated


def make_sequence_simulator(
    circuit: Circuit | CompiledCircuit,
    batch_width: int = DEFAULT_SEQ_BATCH_WIDTH,
    backend: str | SimBackend | None = None,
    pipeline: str = "packed",
    workers: int = 1,
    min_shard_candidates: int | None = None,
    oversplit: int = DEFAULT_OVERSPLIT,
    chunking: str = DEFAULT_CHUNKING,
    force_shard: bool = False,
    scan_mode: str | None = None,
    parallel: str | None = None,
) -> SequenceBatchSimulator:
    """The work-distribution seam for every candidate-simulation consumer.

    ``parallel`` picks the tier (see
    :data:`~repro.sim.workerpool.PARALLEL_MODES`): ``"serial"`` one
    simulator on one kernel thread, ``"threads"`` one simulator whose
    native kernel splits each packed batch across ``workers``
    in-process thread lanes, ``"processes"`` the shard pool, and
    ``"auto"`` (the default, also ``None``) the historical behaviour —
    ``workers <= 1`` serial, anything larger a
    :class:`ShardedSequenceBatchSimulator` (which still runs candidate
    sets that fit one bit-parallel pass serially — see
    :data:`SERIAL_FALLBACK_CANDIDATES`).  ``workers=0`` /
    ``workers=None`` mean "one per CPU".  ``chunking`` selects how a
    sharded simulator cuts a scan into worker chunks — ``"cost"``
    (equal simulated-step budgets, the default) or ``"count"`` (the
    historical equal-candidate plan); results are bit-identical either
    way, so like ``workers`` and ``parallel`` it is a pure throughput
    knob.

    On a single-core machine a multi-worker request falls back to the
    serial engine (see :func:`~repro.sim.workerpool.single_core_machine`)
    unless ``force_shard=True``; constructing
    :class:`ShardedSequenceBatchSimulator` directly also bypasses the
    fallback.
    """
    mode, workers = resolve_work_distribution(
        parallel, workers, force=force_shard
    )
    if mode == "threads":
        validate_chunking(chunking)
        return SequenceBatchSimulator(
            circuit,
            batch_width=batch_width,
            backend=backend,
            pipeline=pipeline,
            scan_mode=scan_mode,
            threads=workers,
        )
    if workers > 1 and not force_shard and single_core_machine():
        workers = 1
    if workers <= 1 or mode == "serial":
        validate_chunking(chunking)
        return SequenceBatchSimulator(
            circuit,
            batch_width=batch_width,
            backend=backend,
            pipeline=pipeline,
            scan_mode=scan_mode,
        )
    return ShardedSequenceBatchSimulator(
        circuit,
        batch_width=batch_width,
        backend=backend,
        pipeline=pipeline,
        workers=workers,
        min_shard_candidates=min_shard_candidates,
        oversplit=oversplit,
        chunking=chunking,
        scan_mode=scan_mode,
    )
