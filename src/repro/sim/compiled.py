"""Compilation of a netlist into a flat program for the fast simulators.

Signals are assigned dense integer indices (PIs first, then flop outputs,
then gate outputs in topological order).  Gates become ``(code, out,
ins)`` triples sorted in evaluation order.  Faults are compiled into
:class:`InjectionPlan` mask sets that the simulators apply while
evaluating.

All simulators in this package share one :class:`CompiledCircuit` per
circuit; compiling is cheap but done once and cached by the callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit
from repro.circuit.types import GateType
from repro.errors import FaultModelError, SimulationError
from repro.faults.model import BRANCH, STEM, Fault

# Op codes; 2-input variants are specialized for speed in the inner loops.
OP_AND = 0
OP_NAND = 1
OP_OR = 2
OP_NOR = 3
OP_NOT = 4
OP_BUF = 5
OP_XOR = 6
OP_XNOR = 7

_CODE_OF = {
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.NOT: OP_NOT,
    GateType.BUF: OP_BUF,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
}


@dataclass
class InjectionPlan:
    """Bit masks describing where a batch of faults forces values.

    Every mask has bit ``i`` set when slot ``i``'s fault forces the line;
    ``sa1`` masks force 1, ``sa0`` masks force 0.

    Attributes:
        stem_sa1 / stem_sa0: signal index -> mask (forced everywhere).
        gate_pin: (op position, pin) -> (sa1 mask, sa0 mask).
        dff_pin: flop position -> (sa1 mask, sa0 mask), applied to the
            value latched by that flop only.
        po_pin: PO position -> (sa1 mask, sa0 mask), applied to the value
            observed at that PO only.
    """

    stem_sa1: dict[int, int] = field(default_factory=dict)
    stem_sa0: dict[int, int] = field(default_factory=dict)
    gate_pin: dict[tuple[int, int], tuple[int, int]] = field(default_factory=dict)
    dff_pin: dict[int, tuple[int, int]] = field(default_factory=dict)
    po_pin: dict[int, tuple[int, int]] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not (
            self.stem_sa1 or self.stem_sa0 or self.gate_pin or self.dff_pin or self.po_pin
        )


class CompiledCircuit:
    """A circuit lowered to flat arrays for the bit-parallel simulators."""

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self.index_of: dict[str, int] = {}
        names: list[str] = []
        for pi in circuit.inputs:
            self.index_of[pi] = len(names)
            names.append(pi)
        for q in circuit.flop_outputs():
            self.index_of[q] = len(names)
            names.append(q)
        topo = circuit.topo_order()
        for gate in topo:
            self.index_of[gate.output] = len(names)
            names.append(gate.output)
        self.signal_names: list[str] = names
        self.num_signals = len(names)
        self.num_inputs = circuit.num_inputs
        self.pi_indices: list[int] = [self.index_of[pi] for pi in circuit.inputs]
        self.po_indices: list[int] = [self.index_of[po] for po in circuit.outputs]
        self.flop_pairs: list[tuple[int, int]] = [
            (self.index_of[q], self.index_of[d]) for q, d in circuit.flops
        ]
        self.ops: list[tuple[int, int, tuple[int, ...]]] = []
        self.op_position: dict[str, int] = {}
        for position, gate in enumerate(topo):
            code = _CODE_OF[gate.gate_type]
            ins = tuple(self.index_of[src] for src in gate.inputs)
            self.ops.append((code, self.index_of[gate.output], ins))
            self.op_position[gate.output] = position
        self._flop_position: dict[str, int] = {
            q: position for position, (q, _) in enumerate(circuit.flops)
        }
        self._po_position: dict[str, int] = {
            po: position for position, po in enumerate(circuit.outputs)
        }

    # ------------------------------------------------------------------
    # Fault compilation
    # ------------------------------------------------------------------
    def add_fault_to_plan(self, plan: InjectionPlan, fault: Fault, slot: int) -> None:
        """Compile ``fault`` into ``plan`` at bit position ``slot``."""
        mask = 1 << slot
        site = fault.site
        if site.signal not in self.index_of:
            raise FaultModelError(
                f"{self.circuit.name}: fault site on unknown signal {site.signal!r}"
            )
        if site.kind == STEM:
            signal_index = self.index_of[site.signal]
            target_dict = plan.stem_sa1 if fault.stuck_value == 1 else plan.stem_sa0
            target_dict[signal_index] = target_dict.get(signal_index, 0) | mask
            return
        if site.kind != BRANCH:
            raise FaultModelError(f"unknown fault site kind {site.kind!r}")
        if site.load_kind == "gate":
            position = self.op_position.get(site.sink)
            if position is None:
                raise FaultModelError(
                    f"{self.circuit.name}: branch sink gate {site.sink!r} not found"
                )
            key = (position, site.pin)
            sa1, sa0 = plan.gate_pin.get(key, (0, 0))
            if fault.stuck_value == 1:
                sa1 |= mask
            else:
                sa0 |= mask
            plan.gate_pin[key] = (sa1, sa0)
            return
        if site.load_kind == "dff":
            position = self._flop_position.get(site.sink)
            if position is None:
                raise FaultModelError(
                    f"{self.circuit.name}: branch sink flop {site.sink!r} not found"
                )
            sa1, sa0 = plan.dff_pin.get(position, (0, 0))
            if fault.stuck_value == 1:
                sa1 |= mask
            else:
                sa0 |= mask
            plan.dff_pin[position] = (sa1, sa0)
            return
        if site.load_kind == "po":
            position = self._po_position.get(site.sink)
            if position is None:
                raise FaultModelError(
                    f"{self.circuit.name}: branch sink PO {site.sink!r} not found"
                )
            sa1, sa0 = plan.po_pin.get(position, (0, 0))
            if fault.stuck_value == 1:
                sa1 |= mask
            else:
                sa0 |= mask
            plan.po_pin[position] = (sa1, sa0)
            return
        raise FaultModelError(
            f"branch fault with unknown load kind {site.load_kind!r}"
        )

    def compile_plan(self, faults: list[Fault]) -> InjectionPlan:
        """Compile ``faults`` into a single plan, fault ``i`` in slot ``i``."""
        if not faults:
            raise SimulationError("cannot compile an empty fault batch")
        plan = InjectionPlan()
        for slot, fault in enumerate(faults):
            self.add_fault_to_plan(plan, fault, slot)
        return plan
