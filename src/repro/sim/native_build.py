"""Lazy compilation and loading of the native C simulation kernel.

The ``native`` backend (:mod:`repro.sim.backend_native`) is backed by a
small dependency-free C file shipped inside the package
(``sim/_native/repro_kernel.c``).  Nothing is built at install time:
the first process that asks for the backend compiles the kernel with
whatever C compiler the machine has (``$CC``, then ``cc``/``gcc``/
``clang``) into a content-addressed cache directory, and every later
process — including spawned shard workers — just ``dlopen``\\ s the cached
shared object.

Unavailability is a *condition*, not an error: no compiler, a failed
build, or the ``REPRO_NO_NATIVE`` escape hatch all surface as
:func:`native_unavailable_reason` returning a string, which the backend
registry translates into "``auto`` never picks native" and
"``backend='native'`` raises a clear configuration error".  The full
test suite passes with ``REPRO_NO_NATIVE=1``.

Cache layout: ``$REPRO_NATIVE_CACHE_DIR`` (default
``~/.cache/repro-bist/native``) holds one shared object per source
digest, so editing the C file or bumping the ABI rebuilds without
clobbering concurrent users; builds land in a temp file and are
published with an atomic :func:`os.replace`, so concurrent first calls
(e.g. a spawning worker pool) race benignly.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

from repro.errors import SimulationError

#: Env knob hiding the compiled kernel entirely (tests, bisection, and
#: machines where a half-working toolchain is worse than none).
NO_NATIVE_ENV = "REPRO_NO_NATIVE"

#: Override for the shared-object cache directory.
CACHE_DIR_ENV = "REPRO_NATIVE_CACHE_DIR"

#: Python-side ABI expectation; must equal REPRO_NATIVE_ABI in the C
#: source (checked after every load, so a stale .so cannot be driven
#: with the wrong marshaling).  v2 added repro_scan; v3 added the
#: persistent thread pool and the trailing n_threads argument on
#: repro_eval/repro_detect_step/repro_scan.
NATIVE_ABI_VERSION = 3

#: Compilers tried in order when $CC is unset.
_COMPILER_CANDIDATES = ("cc", "gcc", "clang")

_SOURCE_PATH = Path(__file__).parent / "_native" / "repro_kernel.c"

# Process-level memos: the loaded library, and a sticky failure reason so
# a broken toolchain is probed once per process, not per call.
_LIBRARY: ctypes.CDLL | None = None
_BUILD_FAILURE: str | None = None


def find_compiler() -> str | None:
    """The C compiler the build will use, or ``None`` when there is none."""
    override = os.environ.get("CC")
    if override:
        return override if shutil.which(override) else None
    for candidate in _COMPILER_CANDIDATES:
        if shutil.which(candidate):
            return candidate
    return None


def toolchain_info() -> dict:
    """Compiler name/version for benchmark ``machine`` blocks."""
    compiler = find_compiler()
    if compiler is None:
        return {"compiler": None}
    try:
        probe = subprocess.run(
            [compiler, "--version"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        version = (probe.stdout or probe.stderr).splitlines()[0].strip()
    except (OSError, subprocess.TimeoutExpired, IndexError):
        version = "unknown"
    return {"compiler": compiler, "compiler_version": version}


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-bist" / "native"


def _library_path(source: bytes) -> Path:
    extra = os.environ.get("REPRO_NATIVE_CFLAGS", "")
    digest = hashlib.sha256(
        source + f"|abi={NATIVE_ABI_VERSION}|cflags={extra}".encode()
    ).hexdigest()[:16]
    return _cache_dir() / f"repro_kernel-{digest}.so"


def _compile(compiler: str, source_path: Path, target: Path) -> None:
    """Compile the kernel to ``target`` (atomic publish via temp file)."""
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        suffix=".so", prefix="repro_kernel-", dir=target.parent
    )
    os.close(fd)
    command = [
        compiler,
        "-O3",
        "-std=c11",
        "-fPIC",
        "-shared",
    ]
    if os.name != "nt":
        # The thread tier needs pthreads; Windows builds compile the
        # serial-only kernel (REPRO_HAVE_THREADS off) without the flag.
        command.append("-pthread")
    extra = os.environ.get("REPRO_NATIVE_CFLAGS")
    if extra:
        # Escape hatch for instrumented builds (the CI ThreadSanitizer
        # lane injects -fsanitize=thread -g -O1 here); folded into the
        # cache key via the digest salt below.
        command.extend(extra.split())
    command.extend(["-o", temp_name, str(source_path)])
    try:
        build = subprocess.run(
            command, capture_output=True, text=True, timeout=120
        )
        if build.returncode != 0:
            detail = (build.stderr or build.stdout or "").strip()
            raise SimulationError(
                f"native kernel build failed ({' '.join(command)}): "
                f"{detail[:500]}"
            )
        os.replace(temp_name, target)
    except (OSError, subprocess.TimeoutExpired) as error:
        raise SimulationError(
            f"native kernel build failed to run {compiler!r}: {error}"
        ) from error
    finally:
        if os.path.exists(temp_name):  # failed before the atomic publish
            os.unlink(temp_name)


def _bind(library: ctypes.CDLL) -> ctypes.CDLL:
    """Declare the exported signatures (pointers travel as raw addresses)."""
    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    library.repro_abi_version.argtypes = []
    library.repro_abi_version.restype = i64
    library.repro_threads_available.argtypes = []
    library.repro_threads_available.restype = i64
    library.repro_thread_pool_init.argtypes = [i64]
    library.repro_thread_pool_init.restype = i64
    library.repro_thread_pool_size.argtypes = []
    library.repro_thread_pool_size.restype = i64
    library.repro_thread_pool_shutdown.argtypes = []
    library.repro_thread_pool_shutdown.restype = None
    library.repro_eval.argtypes = [
        p, i64, p, p, p, p, i64, p, p, p, p, i64, p, p, p, i64, p, i64
    ]
    library.repro_eval.restype = None
    library.repro_detect_mask.argtypes = [p, i64, p, p, i64, p, p, p, p]
    library.repro_detect_mask.restype = None
    library.repro_detect_step.argtypes = [
        p, p, i64, p, i64, p, p, p, p, p, i64
    ]
    library.repro_detect_step.restype = None
    # repro_scan: 57 arguments, pointers except the size/flag integers
    # (see the C signature; ctypes releases the GIL for the whole call,
    # which is what lets concurrent serving lanes scan in parallel).
    scan_sig: list = [p] * 57
    for index in (2, 7, 12, 16, 21, 23, 26, 32, 40, 41, 43, 55, 56):
        scan_sig[index] = i64
    library.repro_scan.argtypes = scan_sig
    library.repro_scan.restype = i64
    return library


def native_unavailable_reason() -> str | None:
    """Why the native backend cannot be used right now, or ``None``.

    The :data:`NO_NATIVE_ENV` knob is re-read on every call (tests flip
    it); compiler absence and build failures stick for the process.
    """
    if os.environ.get(NO_NATIVE_ENV):
        return f"disabled via {NO_NATIVE_ENV}"
    if _LIBRARY is not None:
        return None
    if _BUILD_FAILURE is not None:
        return _BUILD_FAILURE
    if not _SOURCE_PATH.is_file():
        return f"kernel source missing at {_SOURCE_PATH}"
    if find_compiler() is None:
        return "no C compiler found (set $CC, or install cc/gcc/clang)"
    return None


def load_native_library() -> ctypes.CDLL:
    """The compiled kernel, building it on first use.

    Raises :class:`~repro.errors.SimulationError` with the
    :func:`native_unavailable_reason` when the backend cannot be
    provided; the registry turns that into graceful ``auto`` avoidance.
    """
    global _LIBRARY, _BUILD_FAILURE
    reason = native_unavailable_reason()
    if reason is not None:
        raise SimulationError(f"the 'native' simulation backend is unavailable: {reason}")
    if _LIBRARY is not None:
        return _LIBRARY
    try:
        source = _SOURCE_PATH.read_bytes()
        target = _library_path(source)
        if not target.is_file():
            compiler = find_compiler()
            assert compiler is not None  # checked by the reason gate
            _compile(compiler, _SOURCE_PATH, target)
        library = _bind(ctypes.CDLL(str(target)))
        abi = library.repro_abi_version()
        if abi != NATIVE_ABI_VERSION:
            raise SimulationError(
                f"native kernel ABI mismatch: built {abi}, expected "
                f"{NATIVE_ABI_VERSION} (clear {target.parent} and retry)"
            )
    except SimulationError as error:
        _BUILD_FAILURE = str(error)
        raise
    except OSError as error:
        _BUILD_FAILURE = f"native kernel load failed: {error}"
        raise SimulationError(_BUILD_FAILURE) from error
    _LIBRARY = library
    return library


def native_threads_available() -> bool:
    """Whether the loadable kernel was compiled with the thread pool.

    ``False`` when the native backend itself is unavailable (no
    compiler, disabled, build failure) or the platform build is
    serial-only — callers then fall back to serial execution, never an
    error.
    """
    try:
        library = load_native_library()
    except SimulationError:
        return False
    return bool(library.repro_threads_available())


def ensure_thread_pool(n_threads: int) -> int:
    """Grow the kernel's persistent thread pool to ``n_threads`` lanes.

    Returns the pool size actually available (``1`` means caller-only,
    i.e. every scan runs serially).  Idempotent and monotone: the pool
    never shrinks, and repeated calls are cheap.  Callers clamp their
    per-call ``threads`` request to the returned size so the kernel's
    busy-pool fallback stays a rare event rather than the common path.
    """
    if n_threads <= 1:
        return 1
    try:
        library = load_native_library()
    except SimulationError:
        return 1
    return int(library.repro_thread_pool_init(int(n_threads)))
