"""Detection result records shared by the simulators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.model import Fault


@dataclass(frozen=True)
class DetectionRecord:
    """Detection outcome for one fault under one sequence."""

    fault: Fault
    detected: bool
    detection_time: int | None

    def __post_init__(self) -> None:
        if self.detected and self.detection_time is None:
            raise ValueError("detected fault must carry a detection time")
        if not self.detected and self.detection_time is not None:
            raise ValueError("undetected fault cannot carry a detection time")


@dataclass
class FaultSimResult:
    """Outcome of simulating a set of faults under one sequence.

    ``detection_time[f]`` is the first time unit at which fault ``f`` was
    detected (the paper's ``udet(f)``); faults absent from the mapping were
    not detected.
    """

    sequence_length: int
    total_faults: int
    detection_time: dict[Fault, int] = field(default_factory=dict)

    @property
    def detected_faults(self) -> list[Fault]:
        return list(self.detection_time)

    @property
    def num_detected(self) -> int:
        return len(self.detection_time)

    @property
    def coverage(self) -> float:
        """Detected fraction of the simulated fault set."""
        if self.total_faults == 0:
            return 0.0
        return self.num_detected / self.total_faults

    def is_detected(self, fault: Fault) -> bool:
        return fault in self.detection_time

    def records(self, faults: list[Fault]) -> list[DetectionRecord]:
        """Per-fault records, in the order of ``faults``."""
        out = []
        for fault in faults:
            time = self.detection_time.get(fault)
            out.append(
                DetectionRecord(
                    fault=fault, detected=time is not None, detection_time=time
                )
            )
        return out
