"""Naive scalar reference simulator.

This simulator exists purely to validate the fast bit-parallel engines:
it evaluates one machine at a time with scalar ternary values and explicit
fault semantics, written for obviousness rather than speed.  The property
tests drive both implementations with random circuits, sequences and
faults and require identical detection results.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.circuit.types import GateType
from repro.core.sequence import TestSequence
from repro.faults.model import BRANCH, STEM, Fault
from repro.logic.values import ONE, X, ZERO, Ternary, ternary_not


def _eval_gate(gate_type: GateType, values: list[Ternary]) -> Ternary:
    if gate_type in (GateType.NOT, GateType.BUF):
        value = values[0]
        return ternary_not(value) if gate_type is GateType.NOT else value
    if gate_type in (GateType.AND, GateType.NAND):
        if any(v is ZERO for v in values):
            result = ZERO
        elif any(v is X for v in values):
            result = X
        else:
            result = ONE
        return ternary_not(result) if gate_type is GateType.NAND else result
    if gate_type in (GateType.OR, GateType.NOR):
        if any(v is ONE for v in values):
            result = ONE
        elif any(v is X for v in values):
            result = X
        else:
            result = ZERO
        return ternary_not(result) if gate_type is GateType.NOR else result
    # XOR / XNOR
    if any(v is X for v in values):
        return X
    parity = sum(1 for v in values if v is ONE) % 2
    result = ONE if parity else ZERO
    return ternary_not(result) if gate_type is GateType.XNOR else result


def _stuck(value: Ternary, fault: Fault | None, matches: bool) -> Ternary:
    if fault is None or not matches:
        return value
    return ONE if fault.stuck_value == 1 else ZERO


class ReferenceSimulator:
    """Obviously-correct single-machine simulator."""

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self._circuit = circuit
        self._topo = circuit.topo_order()

    def simulate(
        self, sequence: TestSequence, fault: Fault | None = None
    ) -> list[list[Ternary]]:
        """Per-time-unit primary output values (with ``fault``, if given)."""
        circuit = self._circuit
        values: dict[str, Ternary] = {}
        state: dict[str, Ternary] = {q: X for q, _ in circuit.flops}

        def stem_faulted(signal: str) -> bool:
            return (
                fault is not None
                and fault.site.kind == STEM
                and fault.site.signal == signal
            )

        def seen_value(signal: str, load_kind: str, sink: str, pin: int) -> Ternary:
            """Value of ``signal`` as seen by one specific load."""
            value = values[signal]
            if (
                fault is not None
                and fault.site.kind == BRANCH
                and fault.site.signal == signal
                and fault.site.load_kind == load_kind
                and fault.site.sink == sink
                and fault.site.pin == pin
            ):
                value = ONE if fault.stuck_value == 1 else ZERO
            return value

        po_trace: list[list[Ternary]] = []
        for vector in sequence:
            for position, pi in enumerate(circuit.inputs):
                value = ONE if vector[position] else ZERO
                values[pi] = _stuck(value, fault, stem_faulted(pi))
            for q, _ in circuit.flops:
                values[q] = _stuck(state[q], fault, stem_faulted(q))
            for gate in self._topo:
                gathered = [
                    seen_value(src, "gate", gate.output, pin)
                    for pin, src in enumerate(gate.inputs)
                ]
                result = _eval_gate(gate.gate_type, gathered)
                values[gate.output] = _stuck(
                    result, fault, stem_faulted(gate.output)
                )
            po_trace.append(
                [seen_value(po, "po", po, 0) for po in circuit.outputs]
            )
            state = {
                q: _stuck(
                    seen_value(d, "dff", q, 0), fault, False
                )
                for q, d in circuit.flops
            }
        return po_trace

    def detection_time(self, sequence: TestSequence, fault: Fault) -> int | None:
        """First time unit where ``fault`` is detected, or None."""
        good = self.simulate(sequence, fault=None)
        bad = self.simulate(sequence, fault=fault)
        for t in range(len(sequence)):
            for good_value, bad_value in zip(good[t], bad[t]):
                if good_value is X or bad_value is X:
                    continue
                if good_value is not bad_value:
                    return t
        return None

    def detects(self, sequence: TestSequence, fault: Fault) -> bool:
        return self.detection_time(sequence, fault) is not None
