"""The ``repro.Session`` facade: one object that owns execution state.

Everything PRs 1–6 built — backend resolution, the persistent
:class:`~repro.sim.workerpool.WorkerPool`, per-backend program LRUs, the
:class:`~repro.sim.trace.GoodTraceCache` — is machinery that pays for
itself when *amortized across requests*, but until this module the only
way to reach it was a kwarg soup (``backend=``, ``workers=``,
``chunking=`` threaded through configs and factories) and every consumer
hand-rolled its own ``try/finally close()``.  :class:`Session` is the
single facade in front of all of it:

* **Circuits are keyed by content hash.**  :meth:`Session.compile`
  resolves a catalog name, a :class:`~repro.circuit.netlist.Circuit` or
  inline ``.bench`` text to one shared
  :class:`~repro.sim.compiled.CompiledCircuit` per distinct netlist
  (:func:`~repro.core.request.circuit_content_hash`), so two requests
  for the same circuit — from different tenants, in any order — share
  one compiled program, one program LRU and one good-machine trace
  cache.  The second request's ``trace_stats`` show cache *hits* where
  the first showed misses: that is the cross-request warmth the serving
  layer exists for.
* **Simulators come from the session, lifecycles too.**
  :meth:`fault_simulator` / :meth:`sequence_simulator` wrap the
  ``workers=`` factories; every simulator a session (or one of its
  :meth:`scope` blocks) mints is closed exactly once when the session/scope
  closes, and closing twice is a silent no-op.  No consumer wraps its
  own ``try/finally`` anymore — :func:`use_session` hands library code
  either the caller's session (scoped, so per-call simulators are still
  reclaimed promptly) or a private one that closes on exit.
* **The machine profile overrides static thresholds.**  A session built
  with a calibrated :class:`~repro.sim.autotune.MachineProfile` resolves
  worker counts through the *measurement* instead of the static
  heuristics: ``workers=0`` ("auto") becomes the measured
  recommendation, a measured serial verdict overrides an explicit shard
  request, and a measured shard win sets ``force_shard=True`` so the
  static single-core fallback cannot undo it.  Sessions without a
  profile behave exactly like the historical factories.
* **Requests run to results.**  :meth:`Session.run` executes a
  :class:`~repro.core.request.RunRequest` (scheme or ATPG) and returns a
  :class:`~repro.core.request.RunResult` whose deterministic payload is
  bit-identical for the same request no matter the backend, worker
  count, machine or whether the call arrived over HTTP — the contract
  :mod:`repro.serve` and the CI smoke lane are built on.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.core.config import SelectionConfig
from repro.core.request import RunRequest, RunResult, circuit_content_hash
from repro.core.sequence import TestSequence
from repro.errors import ReproError
from repro.sim.autotune import MachineProfile
from repro.sim.compiled import CompiledCircuit
from repro.sim.trace import GoodTraceCache, get_trace_cache
from repro.sim.workerpool import WorkerPool, get_worker_pool
from repro.util.timing import Stopwatch


@dataclass
class RunOutcome:
    """A :class:`RunResult` plus the rich in-process objects behind it.

    ``scheme_run`` (for scheme requests) keeps the full
    :class:`~repro.core.scheme.SchemeRun` so callers like the CLI can
    render Figure 1; ``atpg`` keeps the
    :class:`~repro.atpg.engine.AtpgResult` with the actual sequence.
    Only ``result`` crosses process boundaries.
    """

    result: RunResult
    scheme_run: object | None = None
    atpg: object | None = None
    t0: TestSequence | None = None


class Session:
    """Owner of backends, pools, caches and simulator lifecycles.

    Use as a context manager::

        with repro.Session() as session:
            result = session.run(repro.RunRequest(kind="scheme", circuit="s27"))

    ``profile`` attaches a machine profile (see
    :mod:`repro.sim.autotune`); without one the session reproduces the
    historical static behaviour exactly.  Concurrent :meth:`run` calls
    from multiple threads are supported — the circuit/scheme registries
    are lock-guarded and :meth:`scope` frames are per thread — which is
    what lets :class:`repro.serve.JobService` drive N executor lanes
    over one warm session.  ``own_caches=True`` makes
    :meth:`close` also tear down the process-global worker pools and
    trace caches — the serving layer uses this so service shutdown
    releases everything; the default leaves them warm for other sessions
    (they are reclaimed ``atexit`` regardless).
    """

    def __init__(
        self,
        profile: MachineProfile | None = None,
        own_caches: bool = False,
    ) -> None:
        self._profile = profile
        self._own_caches = own_caches
        self._compiled: dict[str, CompiledCircuit] = {}
        self._schemes: dict[str, object] = {}
        self._simulators: list = []
        # Concurrent ``run`` calls (the serving layer's executor lanes)
        # share this session: the registries are lock-guarded and each
        # thread keeps its own stack of live ``scope`` frames, so one
        # lane's scope exit only closes the simulators *it* minted.
        self._lock = threading.RLock()
        self._local = threading.local()
        self._closed = False
        if profile is not None:
            # A calibrated profile's fused-vs-stepped verdicts become the
            # process default every simulator construction resolves.
            profile.apply_scan_modes()

    # ------------------------------------------------------------------
    # Profile
    # ------------------------------------------------------------------
    @property
    def profile(self) -> MachineProfile | None:
        return self._profile

    @property
    def closed(self) -> bool:
        return self._closed

    def calibrate(self, quick: bool = True, save: bool = False) -> MachineProfile:
        """Measure this machine and adopt the resulting profile."""
        from repro.sim.autotune import calibrate

        profile = calibrate(quick=quick)
        if save:
            profile.save()
        self._profile = profile
        profile.apply_scan_modes()
        return profile

    def _resolve_workers(self, workers: int | None) -> int | None:
        """Profile-aware worker resolution (pass-through without one)."""
        if self._profile is not None:
            return self._profile.resolve_workers(workers)
        return workers

    def _resolve_execution(
        self, parallel: str | None, workers: int | None
    ) -> tuple[str | None, int | None]:
        """Profile-aware ``(parallel, workers)`` tier resolution.

        An explicit tier request (``serial``/``threads``/``processes``)
        passes through untouched — the caller knows best.  ``auto`` (or
        ``None``) defers to the measured profile when one is attached:
        the profile answers both *which tier* (its measured
        serial/threads/processes crossover) and *how many lanes*.
        Without a profile, the historical workers-only resolution
        applies and the factories' static heuristics pick the tier.
        """
        if parallel is not None and parallel != "auto":
            return parallel, self._resolve_workers(workers)
        if self._profile is not None:
            return self._profile.resolve_execution(workers)
        return parallel, workers

    def _force_shard(self, workers: int | None) -> bool:
        return (
            self._profile is not None
            and self._profile.force_shard
            and (workers is None or workers == 0 or workers > 1)
        )

    # ------------------------------------------------------------------
    # Circuits (shared per content hash)
    # ------------------------------------------------------------------
    def compile(self, circuit: str | Circuit | CompiledCircuit) -> CompiledCircuit:
        """The session's shared compiled form of ``circuit``.

        Accepts a catalog name, a netlist or an already-compiled
        circuit.  Equal netlist *content* maps to one
        :class:`CompiledCircuit` object, so program LRUs and the trace
        cache are shared across every request that names it.
        """
        self._check_open()
        if isinstance(circuit, CompiledCircuit):
            # Adopt the caller's compiled object for its content hash so
            # later name/netlist lookups resolve to the same instance.
            return self._adopt(circuit)
        if isinstance(circuit, str):
            from repro.circuits.catalog import load_circuit

            circuit = load_circuit(circuit)
        key = circuit_content_hash(circuit)
        # Compiling under the lock keeps the one-object-per-content-hash
        # identity exact: two lanes racing on a cold circuit must not
        # mint two CompiledCircuits (they would split the trace cache).
        with self._lock:
            compiled = self._compiled.get(key)
            if compiled is None:
                compiled = CompiledCircuit(circuit)
                self._compiled[key] = compiled
        return compiled

    def compile_bench(self, text: str, name: str = "uploaded") -> CompiledCircuit:
        """Compile inline ``.bench`` netlist text (service uploads)."""
        from repro.circuit.bench_io import parse_bench

        return self.compile(parse_bench(text, name=name))

    def circuit_hash(self, circuit: str | Circuit | CompiledCircuit) -> str:
        """The content hash a circuit is cached under."""
        compiled = self.compile(circuit)
        return circuit_content_hash(compiled.circuit)

    def _adopt(self, compiled: CompiledCircuit) -> CompiledCircuit:
        key = circuit_content_hash(compiled.circuit)
        with self._lock:
            return self._compiled.setdefault(key, compiled)

    # ------------------------------------------------------------------
    # Simulators and shared stores
    # ------------------------------------------------------------------
    def fault_simulator(
        self,
        circuit: str | Circuit | CompiledCircuit,
        batch_width: int | None = None,
        backend: str | None = None,
        workers: int | None = None,
        parallel: str | None = None,
        **kwargs,
    ):
        """A parallel-fault simulator, lifecycle owned by this session.

        The profile (when present) resolves ``workers`` and the
        ``parallel`` tier, and supplies the measured batch width when
        the caller leaves ``batch_width`` unset; extra kwargs pass
        through to :func:`repro.sim.sharding.make_fault_simulator`.
        """
        from repro.sim.faultsim import DEFAULT_BATCH_WIDTH
        from repro.sim.sharding import make_fault_simulator

        self._check_open()
        parallel, workers = self._resolve_execution(parallel, workers)
        if self._force_shard(workers):
            kwargs.setdefault("force_shard", True)
        if batch_width is None:
            if self._profile is not None and self._profile.calibrated:
                batch_width = self._profile.fault_batch_width
            else:
                batch_width = DEFAULT_BATCH_WIDTH
        simulator = make_fault_simulator(
            self.compile(circuit),
            batch_width=batch_width,
            backend=backend,
            workers=1 if workers is None else workers,
            parallel=parallel,
            **kwargs,
        )
        return self._register(simulator)

    def sequence_simulator(
        self,
        circuit: str | Circuit | CompiledCircuit,
        batch_width: int | None = None,
        backend: str | None = None,
        workers: int | None = None,
        parallel: str | None = None,
        **kwargs,
    ):
        """A candidate-scan simulator, lifecycle owned by this session."""
        from repro.sim.seqshard import (
            DEFAULT_SEQ_BATCH_WIDTH,
            make_sequence_simulator,
        )

        self._check_open()
        parallel, workers = self._resolve_execution(parallel, workers)
        if self._force_shard(workers):
            kwargs.setdefault("force_shard", True)
        if batch_width is None:
            if self._profile is not None and self._profile.calibrated:
                batch_width = self._profile.search_batch_width
            else:
                batch_width = DEFAULT_SEQ_BATCH_WIDTH
        simulator = make_sequence_simulator(
            self.compile(circuit),
            batch_width=batch_width,
            backend=backend,
            workers=1 if workers is None else workers,
            parallel=parallel,
            **kwargs,
        )
        return self._register(simulator)

    def _register(self, simulator):
        """Track a minted simulator session-wide and in this thread's scope."""
        with self._lock:
            self._simulators.append(simulator)
        frames = getattr(self._local, "frames", None)
        if frames:
            frames[-1].append(simulator)
        return simulator

    def worker_pool(self, workers: int | None = None) -> WorkerPool:
        """The shared persistent worker pool for ``workers`` processes."""
        self._check_open()
        resolved = self._resolve_workers(workers)
        if resolved is None or resolved < 2:
            raise ReproError(
                f"a worker pool needs >= 2 workers (resolved {resolved!r}); "
                "serial execution does not use a pool"
            )
        return get_worker_pool(resolved)

    def trace_cache(self, circuit: str | Circuit | CompiledCircuit) -> GoodTraceCache:
        """The cross-request good-machine trace cache for ``circuit``."""
        self._check_open()
        return get_trace_cache(self.compile(circuit))

    # ------------------------------------------------------------------
    # Scoped lifecycles
    # ------------------------------------------------------------------
    @contextmanager
    def scope(self):
        """Close simulators minted inside the ``with`` block at its end.

        Library code runs inside a scope even when handed a long-lived
        session, so a service handling thousands of requests retires
        each request's pool contexts promptly while the pools, compiled
        circuits and trace caches stay warm.

        Scope frames are *per thread*: each serving lane stacks and pops
        its own frames, so a lane closing its request's simulators never
        touches the simulators another lane is still running on.
        """
        self._check_open()
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = self._local.frames = []
        frame: list = []
        frames.append(frame)
        try:
            yield self
        finally:
            frames.pop()
            with self._lock:
                for simulator in frame:
                    try:
                        self._simulators.remove(simulator)
                    except ValueError:
                        pass  # close() already swept the registry
            for simulator in reversed(frame):
                simulator.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("this Session is closed")

    def close(self) -> None:
        """Release everything this session owns (idempotent, never raises
        on double close — closing an already-closed pool or cache is a
        silent no-op).
        """
        if self._closed:
            return
        self._closed = True
        with self._lock:
            simulators, self._simulators = self._simulators, []
        for simulator in reversed(simulators):
            simulator.close()
        self._schemes.clear()
        self._compiled.clear()
        if self._own_caches:
            from repro.sim.trace import close_trace_caches
            from repro.sim.workerpool import close_worker_pools

            close_trace_caches()
            close_worker_pools()

    def __enter__(self) -> "Session":
        self._check_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Running requests
    # ------------------------------------------------------------------
    def run(self, request: RunRequest) -> RunResult:
        """Execute ``request`` and return its serializable result."""
        return self.run_detailed(request).result

    def run_detailed(self, request: RunRequest) -> RunOutcome:
        """Execute ``request`` keeping the rich in-process objects too."""
        from repro.sim.backend import dispatch_counters

        self._check_open()
        compiled = self._request_circuit(request)
        before = dispatch_counters()
        if request.kind == "atpg":
            outcome = self._run_atpg(request, compiled)
        else:
            outcome = self._run_scheme(request, compiled)
        # Per-run backend-boundary dispatch deltas (FFI crossings, scan
        # calls/steps) for this process.  Observability only: execution
        # is excluded from the result fingerprint, and sharded workers
        # count in their own processes.
        after = dispatch_counters()
        outcome.result.execution["dispatches"] = {
            kind: after[kind] - before.get(kind, 0)
            for kind in sorted(after)
            if after[kind] - before.get(kind, 0)
        }
        return outcome

    def _request_circuit(self, request: RunRequest) -> CompiledCircuit:
        if request.bench is not None:
            return self.compile_bench(
                request.bench, name=request.circuit or "uploaded"
            )
        return self.compile(request.circuit)

    def _scheme(self, compiled: CompiledCircuit):
        """One LoadAndExpandScheme (and fault universe) per circuit hash."""
        from repro.core.scheme import LoadAndExpandScheme

        key = circuit_content_hash(compiled.circuit)
        with self._lock:
            scheme = self._schemes.get(key)
            if scheme is None:
                scheme = LoadAndExpandScheme(compiled)
                self._schemes[key] = scheme
        return scheme

    def _execution_record(self, config) -> dict:
        effective = self._resolve_workers(config.workers)
        record = {
            "backend": config.backend,
            "parallel": getattr(config, "parallel", "auto"),
            "workers_requested": config.workers,
            "workers": config.workers if effective is None else effective,
            "profile": None if self._profile is None else self._profile.source,
        }
        if (
            self._profile is not None
            and record["workers"] != config.workers
        ):
            record["profile_override"] = (
                f"profile resolved workers {config.workers} -> "
                f"{record['workers']}"
            )
        return record

    def _t0_for_scheme(self, request: RunRequest, compiled, selection):
        from repro.atpg.config import AtpgConfig
        from repro.atpg.engine import generate_t0
        from repro.circuits.catalog import paper_t0_s27

        if request.use_paper_t0 and compiled.circuit.name == "s27":
            return paper_t0_s27(), None
        atpg_config = request.atpg or AtpgConfig(
            backend=selection.backend,
            workers=selection.workers,
            chunking=selection.chunking,
            parallel=selection.parallel,
        )
        atpg_result = generate_t0(compiled, atpg_config, session=self)
        return atpg_result.sequence, atpg_result

    def _run_scheme(self, request: RunRequest, compiled) -> RunOutcome:
        selection_config = request.selection or SelectionConfig()
        t0, atpg_result = self._t0_for_scheme(request, compiled, selection_config)
        scheme = self._scheme(compiled)
        run = scheme.run(t0, selection_config, session=self)
        res = run.result
        data = {
            "n": res.repetitions,
            "total_faults": res.total_faults,
            "detected_by_t0": res.detected_by_t0,
            "detected_by_scheme": res.detected_by_scheme,
            "t0_length": res.t0_length,
            "t0": list(t0.to_strings()),
            "num_sequences_before": res.num_sequences_before,
            "total_length_before": res.total_length_before,
            "max_length_before": res.max_length_before,
            "num_sequences_after": res.num_sequences_after,
            "total_length_after": res.total_length_after,
            "max_length_after": res.max_length_after,
            "applied_test_length": res.applied_test_length,
            "coverage_preserved": res.coverage_preserved,
            "sequences": [
                list(entry.sequence.to_strings())
                for entry in run.selection.sequences
            ],
        }
        result = RunResult(
            kind="scheme",
            circuit_name=res.circuit_name,
            circuit_hash=circuit_content_hash(compiled.circuit),
            data=data,
            execution=self._execution_record(selection_config),
            timings={
                "t0_simulation_seconds": res.t0_simulation_seconds,
                "procedure1_seconds": res.procedure1_seconds,
                "compaction_seconds": res.compaction_seconds,
            },
            trace_stats=dict(run.trace_stats or {}),
            label=request.label,
        )
        return RunOutcome(
            result=result, scheme_run=run, atpg=atpg_result, t0=t0
        )

    def _run_atpg(self, request: RunRequest, compiled) -> RunOutcome:
        from repro.atpg.config import AtpgConfig
        from repro.atpg.engine import generate_t0

        config = request.atpg or AtpgConfig()
        watch = Stopwatch().start()
        atpg_result = generate_t0(compiled, config, session=self)
        seconds = watch.stop()
        data = {
            "total_faults": atpg_result.total_faults,
            "detected": atpg_result.detected,
            "detected_random": atpg_result.detected_random,
            "detected_greedy": atpg_result.detected_greedy,
            "detected_genetic": atpg_result.detected_genetic,
            "length": atpg_result.length,
            "sequence": list(atpg_result.sequence.to_strings()),
            "phase_log": list(atpg_result.phase_log),
        }
        result = RunResult(
            kind="atpg",
            circuit_name=atpg_result.circuit_name,
            circuit_hash=circuit_content_hash(compiled.circuit),
            data=data,
            execution=self._execution_record(config),
            timings={"atpg_seconds": seconds},
            trace_stats=self.trace_cache(compiled).stats(),
            label=request.label,
        )
        return RunOutcome(result=result, atpg=atpg_result, t0=atpg_result.sequence)


@contextmanager
def use_session(session: Session | None = None):
    """The lifecycle seam library code runs its simulators under.

    With a caller-provided session, yields it inside a :meth:`Session.scope`
    (the caller keeps ownership; this call's simulators are still
    reclaimed at exit).  Without one, creates a private session that
    closes — simulators and all — when the block ends.  Either way the
    consumer writes no ``try/finally``.
    """
    if session is not None:
        with session.scope():
            yield session
        return
    private = Session()
    try:
        yield private
    finally:
        private.close()
