"""Procedure 1: the overall subsequence selection loop.

Simulate ``T0`` to obtain the detected fault set ``F`` and first-detection
times ``udet``; then repeatedly target the not-yet-covered fault with the
highest ``udet`` (hard faults give long, productive subsequences), build a
subsequence for it with Procedure 2, and fault-simulate its expanded
version to drop every newly covered fault, until the expanded selections
cover all of ``F``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit
from repro.core.config import SelectionConfig
from repro.core.ops import expand, expanded_length
from repro.core.procedure2 import build_subsequence_for_fault
from repro.core.sequence import TestSequence
from repro.errors import SelectionError
from repro.faults.model import Fault
from repro.faults.universe import FaultUniverse
from repro.core.session import Session, use_session
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator


@dataclass
class SelectedSequence:
    """One member of the selected set ``S`` with its provenance."""

    index: int
    sequence: TestSequence
    target_fault: Fault
    ustart: int
    udet: int
    window_length: int
    omitted_vectors: int
    faults_detected_when_added: int

    @property
    def length(self) -> int:
        return len(self.sequence)


@dataclass
class SelectionResult:
    """Outcome of Procedure 1 (the set ``S`` before postprocessing)."""

    circuit_name: str
    config: SelectionConfig
    t0_length: int
    total_faults: int
    detected_by_t0: int
    udet: dict[Fault, int]
    sequences: list[SelectedSequence] = field(default_factory=list)
    candidates_simulated: int = 0
    #: Faults no expanded window can detect.  Always empty for the paper's
    #: operator sets (expansion starts with a verbatim copy of S, so the
    #: full T0 prefix is a guaranteed fallback); can be non-empty for the
    #: hold-cycles extension, which rewrites the applied sequence.
    uncoverable: list[Fault] = field(default_factory=list)

    @property
    def num_sequences(self) -> int:
        return len(self.sequences)

    @property
    def total_length(self) -> int:
        """Total loaded length — the paper's ``tot len`` column."""
        return sum(len(s.sequence) for s in self.sequences)

    @property
    def max_length(self) -> int:
        """Longest loaded sequence — the paper's ``max len`` column."""
        return max((len(s.sequence) for s in self.sequences), default=0)

    @property
    def applied_test_length(self) -> int:
        """Total at-speed vectors applied — the paper's ``test len`` (8nL)."""
        return expanded_length(self.total_length, self.config.expansion)

    def test_sequences(self) -> list[TestSequence]:
        return [s.sequence for s in self.sequences]


def simulate_t0(
    fault_simulator: FaultSimulator,
    universe: FaultUniverse,
    t0: TestSequence,
) -> dict[Fault, int]:
    """Step 1 of Procedure 1: ``udet`` for every fault ``T0`` detects."""
    result = fault_simulator.run(t0, list(universe.faults()))
    return dict(result.detection_time)


def select_subsequences(
    circuit: Circuit | CompiledCircuit,
    t0: TestSequence,
    config: SelectionConfig | None = None,
    universe: FaultUniverse | None = None,
    precomputed_udet: dict[Fault, int] | None = None,
    session: Session | None = None,
) -> SelectionResult:
    """Run Procedure 1 and return the selected set ``S``."""
    config = config or SelectionConfig()
    compiled = (
        circuit if isinstance(circuit, CompiledCircuit) else CompiledCircuit(circuit)
    )
    if universe is None:
        universe = FaultUniverse(compiled.circuit)
    with use_session(session) as sess:
        fault_simulator = sess.fault_simulator(
            compiled,
            batch_width=config.fault_batch_width,
            backend=config.backend,
            workers=config.workers,
            parallel=config.parallel,
        )
        sequence_simulator = sess.sequence_simulator(
            compiled,
            batch_width=config.omission_batch_width,
            backend=config.backend,
            workers=config.workers,
            chunking=config.chunking,
            parallel=config.parallel,
        )
        if precomputed_udet is None:
            udet = simulate_t0(fault_simulator, universe, t0)
        else:
            udet = dict(precomputed_udet)

        result = SelectionResult(
            circuit_name=compiled.circuit.name,
            config=config,
            t0_length=len(t0),
            total_faults=len(universe),
            detected_by_t0=len(udet),
            udet=udet,
        )
        # Ftarg ordered: highest udet first; ties broken by universe id so the
        # procedure is deterministic.
        targets = sorted(
            udet, key=lambda fault: (-udet[fault], universe.id_of(fault))
        )
        remaining: set[Fault] = set(targets)

        iteration = 0
        while remaining:
            target = next(fault for fault in targets if fault in remaining)
            try:
                sub = build_subsequence_for_fault(
                    sequence_simulator,
                    t0,
                    target,
                    udet[target],
                    config,
                    fault_salt=universe.id_of(target),
                )
            except SelectionError:
                if config.expansion.hold_cycles == 1:
                    # The guarantee holds for the paper's operator sets; a
                    # failure here means a simulator bug, not a hard fault.
                    raise
                result.uncoverable.append(target)
                remaining.discard(target)
                continue
            result.candidates_simulated += sub.candidates_simulated
            expanded = expand(sub.subsequence, config.expansion)
            sim = fault_simulator.run(expanded, [f for f in targets if f in remaining])
            newly_detected = set(sim.detection_time)
            if target not in newly_detected:
                raise SelectionError(
                    f"{compiled.circuit.name}: expanded subsequence for {target} "
                    "does not detect its own target fault — simulator inconsistency"
                )
            result.sequences.append(
                SelectedSequence(
                    index=iteration,
                    sequence=sub.subsequence,
                    target_fault=target,
                    ustart=sub.ustart,
                    udet=sub.udet,
                    window_length=sub.window_length,
                    omitted_vectors=sub.omitted_vectors,
                    faults_detected_when_added=len(newly_detected),
                )
            )
            remaining -= newly_detected
            iteration += 1
        return result
