"""The paper's contribution: subsequence selection and on-chip expansion.

Public entry points:

* :class:`~repro.core.sequence.TestSequence` — an input sequence.
* :func:`~repro.core.ops.expand` — the Section 2 expansion function.
* :class:`~repro.core.scheme.LoadAndExpandScheme` — end-to-end Procedure 1
  + Procedure 2 + static compaction, producing a
  :class:`~repro.core.scheme.SchemeResult`.
"""

from repro.core.sequence import TestSequence
from repro.core.ops import (
    ExpansionConfig,
    complement,
    concat,
    expand,
    expanded_length,
    hold,
    repeat,
    reverse,
    shift_left,
)
from repro.core.config import SelectionConfig
from repro.core.procedure2 import build_subsequence_for_fault
from repro.core.procedure1 import select_subsequences, SelectionResult
from repro.core.postprocess import statically_compact
from repro.core.scheme import LoadAndExpandScheme, SchemeResult

__all__ = [
    "TestSequence",
    "ExpansionConfig",
    "complement",
    "concat",
    "expand",
    "expanded_length",
    "hold",
    "repeat",
    "reverse",
    "shift_left",
    "SelectionConfig",
    "build_subsequence_for_fault",
    "select_subsequences",
    "SelectionResult",
    "statically_compact",
    "LoadAndExpandScheme",
    "SchemeResult",
]
