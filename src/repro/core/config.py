"""Configuration records for the selection procedures."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.ops import ExpansionConfig
from repro.sim.backend import AUTO_BACKEND, DEFAULT_BACKEND, available_backends
from repro.sim.scanplan import CHUNKING_MODES, DEFAULT_CHUNKING
from repro.sim.workerpool import PARALLEL_MODES

#: Batch widths tuned per backend: (search, omission, fault).  The big-int
#: kernel peaks near a couple hundred slots; the vectorized numpy engine
#: amortizes per-pass dispatch only with wide batches.  Widths never
#: change results (batching is order-preserving), only speed.
_BACKEND_BATCH_WIDTHS: dict[str, tuple[int, int, int]] = {
    "python": (32, 96, 192),
    "numpy": (128, 256, 1024),
}


@dataclass(frozen=True)
class SelectionConfig:
    """Parameters of Procedures 1 and 2 and their simulation batching.

    Attributes:
        expansion: the expansion function parameters (the paper's ``n``
            and the operator set).
        seed: master seed for the random omission order of Procedure 2.
            Every fault gets an independent deterministic substream, so
            results do not depend on the order faults are processed in.
        search_batch_width: how many ``ustart`` candidates Procedure 2
            simulates per bit-parallel pass.
        omission_batch_width: how many single-vector omissions Procedure 2
            simulates per bit-parallel pass.
        fault_batch_width: slots per pass in parallel-fault simulations.
        skip_omission: disable the vector-omission phase of Procedure 2
            (ablation switch; the paper always runs it).
        backend: simulation backend name (see
            :func:`repro.sim.backend.available_backends`), or ``"auto"``
            to pick python vs numpy per circuit size and batch width;
            detection results are bit-identical across backends, only
            speed differs.
        workers: worker processes (or thread lanes, under
            ``parallel="threads"``) for distributed simulation on *both*
            hot axes — parallel-fault simulation
            (:mod:`repro.sim.sharding`) and Procedure 2's candidate
            detection (:mod:`repro.sim.seqshard`), which share one
            persistent worker pool per session.  ``1`` is serial, ``0``
            means one per CPU.  Like backends and batch widths, worker
            counts never change results, only throughput (small fault
            universes and candidate sets always run serially).
        parallel: work-distribution tier for multi-worker simulation
            (see :data:`repro.sim.workerpool.PARALLEL_MODES`) —
            ``"auto"`` (default: measured profile / heuristics decide),
            ``"serial"``, ``"threads"`` (in-kernel word-span lanes
            inside one process, native backend), or ``"processes"``
            (the shard pool).  Results are bit-identical across tiers.
        chunking: how a sharded candidate scan is cut into worker
            chunks — ``"cost"`` (default: equal simulated-step budgets
            per chunk, balancing Procedure 2's linearly-growing window
            ramps) or ``"count"`` (the historical equal-candidate plan).
            See :mod:`repro.sim.scanplan`.  Pure throughput knob:
            selected subsequences and ``candidates_simulated`` are
            bit-identical either way, for any worker count.
    """

    expansion: ExpansionConfig = field(default_factory=ExpansionConfig)
    seed: int = 1999
    search_batch_width: int = 32
    omission_batch_width: int = 96
    fault_batch_width: int = 192
    skip_omission: bool = False
    backend: str = DEFAULT_BACKEND
    workers: int = 1
    chunking: str = DEFAULT_CHUNKING
    parallel: str = "auto"

    def __post_init__(self) -> None:
        if self.parallel not in PARALLEL_MODES:
            raise ValueError(
                f"parallel must be one of {PARALLEL_MODES}, got "
                f"{self.parallel!r}"
            )
        if self.search_batch_width < 1:
            raise ValueError("search_batch_width must be >= 1")
        if self.omission_batch_width < 1:
            raise ValueError("omission_batch_width must be >= 1")
        if self.fault_batch_width < 1:
            raise ValueError("fault_batch_width must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per CPU)")
        if self.chunking not in CHUNKING_MODES:
            raise ValueError(
                f"chunking must be one of {CHUNKING_MODES}, got "
                f"{self.chunking!r}"
            )

    @classmethod
    def for_backend(
        cls,
        backend: str,
        expansion: ExpansionConfig | None = None,
        seed: int = 1999,
        skip_omission: bool = False,
        workers: int = 1,
        chunking: str = DEFAULT_CHUNKING,
        parallel: str = "auto",
    ) -> "SelectionConfig":
        """A config with batch widths tuned to ``backend``.

        Detection results are identical for any widths; this only picks
        the throughput sweet spot of the selected engine.  For
        ``backend="auto"`` the widths follow the best engine the adaptive
        selector could resolve to (``numpy`` when importable) and act as
        *caps*: each simulator resolves python vs numpy from its circuit
        and axis, and clamps the width back to the big-int sweet spot
        whenever python wins (see
        :func:`repro.sim.backend.resolve_auto`).
        """
        width_key = backend
        if backend == AUTO_BACKEND:
            width_key = "numpy" if "numpy" in available_backends() else "python"
        search, omission, fault = _BACKEND_BATCH_WIDTHS.get(
            width_key, _BACKEND_BATCH_WIDTHS[DEFAULT_BACKEND]
        )
        return cls(
            expansion=expansion or ExpansionConfig(),
            seed=seed,
            search_batch_width=search,
            omission_batch_width=omission,
            fault_batch_width=fault,
            skip_omission=skip_omission,
            backend=backend,
            workers=workers,
            chunking=chunking,
            parallel=parallel,
        )

    def with_repetitions(self, repetitions: int) -> "SelectionConfig":
        """A copy with a different expansion repetition count ``n``."""
        expansion = ExpansionConfig(
            repetitions=repetitions,
            use_complement=self.expansion.use_complement,
            use_shift=self.expansion.use_shift,
            use_reverse=self.expansion.use_reverse,
        )
        return dataclasses.replace(self, expansion=expansion)

    # ------------------------------------------------------------------
    # Round-trips: JSON (the service wire format) and CLI namespaces
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Plain-dict form; nested :class:`ExpansionConfig` nests as a dict."""
        payload = dataclasses.asdict(self)
        payload["expansion"] = self.expansion.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "SelectionConfig":
        """Inverse of :meth:`to_json` (validation re-runs in __post_init__)."""
        data = dict(payload)
        expansion = data.pop("expansion", None)
        if expansion is not None and not isinstance(expansion, ExpansionConfig):
            expansion = ExpansionConfig.from_json(expansion)
        return cls(expansion=expansion or ExpansionConfig(), **data)

    @classmethod
    def from_cli_args(cls, args) -> "SelectionConfig":
        """Build from an argparse namespace carrying the shared CLI flags.

        Reads ``backend`` / ``workers`` / ``chunking`` / ``seed`` and the
        optional ``n`` (expansion repetitions); widths come from
        :meth:`for_backend`'s per-engine tuning.  This is the single
        flag-to-config path every CLI subcommand shares.
        """
        expansion = None
        n = getattr(args, "n", None)
        if n is not None:
            expansion = ExpansionConfig(repetitions=n)
        return cls.for_backend(
            args.backend,
            expansion=expansion,
            seed=getattr(args, "seed", 1999),
            workers=args.workers,
            chunking=args.chunking,
            parallel=getattr(args, "parallel", "auto"),
        )
