"""Sequence manipulations and the expansion function (paper Section 2).

The four primitive operations — repetition, complementation, circular left
shift, reversal — are chosen because each has a trivial hardware
realization next to the on-chip test memory:

* repetition — a counter incremented when the address counter wraps;
* complementation — inverters plus a 2:1 mux per memory output;
* shifting — a mux per output selecting output ``(i+1) mod m``;
* reversal — running the address counter in down mode.

The combined expansion (paper, end of Section 2)::

    S'exp   = S^n                       (n repetitions)
    S''exp  = S'exp  . comp(S'exp)
    S'''exp = S''exp . (S''exp << 1)
    Sexp    = S'''exp . reverse(S'''exp)

giving ``len(Sexp) == 8 * n * len(S)`` — the figure used in Table 5's
``test len`` column.  :class:`ExpansionConfig` also supports disabling
individual stages, which the ablation benchmarks use to measure how much
each operator contributes to coverage.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.sequence import TestSequence


def repeat(sequence: TestSequence, times: int) -> TestSequence:
    """``S^times``: the sequence repeated ``times`` times."""
    if times < 1:
        raise ValueError(f"repetition count must be >= 1, got {times}")
    return TestSequence(sequence.vectors() * times)


def hold(sequence: TestSequence, times: int) -> TestSequence:
    """Each vector applied ``times`` consecutive clock cycles.

    An *extension* operator (not used by the paper's evaluation): holding
    input vectors is the coverage-boosting manipulation of Nachman et al.
    [3], which the paper cites as prior art.  In hardware it is a hold
    counter gating the address counter.  ``hold(S, 1) == S``.
    """
    if times < 1:
        raise ValueError(f"hold count must be >= 1, got {times}")
    if times == 1:
        return sequence
    held = []
    for vector in sequence.vectors():
        held.extend([vector] * times)
    return TestSequence(held)


def complement(sequence: TestSequence) -> TestSequence:
    """Complement every bit of every vector."""
    return TestSequence(
        tuple(1 - bit for bit in vector) for vector in sequence.vectors()
    )


def shift_left(sequence: TestSequence, positions: int = 1) -> TestSequence:
    """Circular left shift of every vector by ``positions``.

    Bit 0 is the most significant (leftmost) position, as in the paper:
    output ``i`` takes the value of output ``(i + positions) mod m``.
    """
    width = sequence.width
    if width == 0:
        return sequence
    offset = positions % width
    return TestSequence(
        tuple(vector[(i + offset) % width] for i in range(width))
        for vector in sequence.vectors()
    )


def reverse(sequence: TestSequence) -> TestSequence:
    """``rS``: the vectors in reverse order."""
    return TestSequence(reversed(sequence.vectors()))


def concat(*sequences: TestSequence) -> TestSequence:
    """Concatenate sequences left to right."""
    vectors: tuple[tuple[int, ...], ...] = ()
    for sequence in sequences:
        vectors = vectors + sequence.vectors()
    return TestSequence(vectors)


@dataclass(frozen=True)
class ExpansionConfig:
    """Parameters of the expansion function.

    ``repetitions`` is the paper's ``n``.  The three ``use_*`` flags enable
    the complementation, shift and reversal stages; the paper always uses
    all three (the default), and the ablation benchmarks turn them off
    selectively.  ``hold_cycles`` is an extension beyond the paper (see
    :func:`hold`): each loaded vector is applied for that many consecutive
    clock cycles before the other operators; 1 (the default) reproduces
    the paper exactly.
    """

    repetitions: int = 2
    use_complement: bool = True
    use_shift: bool = True
    use_reverse: bool = True
    hold_cycles: int = 1

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        if self.hold_cycles < 1:
            raise ValueError(
                f"hold_cycles must be >= 1, got {self.hold_cycles}"
            )

    @property
    def length_multiplier(self) -> int:
        """``len(expand(S)) / len(S)`` for this configuration."""
        factor = self.repetitions * self.hold_cycles
        if self.use_complement:
            factor *= 2
        if self.use_shift:
            factor *= 2
        if self.use_reverse:
            factor *= 2
        return factor

    def to_json(self) -> dict:
        """Plain-dict form for the request/result JSON round-trip."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "ExpansionConfig":
        """Inverse of :meth:`to_json`; unknown keys are rejected."""
        return cls(**payload)


def expand(sequence: TestSequence, config: ExpansionConfig) -> TestSequence:
    """Compute ``Sexp`` from ``S`` (paper Section 2, Table 1)."""
    if len(sequence) == 0:
        return sequence
    stage = hold(sequence, config.hold_cycles)
    stage = repeat(stage, config.repetitions)
    if config.use_complement:
        stage = concat(stage, complement(stage))
    if config.use_shift:
        stage = concat(stage, shift_left(stage, 1))
    if config.use_reverse:
        stage = concat(stage, reverse(stage))
    return stage


def expanded_length(loaded_length: int, config: ExpansionConfig) -> int:
    """Length of the expanded version of a loaded sequence of given length.

    With the full operator set this is the paper's ``8 n L``.
    """
    return loaded_length * config.length_multiplier
