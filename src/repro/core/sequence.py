"""Test sequences: ordered lists of binary input vectors.

A :class:`TestSequence` is the unit of data the whole library moves around:
the deterministic sequence ``T0``, the selected subsequences ``S``, and the
expanded sequences ``Sexp`` are all instances.  Vectors are fully specified
(binary); bit ``i`` of a vector drives primary input ``i`` of the circuit.

The class is immutable: every manipulation returns a new sequence.  This
matches how the paper treats sequences (values, not buffers) and makes the
expansion operators trivially safe to compose.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence


class TestSequence:
    """An immutable sequence of binary input vectors of uniform width."""

    __slots__ = ("_vectors", "_width")

    #: Tell pytest this is a library class, not a test case collection.
    __test__ = False

    def __init__(self, vectors: Iterable[Sequence[int]]) -> None:
        materialized = tuple(tuple(int(bit) for bit in vector) for vector in vectors)
        for vector in materialized:
            for bit in vector:
                if bit not in (0, 1):
                    raise ValueError(f"test vector bit must be 0 or 1, got {bit}")
        if materialized:
            width = len(materialized[0])
            for vector in materialized:
                if len(vector) != width:
                    raise ValueError(
                        f"inconsistent vector widths: {len(vector)} vs {width}"
                    )
        else:
            width = 0
        self._vectors = materialized
        self._width = width

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(cls, rows: Iterable[str]) -> "TestSequence":
        """Build from strings like ``["0111", "1001"]``."""
        return cls([[int(ch) for ch in row] for row in rows])

    @classmethod
    def empty(cls, width: int = 0) -> "TestSequence":
        """An empty sequence (width is advisory; empty sequences match any)."""
        seq = cls([])
        seq._width = width
        return seq

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of bits per vector (the circuit's primary input count)."""
        return self._width

    def __len__(self) -> int:
        return len(self._vectors)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._vectors)

    def __getitem__(self, index: int) -> tuple[int, ...]:
        return self._vectors[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TestSequence):
            return NotImplemented
        return self._vectors == other._vectors

    def __hash__(self) -> int:
        return hash(self._vectors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if len(self) <= 4:
            body = ", ".join(self.to_strings())
        else:
            shown = ", ".join(self.to_strings()[:3])
            body = f"{shown}, ... {len(self)} vectors"
        return f"TestSequence([{body}])"

    def to_strings(self) -> list[str]:
        """Render each vector as a bit string (paper Table 1/2 style)."""
        return ["".join(str(bit) for bit in vector) for vector in self._vectors]

    def vectors(self) -> tuple[tuple[int, ...], ...]:
        """The raw tuple-of-tuples payload."""
        return self._vectors

    # ------------------------------------------------------------------
    # Subsequence operations used by Procedures 1 and 2
    # ------------------------------------------------------------------
    def subsequence(self, start: int, end: int) -> "TestSequence":
        """The paper's ``T0[u1, u2]``: time units ``start..end`` inclusive."""
        if start < 0 or end >= len(self) or start > end:
            raise IndexError(
                f"subsequence [{start}, {end}] out of range for length {len(self)}"
            )
        return TestSequence(self._vectors[start : end + 1])

    def omit(self, index: int) -> "TestSequence":
        """A copy with the vector at ``index`` removed (Procedure 2 step 7)."""
        if not 0 <= index < len(self):
            raise IndexError(f"omit index {index} out of range")
        return TestSequence(self._vectors[:index] + self._vectors[index + 1 :])

    def append(self, vector: Sequence[int]) -> "TestSequence":
        """A copy with ``vector`` appended (used by the ATPG)."""
        return TestSequence(self._vectors + (tuple(int(b) for b in vector),))

    def extend(self, other: "TestSequence") -> "TestSequence":
        """Concatenation (alias of :func:`repro.core.ops.concat`)."""
        if len(self) and len(other) and self.width != other.width:
            raise ValueError(
                f"cannot concatenate width {self.width} with width {other.width}"
            )
        return TestSequence(self._vectors + other._vectors)
