"""The unified request/result records every execution surface shares.

Before this module, "run the scheme" meant something different at every
layer: the CLI threaded ``--backend``/``--workers``/``--chunking`` flags
into ad-hoc config constructions, the harness took loose kwargs, the
examples built configs by hand, and nothing could be serialized, queued
or replayed.  :class:`RunRequest` and :class:`RunResult` are the one
vocabulary all of them now speak:

* a **request** names a circuit (catalog name or inline ``.bench``
  text), what to run (``"scheme"`` or ``"atpg"``) and the full config
  objects — no scattered kwargs — and round-trips through JSON, so the
  CLI, the test harness, the examples and the HTTP service all construct
  and ship the very same object;
* a **result** separates the *deterministic* payload (``data`` — every
  number the paper's tables report, plus the selected sequences
  themselves) from machine-dependent observability (``timings``,
  ``trace_stats``, ``execution``), and :meth:`RunResult.fingerprint`
  hashes only the deterministic part — two runs of one request are
  bit-identical exactly when their fingerprints match, which is the
  parity contract the serving tests and CI smoke lane assert.

Circuits are identified across processes and requests by
:func:`circuit_content_hash` — a digest of the canonical ``.bench``
serialization — which is also the key the session facade uses to share
compiled circuits, program LRUs and good-machine trace caches between
requests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.circuit.bench_io import write_bench
from repro.circuit.netlist import Circuit
from repro.core.config import SelectionConfig
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (atpg -> session -> here)
    from repro.atpg.config import AtpgConfig

#: Request kinds :class:`RunRequest` accepts.
RUN_KINDS = ("scheme", "atpg")


def circuit_content_hash(circuit: Circuit) -> str:
    """Content digest of a circuit's canonical ``.bench`` serialization.

    Equal netlists hash equal no matter how they were loaded (catalog
    name, file, inline text), so cross-request caches keyed by this hash
    are shared by every client that submits the same circuit.
    """
    return hashlib.sha256(write_bench(circuit).encode("utf-8")).hexdigest()


def canonical_json(payload) -> str:
    """Deterministic JSON text (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunRequest:
    """Everything needed to run one job, as one serializable value.

    Attributes:
        kind: ``"scheme"`` (the paper's load-and-expand flow) or
            ``"atpg"`` (generate ``T0`` only).
        circuit: catalog circuit name (``repro.circuits.load_circuit``);
            empty when ``bench`` carries an inline netlist.
        bench: inline ``.bench`` netlist text, for circuits outside the
            catalog — what a service client uploads.
        selection: Procedure 1/2 parameters for ``kind="scheme"``
            (defaults to :class:`SelectionConfig()`).
        atpg: ``T0``-generation parameters — the whole job for
            ``kind="atpg"``, the T0 source for scheme runs that need one.
        use_paper_t0: for ``s27`` scheme runs, use the paper's published
            ``T0`` (Table 2) instead of running ATPG.
        label: free-form client tag, echoed into the result.
    """

    kind: str
    circuit: str = ""
    bench: str | None = None
    selection: SelectionConfig | None = None
    atpg: AtpgConfig | None = None
    use_paper_t0: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in RUN_KINDS:
            raise ReproError(
                f"unknown run kind {self.kind!r}; expected one of {RUN_KINDS}"
            )
        if not self.circuit and not self.bench:
            raise ReproError(
                "a RunRequest needs a catalog circuit name or inline bench text"
            )

    def with_workers(self, workers: int) -> "RunRequest":
        """A copy with both configs' worker counts replaced (planning)."""
        selection = self.selection
        if selection is not None and selection.workers != workers:
            selection = replace(selection, workers=workers)
        atpg = self.atpg
        if atpg is not None and atpg.workers != workers:
            atpg = replace(atpg, workers=workers)
        return replace(self, selection=selection, atpg=atpg)

    def with_parallel(self, parallel: str) -> "RunRequest":
        """A copy with both configs' distribution tiers replaced (planning)."""
        selection = self.selection
        if selection is not None and selection.parallel != parallel:
            selection = replace(selection, parallel=parallel)
        atpg = self.atpg
        if atpg is not None and atpg.parallel != parallel:
            atpg = replace(atpg, parallel=parallel)
        return replace(self, selection=selection, atpg=atpg)

    # ------------------------------------------------------------------
    # JSON round-trip (the service wire format)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "circuit": self.circuit,
            "bench": self.bench,
            "selection": None if self.selection is None else self.selection.to_json(),
            "atpg": None if self.atpg is None else self.atpg.to_json(),
            "use_paper_t0": self.use_paper_t0,
            "label": self.label,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RunRequest":
        from repro.atpg.config import AtpgConfig

        data = dict(payload)
        selection = data.get("selection")
        if selection is not None and not isinstance(selection, SelectionConfig):
            data["selection"] = SelectionConfig.from_json(selection)
        atpg = data.get("atpg")
        if atpg is not None and not isinstance(atpg, AtpgConfig):
            data["atpg"] = AtpgConfig.from_json(atpg)
        return cls(**data)


@dataclass(frozen=True)
class RunResult:
    """One job's outcome: deterministic payload plus observability.

    ``data`` holds everything that is a pure function of the request —
    detection counts, selected/compacted sequence sets (as vector
    strings), lengths, ratios.  ``execution`` records what actually ran
    (backend, workers, batch widths, whether a machine profile overrode
    the request), ``timings`` the wall-clock seconds per phase and
    ``trace_stats`` the good-machine trace-cache counters at completion —
    all machine-dependent, all excluded from :meth:`fingerprint`.
    """

    kind: str
    circuit_name: str
    circuit_hash: str
    data: dict = field(default_factory=dict)
    execution: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)
    trace_stats: dict = field(default_factory=dict)
    label: str = ""

    def fingerprint(self) -> str:
        """Digest of the deterministic payload only.

        Two runs of the same request — any backend, any worker count,
        any machine, served or direct — must produce equal fingerprints;
        this is the bit-identity contract the serving tests assert.
        """
        body = canonical_json(
            {
                "kind": self.kind,
                "circuit_name": self.circuit_name,
                "circuit_hash": self.circuit_hash,
                "data": self.data,
            }
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "circuit_name": self.circuit_name,
            "circuit_hash": self.circuit_hash,
            "data": self.data,
            "execution": self.execution,
            "timings": self.timings,
            "trace_stats": self.trace_stats,
            "label": self.label,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RunResult":
        data = dict(payload)
        claimed = data.pop("fingerprint", None)
        result = cls(**data)
        if claimed is not None and claimed != result.fingerprint():
            raise ReproError(
                "RunResult payload does not match its claimed fingerprint"
            )
        return result
