"""End-to-end orchestration of the load-and-expand BIST scheme.

:class:`LoadAndExpandScheme` glues the pieces together the way Section 4
of the paper runs its experiments:

1. fault-simulate ``T0`` (timed — the normalization baseline of Table 4);
2. Procedure 1 (timed) — gives the set ``S`` *before* compaction;
3. static compaction of ``S`` (timed) — gives the final set;
4. verify the full-coverage invariant: the union of faults detected by
   the expanded final sequences equals the faults detected by ``T0``.

All steps share one :class:`~repro.sim.trace.GoodTraceCache` keyed on
the scheme's compiled circuit, so the fault-free trace of ``T0`` (and of
each expanded selection) is simulated once for the whole run — step 1
computes it, Procedure 1's ``precomputed_udet`` path and the
verification sweep reuse it.  :class:`SchemeRun` records the cache's
hit/miss counters for observability.

The returned :class:`SchemeResult` carries every column of the paper's
Tables 3, 4 and 5 for one ``(circuit, n)`` run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.core.config import SelectionConfig
from repro.core.ops import expand
from repro.core.postprocess import CompactionResult, statically_compact
from repro.core.procedure1 import SelectionResult, select_subsequences, simulate_t0
from repro.core.sequence import TestSequence
from repro.errors import SelectionError
from repro.core.session import Session, use_session
from repro.faults.model import Fault
from repro.faults.universe import FaultUniverse
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator
from repro.util.timing import Stopwatch


@dataclass
class SchemeResult:
    """All reported quantities for one circuit at one ``n``."""

    circuit_name: str
    config: SelectionConfig
    total_faults: int
    detected_by_t0: int
    t0_length: int
    # Before static compaction of S:
    num_sequences_before: int
    total_length_before: int
    max_length_before: int
    # After static compaction of S:
    num_sequences_after: int
    total_length_after: int
    max_length_after: int
    applied_test_length: int
    coverage_preserved: bool
    detected_by_scheme: int
    # Timing (seconds, and the paper's normalized form):
    t0_simulation_seconds: float
    procedure1_seconds: float
    compaction_seconds: float

    @property
    def repetitions(self) -> int:
        return self.config.expansion.repetitions

    @property
    def total_ratio(self) -> float:
        """Table 5: total loaded length / len(T0)."""
        return self.total_length_after / self.t0_length if self.t0_length else 0.0

    @property
    def max_ratio(self) -> float:
        """Table 5: max loaded length / len(T0)."""
        return self.max_length_after / self.t0_length if self.t0_length else 0.0

    @property
    def normalized_procedure1_time(self) -> float:
        """Table 4: Procedure 1 time / T0 simulation time."""
        if self.t0_simulation_seconds == 0:
            return 0.0
        return self.procedure1_seconds / self.t0_simulation_seconds

    @property
    def normalized_compaction_time(self) -> float:
        """Table 4: compaction time / T0 simulation time."""
        if self.t0_simulation_seconds == 0:
            return 0.0
        return self.compaction_seconds / self.t0_simulation_seconds


@dataclass
class SchemeRun:
    """A :class:`SchemeResult` plus the underlying detailed objects.

    ``selection.sequences`` reflects the set *after* static compaction
    (compaction works in place); ``sequences_before_compaction`` preserves
    the full Procedure 1 output for inspection.
    """

    result: SchemeResult
    selection: SelectionResult
    compaction: CompactionResult
    udet: dict[Fault, int]
    sequences_before_compaction: list = None
    #: Good-machine trace cache counters at the end of the run (misses ==
    #: fault-free simulations actually executed for this circuit).
    trace_stats: dict = None


class LoadAndExpandScheme:
    """The paper's scheme, bound to one circuit."""

    def __init__(self, circuit: Circuit | CompiledCircuit) -> None:
        self._compiled = (
            circuit if isinstance(circuit, CompiledCircuit) else CompiledCircuit(circuit)
        )
        self._universe = FaultUniverse(self._compiled.circuit)

    @property
    def compiled(self) -> CompiledCircuit:
        return self._compiled

    @property
    def universe(self) -> FaultUniverse:
        return self._universe

    def run(
        self,
        t0: TestSequence,
        config: SelectionConfig | None = None,
        session: Session | None = None,
    ) -> SchemeRun:
        """Run selection + compaction + verification for ``t0``.

        ``session`` shares a caller's :class:`~repro.core.session.Session`
        (warm caches, profile-resolved workers, scoped simulator
        lifecycle); without one an ephemeral session is created for the
        duration of the run.
        """
        config = config or SelectionConfig()
        with use_session(session) as sess:
            fault_simulator = sess.fault_simulator(
                self._compiled,
                batch_width=config.fault_batch_width,
                backend=config.backend,
                workers=config.workers,
                parallel=config.parallel,
            )
            t0_watch = Stopwatch().start()
            udet = simulate_t0(fault_simulator, self._universe, t0)
            t0_seconds = t0_watch.stop()

            proc1_watch = Stopwatch().start()
            selection = select_subsequences(
                self._compiled,
                t0,
                config=config,
                universe=self._universe,
                precomputed_udet=udet,
                session=sess,
            )
            proc1_seconds = proc1_watch.stop()

            before_num = selection.num_sequences
            before_total = selection.total_length
            before_max = selection.max_length
            sequences_before = list(selection.sequences)

            comp_watch = Stopwatch().start()
            compaction = statically_compact(
                self._compiled, selection, session=sess
            )
            comp_seconds = comp_watch.stop()

            detected = self._detected_by_sequences(fault_simulator, selection, udet)
            coverage_preserved = detected == set(udet)
            unexplained = set(udet) - detected - set(selection.uncoverable)
            if unexplained:
                missing = sorted(unexplained)[:5]
                raise SelectionError(
                    f"{self._compiled.circuit.name}: scheme lost coverage of "
                    f"{len(unexplained)} faults, e.g. {missing}"
                )

            result = SchemeResult(
                circuit_name=self._compiled.circuit.name,
                config=config,
                total_faults=len(self._universe),
                detected_by_t0=len(udet),
                t0_length=len(t0),
                num_sequences_before=before_num,
                total_length_before=before_total,
                max_length_before=before_max,
                num_sequences_after=selection.num_sequences,
                total_length_after=selection.total_length,
                max_length_after=selection.max_length,
                applied_test_length=selection.applied_test_length,
                coverage_preserved=coverage_preserved,
                detected_by_scheme=len(detected),
                t0_simulation_seconds=t0_seconds,
                procedure1_seconds=proc1_seconds,
                compaction_seconds=comp_seconds,
            )
            return SchemeRun(
                result=result,
                selection=selection,
                compaction=compaction,
                udet=udet,
                sequences_before_compaction=sequences_before,
                trace_stats=fault_simulator.trace_cache.stats(),
            )

    def _detected_by_sequences(
        self,
        fault_simulator: FaultSimulator,
        selection: SelectionResult,
        udet: dict[Fault, int],
    ) -> set[Fault]:
        """Faults of ``F`` detected by the union of expanded sequences."""
        remaining = set(udet)
        detected: set[Fault] = set()
        for entry in selection.sequences:
            if not remaining:
                break
            expanded = expand(entry.sequence, selection.config.expansion)
            sim = fault_simulator.run(expanded, sorted(remaining))
            newly = set(sim.detection_time)
            detected |= newly
            remaining -= newly
        return detected
