"""Procedure 2: construct the subsequence ``T'`` for one target fault.

Given a fault ``f`` detected by ``T0`` at time ``udet(f)``:

1. **Window search** — find the largest ``ustart`` such that the expanded
   version of ``T' = T0[ustart, udet(f)]`` detects ``f``, scanning
   ``ustart = udet(f), udet(f)-1, ...``.  The scan always terminates: for
   ``ustart = 0`` the unexpanded window detects ``f`` by definition of
   ``udet``, and every expansion begins with a verbatim copy of ``T'``, so
   the expanded window detects ``f`` too.
2. **Vector omission** — repeatedly try to drop single vectors of ``T'``
   in random order, keeping an omission whenever the expanded remainder
   still detects ``f``, restarting the scan after every accepted omission
   (paper Procedure 2 steps 4-9).

Both phases batch their candidate sequences through
:class:`~repro.sim.seqsim.SequenceBatchSimulator`; a batch of ``W``
candidates costs about as much as simulating only the longest one, which
is what makes this pure-Python reproduction feasible.  Candidates are
*described*, not materialized: windows go through
:meth:`~repro.sim.seqsim.SequenceBatchSimulator.detects_windows` and
omission trials through
:meth:`~repro.sim.seqsim.SequenceBatchSimulator.detects_omissions`, so
the simulator derives every expanded candidate's packed input columns
from one shared packing of the base sequence (see
:mod:`repro.sim.seqsim`) instead of re-packing ``8 n |T'|`` vectors per
candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SelectionConfig
from repro.core.sequence import TestSequence
from repro.errors import SelectionError
from repro.faults.model import Fault
from repro.sim.seqsim import SequenceBatchSimulator
from repro.util.rng import SplitMix64, derive_seed


@dataclass(frozen=True)
class SubsequenceResult:
    """Outcome of Procedure 2 for one fault."""

    fault: Fault
    subsequence: TestSequence
    ustart: int
    udet: int
    window_length: int
    omitted_vectors: int
    candidates_simulated: int

    @property
    def final_length(self) -> int:
        return len(self.subsequence)


def build_subsequence_for_fault(
    simulator: SequenceBatchSimulator,
    t0: TestSequence,
    fault: Fault,
    udet: int,
    config: SelectionConfig,
    fault_salt: int = 0,
) -> SubsequenceResult:
    """Run Procedure 2 for ``fault`` with detection time ``udet``."""
    if not 0 <= udet < len(t0):
        raise SelectionError(
            f"udet {udet} out of range for T0 of length {len(t0)}"
        )
    expansion = config.expansion
    candidates_simulated = 0

    # ------------------------------------------------------------------
    # Phase 1: window search for ustart.
    # ------------------------------------------------------------------
    ustart: int | None = None
    next_u = udet
    while next_u >= 0 and ustart is None:
        batch_starts = list(
            range(next_u, max(-1, next_u - config.search_batch_width), -1)
        )
        outcomes = simulator.detects_windows(
            fault, t0, [(u, udet) for u in batch_starts], expansion
        )
        candidates_simulated += len(batch_starts)
        for u, detected in zip(batch_starts, outcomes):
            if detected:
                ustart = u
                break
        next_u = batch_starts[-1] - 1
    if ustart is None:
        # Cannot happen for a fault with a valid udet (see module docstring);
        # guard anyway so a simulator bug surfaces loudly.
        raise SelectionError(
            f"Procedure 2 found no detecting window for {fault} "
            f"(udet={udet}); the T0 prefix should always detect"
        )
    subsequence = t0.subsequence(ustart, udet)
    window_length = len(subsequence)

    # ------------------------------------------------------------------
    # Phase 2: vector omission (skippable for ablation).
    # ------------------------------------------------------------------
    omitted = 0
    if not config.skip_omission:
        rng = SplitMix64(derive_seed(config.seed, fault_salt, ustart, udet))
        while len(subsequence) > 1:
            order = list(range(len(subsequence)))
            rng.shuffle(order)
            accepted_index: int | None = None
            for start in range(0, len(order), config.omission_batch_width):
                chunk = order[start : start + config.omission_batch_width]
                outcomes = simulator.detects_omissions(
                    fault, subsequence, chunk, expansion
                )
                candidates_simulated += len(chunk)
                for index, detected in zip(chunk, outcomes):
                    if detected:
                        accepted_index = index
                        break
                if accepted_index is not None:
                    break
            if accepted_index is None:
                break
            subsequence = subsequence.omit(accepted_index)
            omitted += 1

    return SubsequenceResult(
        fault=fault,
        subsequence=subsequence,
        ustart=ustart,
        udet=udet,
        window_length=window_length,
        omitted_vectors=omitted,
        candidates_simulated=candidates_simulated,
    )
