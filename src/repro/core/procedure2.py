"""Procedure 2: construct the subsequence ``T'`` for one target fault.

Given a fault ``f`` detected by ``T0`` at time ``udet(f)``:

1. **Window search** — find the largest ``ustart`` such that the expanded
   version of ``T' = T0[ustart, udet(f)]`` detects ``f``, scanning
   ``ustart = udet(f), udet(f)-1, ...``.  The scan always terminates: for
   ``ustart = 0`` the unexpanded window detects ``f`` by definition of
   ``udet``, and every expansion begins with a verbatim copy of ``T'``, so
   the expanded window detects ``f`` too.
2. **Vector omission** — repeatedly try to drop single vectors of ``T'``
   in random order, keeping an omission whenever the expanded remainder
   still detects ``f``, restarting the scan after every accepted omission
   (paper Procedure 2 steps 4-9).

Both phases describe their *entire* candidate scan as a
:class:`~repro.sim.scanplan.ScanPlan` — a
:class:`~repro.sim.scanplan.WindowRampPlan` for the descending ``ustart``
ramp, an :class:`~repro.sim.scanplan.OmissionPlan` per omission round —
and hand it to the simulator's
:meth:`~repro.sim.seqsim.SequenceBatchSimulator.first_hit` executor: a
serial simulator runs the historical chunked scan (whole batches of
``search_batch_width`` / ``omission_batch_width`` candidates until the
first hit — a batch of ``W`` candidates costs about as much as simulating
only the longest one, which is what makes this pure-Python reproduction
feasible), while a sharded simulator
(:class:`~repro.sim.seqshard.ShardedSequenceBatchSimulator`) fans the
same plan across worker processes with first-hit cancellation, cutting
it at cost-balanced (or count-based) chunk boundaries.  Either way the
winner is the first detecting candidate in scan order and the evaluated
count follows the serial formula, so the selected subsequences and the
reported statistics are identical for any ``workers=`` and ``chunking=``
setting.

Candidates are *described*, not materialized: windows are ``(start,
end)`` spans and omission trials index lists into a shared base, so the
simulator derives every expanded candidate's packed input columns from
one shared packing of the base sequence (cached per session in
:mod:`repro.sim.trace`) instead of re-packing ``8 n |T'|`` vectors per
candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SelectionConfig
from repro.core.sequence import TestSequence
from repro.errors import SelectionError
from repro.faults.model import Fault
from repro.sim.scanplan import OmissionPlan, WindowRampPlan
from repro.sim.seqsim import SequenceBatchSimulator
from repro.util.rng import SplitMix64, derive_seed


@dataclass(frozen=True)
class SubsequenceResult:
    """Outcome of Procedure 2 for one fault."""

    fault: Fault
    subsequence: TestSequence
    ustart: int
    udet: int
    window_length: int
    omitted_vectors: int
    candidates_simulated: int

    @property
    def final_length(self) -> int:
        return len(self.subsequence)


def build_subsequence_for_fault(
    simulator: SequenceBatchSimulator,
    t0: TestSequence,
    fault: Fault,
    udet: int,
    config: SelectionConfig,
    fault_salt: int = 0,
) -> SubsequenceResult:
    """Run Procedure 2 for ``fault`` with detection time ``udet``."""
    if not 0 <= udet < len(t0):
        raise SelectionError(
            f"udet {udet} out of range for T0 of length {len(t0)}"
        )
    expansion = config.expansion
    candidates_simulated = 0

    # ------------------------------------------------------------------
    # Phase 1: window search for ustart.
    # ------------------------------------------------------------------
    # The whole descending scan is one plan handed to the first-hit
    # executor; the simulator chunks it by search_batch_width (serial)
    # or shards it with cancellation at the plan's cost-balanced
    # boundaries (workers > 1) — same winner, same evaluated count.
    spans = [(u, udet) for u in range(udet, -1, -1)]
    window_plan = WindowRampPlan(t0, spans, expansion)
    position, evaluated = simulator.first_hit(
        fault, window_plan, chunk=config.search_batch_width
    )
    candidates_simulated += evaluated
    ustart = udet - position if position is not None else None
    if ustart is None:
        # Cannot happen for a fault with a valid udet (see module docstring);
        # guard anyway so a simulator bug surfaces loudly.
        raise SelectionError(
            f"Procedure 2 found no detecting window for {fault} "
            f"(udet={udet}); the T0 prefix should always detect"
        )
    subsequence = t0.subsequence(ustart, udet)
    window_length = len(subsequence)

    # ------------------------------------------------------------------
    # Phase 2: vector omission (skippable for ablation).
    # ------------------------------------------------------------------
    omitted = 0
    if not config.skip_omission:
        rng = SplitMix64(derive_seed(config.seed, fault_salt, ustart, udet))
        while len(subsequence) > 1:
            order = list(range(len(subsequence)))
            rng.shuffle(order)
            position, evaluated = simulator.first_hit(
                fault,
                OmissionPlan(subsequence, order, expansion),
                chunk=config.omission_batch_width,
            )
            candidates_simulated += evaluated
            if position is None:
                break
            subsequence = subsequence.omit(order[position])
            omitted += 1

    return SubsequenceResult(
        fault=fault,
        subsequence=subsequence,
        ustart=ustart,
        udet=udet,
        window_length=window_length,
        omitted_vectors=omitted,
        candidates_simulated=candidates_simulated,
    )
