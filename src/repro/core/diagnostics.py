"""Coverage diagnostics for a selected set ``S``.

Section 3.2's static compaction exists because Procedure 1 greedily adds
sequences whose fault sets later become redundant.  These helpers expose
that structure:

* :func:`coverage_matrix` — which faults each expanded sequence detects;
* :func:`overlap_histogram` — how many faults are covered by exactly
  ``k`` sequences (``k = 1`` faults pin their sequence in place);
* :func:`essential_sequences` — sequences that are the *only* cover of
  some fault and therefore survive every compaction order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ops import ExpansionConfig, expand
from repro.core.procedure1 import SelectedSequence
from repro.core.session import Session, use_session
from repro.faults.model import Fault
from repro.sim.compiled import CompiledCircuit


@dataclass(frozen=True)
class CoverageDiagnostics:
    """Joint coverage structure of a selected set."""

    detected_by: dict[int, frozenset[Fault]]  # sequence index -> faults
    target_faults: frozenset[Fault]

    def sequences_covering(self, fault: Fault) -> list[int]:
        """Indices of the sequences whose expansion detects ``fault``."""
        return [
            index
            for index, detected in sorted(self.detected_by.items())
            if fault in detected
        ]

    def uncovered(self) -> frozenset[Fault]:
        """Target faults no sequence covers (empty for a valid scheme)."""
        covered: set[Fault] = set()
        for detected in self.detected_by.values():
            covered |= detected
        return self.target_faults - covered


def coverage_matrix(
    compiled: CompiledCircuit,
    sequences: list[SelectedSequence],
    expansion: ExpansionConfig,
    target_faults: list[Fault],
    backend: str | None = None,
    workers: int = 1,
    session: Session | None = None,
) -> CoverageDiagnostics:
    """Fault-simulate every expanded sequence against the full target set.

    Unlike Procedure 1 (which drops faults as they are covered), this
    simulates *all* target faults under every sequence, exposing overlap.
    """
    with use_session(session) as sess:
        simulator = sess.fault_simulator(
            compiled, backend=backend, workers=workers
        )
        detected_by: dict[int, frozenset[Fault]] = {}
        for entry in sequences:
            expanded = expand(entry.sequence, expansion)
            result = simulator.run(expanded, target_faults)
            detected_by[entry.index] = frozenset(result.detection_time)
        return CoverageDiagnostics(
            detected_by=detected_by, target_faults=frozenset(target_faults)
        )


def overlap_histogram(diagnostics: CoverageDiagnostics) -> dict[int, int]:
    """``{k: number of faults covered by exactly k sequences}``."""
    histogram: dict[int, int] = {}
    for fault in diagnostics.target_faults:
        count = len(diagnostics.sequences_covering(fault))
        histogram[count] = histogram.get(count, 0) + 1
    return dict(sorted(histogram.items()))


def essential_sequences(diagnostics: CoverageDiagnostics) -> list[int]:
    """Sequence indices that uniquely cover at least one fault.

    These survive any order of Section 3.2's passes: at their turn they
    always detect their uniquely-covered faults.
    """
    essential: set[int] = set()
    for fault in diagnostics.target_faults:
        covering = diagnostics.sequences_covering(fault)
        if len(covering) == 1:
            essential.add(covering[0])
    return sorted(essential)
