"""Static compaction of the selected set ``S`` (paper Section 3.2).

After Procedure 1, earlier sequences may have become redundant: all the
faults they covered may also be covered by sequences added later.  The
paper removes such sequences by re-simulating the expanded set in four
different orders; in each pass, every sequence that detects no
still-undetected fault *at its turn in that order* is dropped:

1. by increasing loaded length (gives long sequences a chance to drop);
2. by decreasing loaded length (drops short sequences that long, fault-rich
   sequences subsume);
3. in reverse order of generation (drops early sequences subsumed by later
   ones — the common case);
4. by decreasing number of faults detected during the *previous* pass.

The full-coverage invariant is preserved by construction: a sequence is
only removed when the remaining ones, in the simulated order, already
detect everything it would have detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ops import expand
from repro.core.procedure1 import SelectedSequence, SelectionResult
from repro.core.session import Session, use_session
from repro.faults.model import Fault
from repro.sim.compiled import CompiledCircuit
from repro.sim.faultsim import FaultSimulator


@dataclass
class CompactionPassReport:
    """What one reorder-and-resimulate pass did."""

    order_name: str
    sequences_before: int
    sequences_dropped: int
    detection_counts: dict[int, int] = field(default_factory=dict)


@dataclass
class CompactionResult:
    """The compacted set ``S`` plus per-pass diagnostics."""

    selection: SelectionResult
    passes: list[CompactionPassReport]

    @property
    def sequences(self) -> list[SelectedSequence]:
        return self.selection.sequences

    @property
    def num_sequences(self) -> int:
        return self.selection.num_sequences

    @property
    def total_length(self) -> int:
        return self.selection.total_length

    @property
    def max_length(self) -> int:
        return self.selection.max_length

    @property
    def applied_test_length(self) -> int:
        return self.selection.applied_test_length


def _run_pass(
    fault_simulator: FaultSimulator,
    selection: SelectionResult,
    ordered: list[SelectedSequence],
    order_name: str,
) -> CompactionPassReport:
    """Simulate sequences in ``ordered``; drop zero-contribution ones."""
    target_faults: set[Fault] = set(selection.udet)
    report = CompactionPassReport(
        order_name=order_name,
        sequences_before=len(ordered),
        sequences_dropped=0,
    )
    survivors: list[SelectedSequence] = []
    for entry in ordered:
        if not target_faults:
            # Everything already covered: the rest contribute nothing.
            report.sequences_dropped += 1
            report.detection_counts[entry.index] = 0
            continue
        expanded = expand(entry.sequence, selection.config.expansion)
        sim = fault_simulator.run(expanded, sorted(target_faults))
        detected = set(sim.detection_time)
        report.detection_counts[entry.index] = len(detected)
        if detected:
            survivors.append(entry)
            target_faults -= detected
        else:
            report.sequences_dropped += 1
    # Preserve original generation order in the stored selection.
    keep = {entry.index for entry in survivors}
    selection.sequences = [s for s in selection.sequences if s.index in keep]
    return report


def statically_compact(
    compiled: CompiledCircuit,
    selection: SelectionResult,
    session: Session | None = None,
) -> CompactionResult:
    """Run the four compaction passes of Section 3.2 on ``selection``.

    ``selection`` is modified in place (its sequence list shrinks) and also
    returned wrapped in a :class:`CompactionResult`.
    """
    with use_session(session) as sess:
        fault_simulator = sess.fault_simulator(
            compiled,
            batch_width=selection.config.fault_batch_width,
            backend=selection.config.backend,
            workers=selection.config.workers,
            parallel=selection.config.parallel,
        )
        passes: list[CompactionPassReport] = []

        by_increasing_length = sorted(
            selection.sequences, key=lambda s: (s.length, s.index)
        )
        passes.append(
            _run_pass(fault_simulator, selection, by_increasing_length, "increasing length")
        )

        by_decreasing_length = sorted(
            selection.sequences, key=lambda s: (-s.length, s.index)
        )
        passes.append(
            _run_pass(fault_simulator, selection, by_decreasing_length, "decreasing length")
        )

        reverse_generation = sorted(selection.sequences, key=lambda s: -s.index)
        passes.append(
            _run_pass(fault_simulator, selection, reverse_generation, "reverse generation")
        )

        previous_counts = passes[-1].detection_counts
        by_previous_detections = sorted(
            selection.sequences,
            key=lambda s: (-previous_counts.get(s.index, 0), s.index),
        )
        passes.append(
            _run_pass(
                fault_simulator,
                selection,
                by_previous_detections,
                "decreasing previous detections",
            )
        )
        return CompactionResult(selection=selection, passes=passes)
