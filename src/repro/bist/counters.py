"""Counters used by the expansion controller."""

from __future__ import annotations

from repro.errors import HardwareModelError


class UpDownCounter:
    """The memory address counter.

    Counts ``0 .. modulus-1`` in up mode and ``modulus-1 .. 0`` in down
    mode (the paper's reversal mechanism); :meth:`step` returns True when
    the counter wraps, which clocks the repetition counter.
    """

    def __init__(self, modulus: int) -> None:
        if modulus < 1:
            raise HardwareModelError("counter modulus must be positive")
        self._modulus = modulus
        self._value = 0
        self._down = False

    @property
    def value(self) -> int:
        return self._value

    @property
    def down_mode(self) -> bool:
        return self._down

    def set_mode(self, down: bool) -> None:
        self._down = down

    def reset(self) -> None:
        """Reset to the mode's starting value (0 up, modulus-1 down)."""
        self._value = self._modulus - 1 if self._down else 0

    def step(self) -> bool:
        """Advance one position; returns True on wrap-around."""
        if self._down:
            if self._value == 0:
                self._value = self._modulus - 1
                return True
            self._value -= 1
            return False
        if self._value == self._modulus - 1:
            self._value = 0
            return True
        self._value += 1
        return False


class RepetitionCounter:
    """Counts expansions of the loaded sequence (the paper's ``n``)."""

    def __init__(self, repetitions: int) -> None:
        if repetitions < 1:
            raise HardwareModelError("repetition count must be >= 1")
        self._repetitions = repetitions
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def step(self) -> bool:
        """Count one completed pass; returns True when all passes done."""
        self._value += 1
        if self._value >= self._repetitions:
            self._value = 0
            return True
        return False
