"""Cost model: what the scheme saves versus loading ``T0`` wholesale.

Quantifies the two headline claims of the paper:

* **memory** — the on-chip memory only needs to hold the longest sequence
  in ``S`` (paper: ~10% of ``|T0|`` on average);
* **loading time** — only the sequences in ``S`` are loaded (paper: ~46%
  of ``|T0|`` on average), while the at-speed vector count *applied* is
  ``8·n·(total length)``, larger than ``|T0|`` — the at-speed benefit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ops import ExpansionConfig, expanded_length


@dataclass(frozen=True)
class BistCostModel:
    """Hardware/time cost of one configured scheme deployment."""

    num_inputs: int
    t0_length: int
    total_loaded_length: int
    max_loaded_length: int
    expansion: ExpansionConfig

    @property
    def memory_bits(self) -> int:
        """Test memory sized for the longest loaded sequence."""
        return self.max_loaded_length * self.num_inputs

    @property
    def t0_memory_bits(self) -> int:
        """Memory needed by the store-everything baseline."""
        return self.t0_length * self.num_inputs

    @property
    def memory_ratio(self) -> float:
        if self.t0_length == 0:
            return 0.0
        return self.max_loaded_length / self.t0_length

    @property
    def load_cycles(self) -> int:
        """Tester cycles spent loading all sequences of ``S``."""
        return self.total_loaded_length

    @property
    def t0_load_cycles(self) -> int:
        return self.t0_length

    @property
    def load_ratio(self) -> float:
        if self.t0_length == 0:
            return 0.0
        return self.total_loaded_length / self.t0_length

    @property
    def at_speed_cycles(self) -> int:
        """At-speed vectors applied — ``8 n L`` with the full operator set."""
        return expanded_length(self.total_loaded_length, self.expansion)


@dataclass(frozen=True)
class CostComparison:
    """Scheme vs the two baselines the paper discusses."""

    scheme: BistCostModel

    @property
    def memory_saving_versus_t0(self) -> float:
        """Fraction of memory bits saved versus storing ``T0`` on chip."""
        if self.scheme.t0_memory_bits == 0:
            return 0.0
        return 1.0 - self.scheme.memory_bits / self.scheme.t0_memory_bits

    @property
    def load_saving_versus_t0(self) -> float:
        """Fraction of load cycles saved versus loading ``T0``."""
        if self.scheme.t0_load_cycles == 0:
            return 0.0
        return 1.0 - self.scheme.load_cycles / self.scheme.t0_load_cycles

    @property
    def at_speed_amplification(self) -> float:
        """Applied at-speed vectors per loaded vector (the 8n factor)."""
        if self.scheme.load_cycles == 0:
            return 0.0
        return self.scheme.at_speed_cycles / self.scheme.load_cycles
