"""The on-chip test memory holding one loaded subsequence."""

from __future__ import annotations

from repro.core.sequence import TestSequence
from repro.errors import HardwareModelError


class TestMemory:
    """Word-addressable memory, one test vector per word.

    ``capacity_words`` is fixed at construction (the hardware is sized for
    the longest sequence in ``S``); loading a longer sequence raises, as
    it would not fit on the real chip.
    """

    #: Library class, not a pytest collection target.
    __test__ = False

    def __init__(self, word_bits: int, capacity_words: int) -> None:
        if word_bits < 1:
            raise HardwareModelError("memory word size must be at least 1 bit")
        if capacity_words < 1:
            raise HardwareModelError("memory needs at least one word")
        self._word_bits = word_bits
        self._capacity = capacity_words
        self._words: list[tuple[int, ...]] = []
        self._load_cycles = 0

    @property
    def word_bits(self) -> int:
        return self._word_bits

    @property
    def capacity_words(self) -> int:
        return self._capacity

    @property
    def total_bits(self) -> int:
        """Physical storage size in bits."""
        return self._word_bits * self._capacity

    @property
    def used_words(self) -> int:
        return len(self._words)

    @property
    def load_cycles(self) -> int:
        """Accumulated tester-clock cycles spent loading this memory."""
        return self._load_cycles

    def load(self, sequence: TestSequence) -> int:
        """Load ``sequence`` (one word per tester cycle); returns cycles."""
        if len(sequence) > self._capacity:
            raise HardwareModelError(
                f"sequence of {len(sequence)} vectors exceeds memory capacity "
                f"of {self._capacity} words"
            )
        if len(sequence) and sequence.width != self._word_bits:
            raise HardwareModelError(
                f"vector width {sequence.width} != memory word size "
                f"{self._word_bits}"
            )
        self._words = list(sequence.vectors())
        self._load_cycles += len(self._words)
        return len(self._words)

    def read(self, address: int) -> tuple[int, ...]:
        """Combinational read of one word."""
        if not 0 <= address < len(self._words):
            raise HardwareModelError(
                f"address {address} out of range (loaded words: {len(self._words)})"
            )
        return self._words[address]
