"""A full BIST session: load, expand, apply, compact, compare.

:class:`BistSession` emulates the complete test-application flow the
paper implies:

1. size the on-chip memory for the longest sequence in ``S``;
2. compute golden signatures: for every subsequence, load it, run the
   expansion controller cycle by cycle against the fault-free circuit,
   and capture the MISR signature (masking capture on cycles whose
   fault-free outputs are not fully binary — the paper's synchronization
   requirement);
3. test a device (optionally with an injected fault): same flow, compare
   per-subsequence signatures.

The controller output is, by construction and by test, bit-identical to
``expand(S_i, config)``, so a device fails the session iff some expanded
subsequence detects its fault *at a signature-visible cycle*.  The
sequence-level verdicts also report plain PO-compare detection so the
MISR masking effect can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bist.controller import ExpansionController
from repro.bist.cost import BistCostModel
from repro.bist.memory import TestMemory
from repro.bist.misr import Misr
from repro.circuit.netlist import Circuit
from repro.core.ops import ExpansionConfig
from repro.core.sequence import TestSequence
from repro.errors import HardwareModelError
from repro.faults.model import Fault
from repro.logic.values import X
from repro.sim.compiled import CompiledCircuit
from repro.sim.logicsim import LogicSimulator
from repro.sim.sharding import make_fault_simulator
from repro.sim.reference import ReferenceSimulator


@dataclass(frozen=True)
class SequenceVerdict:
    """Outcome of applying one expanded subsequence to one device."""

    sequence_index: int
    loaded_length: int
    applied_length: int
    golden_signature: int
    observed_signature: int
    po_mismatch: bool  # plain PO comparison (no compaction) saw a difference

    @property
    def signature_mismatch(self) -> bool:
        return self.golden_signature != self.observed_signature


@dataclass
class SessionReport:
    """Outcome of one device test across all subsequences."""

    fault: Fault | None
    verdicts: list[SequenceVerdict] = field(default_factory=list)

    @property
    def fails(self) -> bool:
        """Device flagged faulty by signature comparison."""
        return any(v.signature_mismatch for v in self.verdicts)

    @property
    def detected_without_compaction(self) -> bool:
        return any(v.po_mismatch for v in self.verdicts)

    @property
    def total_load_cycles(self) -> int:
        return sum(v.loaded_length for v in self.verdicts)

    @property
    def total_at_speed_cycles(self) -> int:
        return sum(v.applied_length for v in self.verdicts)


class BistSession:
    """Emulated BIST deployment for one circuit and one selected set."""

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        sequences: list[TestSequence],
        config: ExpansionConfig,
        misr_length: int = 24,
        backend: str | None = None,
        workers: int = 1,
    ) -> None:
        if not sequences:
            raise HardwareModelError("a BIST session needs at least one sequence")
        self._compiled = (
            circuit if isinstance(circuit, CompiledCircuit) else CompiledCircuit(circuit)
        )
        self._circuit = self._compiled.circuit
        self._sequences = list(sequences)
        self._config = config
        self._word_bits = self._circuit.num_inputs
        self._capacity = max(len(s) for s in sequences)
        self._misr_length = misr_length
        self._logic = LogicSimulator(self._compiled, backend=backend)
        self._fault_simulator = make_fault_simulator(
            self._compiled, backend=backend, workers=workers
        )
        # Per-sequence golden data: (expanded TestSequence, capture mask,
        # golden signature), computed once.
        self._golden: list[tuple[TestSequence, list[bool], int]] = []
        self._prepare_golden()

    def close(self) -> None:
        """Release the session's fault-simulation resources (worker pools)."""
        self._fault_simulator.close()

    def __enter__(self) -> "BistSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Construction-time golden run
    # ------------------------------------------------------------------
    def _expand_via_hardware(self, sequence: TestSequence) -> TestSequence:
        memory = TestMemory(self._word_bits, self._capacity)
        memory.load(sequence)
        controller = ExpansionController(memory, self._config)
        return TestSequence(controller.generate_all())

    def _prepare_golden(self) -> None:
        for sequence in self._sequences:
            expanded = self._expand_via_hardware(sequence)
            trace = self._logic.run(expanded)
            capture_mask = [
                all(value is not X for value in row) for row in trace.po_values
            ]
            misr = Misr(self._misr_length, self._circuit.num_outputs)
            for t, row in enumerate(trace.po_values):
                if capture_mask[t]:
                    misr.capture(row)
            self._golden.append((expanded, capture_mask, misr.signature()))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def memory(self) -> TestMemory:
        """A fresh memory instance sized like the session's hardware."""
        return TestMemory(self._word_bits, self._capacity)

    @property
    def cost_model(self) -> BistCostModel:
        return BistCostModel(
            num_inputs=self._word_bits,
            t0_length=0,  # callers with a T0 baseline override via cost_for_t0
            total_loaded_length=sum(len(s) for s in self._sequences),
            max_loaded_length=self._capacity,
            expansion=self._config,
        )

    def cost_for_t0(self, t0_length: int) -> BistCostModel:
        """Cost model with the store-``T0`` baseline filled in."""
        return BistCostModel(
            num_inputs=self._word_bits,
            t0_length=t0_length,
            total_loaded_length=sum(len(s) for s in self._sequences),
            max_loaded_length=self._capacity,
            expansion=self._config,
        )

    def golden_signatures(self) -> list[int]:
        return [signature for _, _, signature in self._golden]

    def test_device(self, fault: Fault | None = None) -> SessionReport:
        """Run the whole session against a device (faulty or fault-free)."""
        report = SessionReport(fault=fault)
        reference = ReferenceSimulator(self._circuit) if fault is not None else None
        for index, (sequence, golden) in enumerate(
            zip(self._sequences, self._golden)
        ):
            expanded, capture_mask, golden_signature = golden
            if fault is None:
                observed_signature = golden_signature
                po_mismatch = False
            else:
                faulty_trace = reference.simulate(expanded, fault=fault)
                misr = Misr(self._misr_length, self._circuit.num_outputs)
                for t, row in enumerate(faulty_trace):
                    if capture_mask[t]:
                        misr.capture(row)
                observed_signature = misr.signature()
                po_mismatch = self._fault_simulator.run(
                    expanded, [fault]
                ).is_detected(fault)
            report.verdicts.append(
                SequenceVerdict(
                    sequence_index=index,
                    loaded_length=len(sequence),
                    applied_length=len(expanded),
                    golden_signature=golden_signature,
                    observed_signature=observed_signature,
                    po_mismatch=po_mismatch,
                )
            )
        return report
