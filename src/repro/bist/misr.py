"""Multiple-input signature register (output response compactor).

A standard internal-XOR MISR over GF(2): each clock, the register shifts
and XORs in the primary output values.  The paper leaves response
compaction open ("it is possible to use output response compression"),
noting only that the circuit must be synchronized before signature
capture to avoid unknown values; :class:`Misr` therefore supports masking
capture cycles whose fault-free outputs are not fully binary, and the
session model uses that mask for both the golden and the observed run.

Unknown (X) observed values are captured as 0 — in real silicon an X is
whatever the die produces; the session only feeds the MISR on cycles the
fault-free machine has fully binary outputs, which is the paper's
synchronization requirement.
"""

from __future__ import annotations

from repro.errors import HardwareModelError
from repro.logic.values import ONE, Ternary

#: Primitive feedback polynomial taps for common register lengths
#: (x^len + ... + 1), keyed by length; fallback uses a dense tap set.
_PRIMITIVE_TAPS: dict[int, tuple[int, ...]] = {
    4: (4, 3),
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
}


class Misr:
    """An ``length``-bit MISR with XOR feedback."""

    def __init__(self, length: int, inputs: int) -> None:
        if length < 2:
            raise HardwareModelError("MISR needs at least 2 bits")
        if inputs < 1:
            raise HardwareModelError("MISR needs at least one input")
        if inputs > length:
            # Hardware would fold wide output buses; the model folds by
            # XOR-ing input i into stage i mod length.
            pass
        self._length = length
        self._inputs = inputs
        taps = _PRIMITIVE_TAPS.get(length, (length, length - 1, 1))
        self._feedback_mask = 0
        for tap in taps:
            self._feedback_mask |= 1 << (length - tap)
        self._state = 0
        self._captures = 0

    @property
    def length(self) -> int:
        return self._length

    @property
    def state(self) -> int:
        return self._state

    @property
    def captures(self) -> int:
        """Number of capture cycles folded into the signature."""
        return self._captures

    def reset(self) -> None:
        self._state = 0
        self._captures = 0

    def capture(self, outputs: list[Ternary]) -> None:
        """Fold one cycle of PO values into the signature (X captured as 0)."""
        if len(outputs) != self._inputs:
            raise HardwareModelError(
                f"MISR wired for {self._inputs} outputs, got {len(outputs)}"
            )
        injected = 0
        for index, value in enumerate(outputs):
            if value is ONE:
                injected ^= 1 << (index % self._length)
        feedback = self._feedback_mask if (self._state & 1) else 0
        self._state = ((self._state >> 1) ^ feedback ^ injected) & (
            (1 << self._length) - 1
        )
        self._captures += 1

    def signature(self) -> int:
        """The current signature value."""
        return self._state
