"""Cycle-accurate model of the paper's implied on-chip test hardware.

The paper's scheme needs, next to the circuit under test:

* a small test **memory** (one word per loaded vector, word size = number
  of primary inputs) — :mod:`repro.bist.memory`;
* an up/down **address counter** and a **repetition counter** —
  :mod:`repro.bist.counters`;
* inverters + muxes for complementation, a mux per output for the
  circular shift, and a small **control FSM** sequencing the phases —
  :mod:`repro.bist.controller`;
* a **MISR** for output response compaction —
  :mod:`repro.bist.misr`.

:class:`~repro.bist.session.BistSession` wires these into a full test
session: load each selected subsequence at tester speed, expand and apply
it at speed, compact responses into signatures, and compare against the
fault-free golden signatures.  The controller is proven bit-equivalent to
the mathematical expansion of :mod:`repro.core.ops` by the test suite.
"""

from repro.bist.memory import TestMemory
from repro.bist.counters import UpDownCounter, RepetitionCounter
from repro.bist.controller import ExpansionController
from repro.bist.misr import Misr
from repro.bist.session import BistSession, SequenceVerdict, SessionReport
from repro.bist.cost import BistCostModel, CostComparison

__all__ = [
    "TestMemory",
    "UpDownCounter",
    "RepetitionCounter",
    "ExpansionController",
    "Misr",
    "BistSession",
    "SequenceVerdict",
    "SessionReport",
    "BistCostModel",
    "CostComparison",
]
