"""The expansion control FSM.

Produces, one vector per at-speed clock, the expanded sequence ``Sexp`` of
the sequence currently loaded in the test memory, using exactly the
datapath the paper describes:

* the up/down **address counter** walks the memory;
* the **repetition counter** counts ``n`` passes;
* a **complement flag** drives the output inverter muxes;
* a **shift flag** drives the circular-shift muxes (output ``i`` selects
  memory output ``(i+1) mod m``);
* a **reverse flag** switches the address counter to down mode and
  reverses the phase iteration, realizing ``rS'''``.

Phase order (matching ``repro.core.ops.expand``):
``shift`` is the outermost expansion bit, then ``complement``, then the
repetition count, then the memory address — and the whole 4nL-vector
program is replayed backwards for the reversal half, giving ``8nL``
vectors in total.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.bist.counters import RepetitionCounter, UpDownCounter
from repro.bist.memory import TestMemory
from repro.core.ops import ExpansionConfig
from repro.errors import HardwareModelError


class ExpansionController:
    """Generates ``Sexp`` from a loaded :class:`TestMemory`."""

    def __init__(self, memory: TestMemory, config: ExpansionConfig) -> None:
        self._memory = memory
        self._config = config

    @property
    def config(self) -> ExpansionConfig:
        return self._config

    def expanded_length(self) -> int:
        """Number of at-speed cycles the controller will run."""
        return self._memory.used_words * self._config.length_multiplier

    # ------------------------------------------------------------------
    # Datapath primitives
    # ------------------------------------------------------------------
    def _transform(
        self, word: tuple[int, ...], complement_flag: bool, shift_flag: bool
    ) -> tuple[int, ...]:
        """Output inverter muxes + circular-shift muxes."""
        bits = word
        if complement_flag:
            bits = tuple(1 - bit for bit in bits)
        if shift_flag:
            m = len(bits)
            bits = tuple(bits[(i + 1) % m] for i in range(m))
        return bits

    # ------------------------------------------------------------------
    # The FSM, expressed as a generator of output vectors
    # ------------------------------------------------------------------
    def run(self) -> Iterator[tuple[int, ...]]:
        """Yield ``Sexp`` one vector per clock."""
        words = self._memory.used_words
        if words == 0:
            raise HardwareModelError("no sequence loaded into the test memory")
        config = self._config
        address = UpDownCounter(words)
        repetition = RepetitionCounter(config.repetitions)

        shift_values = (False, True) if config.use_shift else (False,)
        complement_values = (False, True) if config.use_complement else (False,)
        reverse_values = (False, True) if config.use_reverse else (False,)

        hold_cycles = config.hold_cycles
        for reverse_flag in reverse_values:
            address.set_mode(down=reverse_flag)
            shifts = tuple(reversed(shift_values)) if reverse_flag else shift_values
            complements = (
                tuple(reversed(complement_values)) if reverse_flag else complement_values
            )
            for shift_flag in shifts:
                for complement_flag in complements:
                    repetition.reset()
                    done = False
                    while not done:
                        address.reset()
                        wrapped = False
                        while not wrapped:
                            word = self._memory.read(address.value)
                            output = self._transform(word, complement_flag, shift_flag)
                            # Hold counter: the address advances only after
                            # hold_cycles copies of the word were applied.
                            for _ in range(hold_cycles):
                                yield output
                            wrapped = address.step()
                        done = repetition.step()

    def generate_all(self) -> list[tuple[int, ...]]:
        """Materialize the full expanded sequence (convenience for tests)."""
        return list(self.run())
