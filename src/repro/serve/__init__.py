"""BIST-as-a-service: the asynchronous serving layer.

The facade (:class:`repro.Session`) makes one process's caches — compiled
circuits, program LRUs, good-machine traces, the persistent worker pool —
shareable across *calls*; this package makes them shareable across
*clients*.  A :class:`~repro.serve.service.JobService` owns one warm
session and executes :class:`~repro.core.request.RunRequest` jobs
submitted by many tenants, with:

* **fair scheduling** — a per-tenant round-robin
  (:class:`~repro.serve.scheduler.FairScheduler`) so one tenant's burst
  of submissions cannot starve another's single job;
* **measured execution planning** — the scheduler consults the machine
  profile from :mod:`repro.sim.autotune` (loaded or calibrated at
  service startup) to pick worker counts, instead of the static
  core-count thresholds;
* **bit-identical results** — a served job returns the same
  :class:`~repro.core.request.RunResult` fingerprint as running the
  request directly on a local session, which the serving tests and the
  CI smoke lane assert;
* **an optional stdlib-only HTTP front end**
  (:class:`~repro.serve.http.HttpFrontend`) speaking JSON over
  ``asyncio`` streams — no third-party web framework.
"""

from repro.serve.scheduler import ExecutionPlan, FairScheduler, plan_execution
from repro.serve.service import Job, JobService
from repro.serve.http import HttpFrontend

__all__ = [
    "ExecutionPlan",
    "FairScheduler",
    "plan_execution",
    "Job",
    "JobService",
    "HttpFrontend",
]
