"""A stdlib-only JSON/HTTP front end over :class:`JobService`.

Minimal HTTP/1.1 on raw ``asyncio`` streams — no third-party web
framework, matching the repo's no-new-dependencies rule.  The surface is
deliberately tiny:

========  ==================  =============================================
method    path                meaning
========  ==================  =============================================
GET       ``/healthz``        liveness: ``{"status": "ok"}``
GET       ``/profile``        the active machine profile (or ``null``)
GET       ``/stats``          service counters and per-tenant queues
POST      ``/jobs``           submit ``{"tenant": ..., "request": {...}}``
GET       ``/jobs/<id>``      job status; ``?wait=1`` blocks to completion
========  ==================  =============================================

Responses are always ``application/json``; errors use conventional
status codes with ``{"error": ...}`` bodies.  Each connection serves one
request (``Connection: close``) — clients here are test harnesses and CI
smoke scripts, not browsers.
"""

from __future__ import annotations

import asyncio
import json

from repro.core.request import RunRequest
from repro.errors import ReproError
from repro.serve.service import JobService

#: Largest accepted request body (a generous bound for inline .bench text).
MAX_BODY_BYTES = 4 * 1024 * 1024


class HttpFrontend:
    """Serve a :class:`JobService` over HTTP on ``host:port``.

    ``port=0`` binds an ephemeral port; the bound port is available as
    :attr:`port` after :meth:`start` (how the tests and the smoke lane
    avoid collisions).
    """

    def __init__(
        self, service: JobService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self.port}"

    async def start(self) -> None:
        if self._server is not None:
            return
        if not self._service.started:
            await self._service.start()
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "HttpFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # One request per connection
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # never let a bad request kill the server
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Error"
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
            + body
        )
        try:
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("ascii", "replace").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, target = parts[0].upper(), parts[1]
        path, _, query = target.partition("?")
        content_length = 0
        while True:
            line = (await reader.readline()).decode("ascii", "replace")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        if content_length > MAX_BODY_BYTES:
            return 400, {"error": "request body too large"}
        body = await reader.readexactly(content_length) if content_length else b""
        return await self._route(method, path, query, body)

    async def _route(
        self, method: str, path: str, query: str, body: bytes
    ) -> tuple[int, dict]:
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok"}
        if method == "GET" and path == "/profile":
            profile = self._service.profile
            return 200, {
                "profile": None if profile is None else profile.to_json()
            }
        if method == "GET" and path == "/stats":
            return 200, self._service.stats()
        if method == "POST" and path == "/jobs":
            return await self._submit(body)
        if method == "GET" and path.startswith("/jobs/"):
            return await self._job_status(path[len("/jobs/") :], query)
        return 404, {"error": f"no route for {method} {path}"}

    async def _submit(self, body: bytes) -> tuple[int, dict]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"body is not JSON: {exc}"}
        if not isinstance(payload, dict) or "request" not in payload:
            return 400, {"error": 'expected {"tenant": ..., "request": {...}}'}
        tenant = payload.get("tenant", "")
        try:
            request = RunRequest.from_json(payload["request"])
            job_id = await self._service.submit(tenant, request)
        except (ReproError, TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        return 202, {"id": job_id, "status": "queued"}

    async def _job_status(self, job_id: str, query: str) -> tuple[int, dict]:
        try:
            job = self._service.get(job_id)
        except KeyError:
            return 404, {"error": f"unknown job {job_id!r}"}
        if "wait=1" in query.split("&") or query == "wait":
            job = await self._service.wait(job_id)
        return 200, job.to_json()
