"""Fair scheduling and profile-based execution planning.

Two concerns live here, both deliberately free of asyncio so they are
trivially unit-testable:

* :class:`FairScheduler` — per-tenant FIFO queues drained round-robin.
  Each tenant keeps its own submission order, but the *next* job always
  comes from the tenant that has waited longest since last being served,
  so a tenant submitting a hundred jobs cannot starve a tenant
  submitting one.
* :func:`plan_execution` — rewrite a :class:`~repro.core.request.RunRequest`
  so its worker counts come from the *measured*
  :class:`~repro.sim.autotune.MachineProfile` instead of whatever static
  default the client happened to ship.  This is where the calibration
  pass earns its keep: a client asking for ``workers=4`` on a machine
  whose profile measured sharding at 0.2x gets planned down to serial,
  and a client leaving ``workers=0`` ("auto") gets the measured
  recommendation.  With ``lanes > 1`` the planner also keeps jobs off
  the *process* tier: the shared persistent
  :class:`~repro.sim.workerpool.WorkerPool` serves one parent dispatch
  at a time, so a concurrent service pins each job to the in-kernel
  thread tier (lane-safe — every dispatch brings its own pthread-pool
  generation) or to serial, whichever the measurement favours.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.request import RunRequest
from repro.sim.autotune import SHARD_SPEEDUP_THRESHOLD, MachineProfile


@dataclass(frozen=True)
class ExecutionPlan:
    """How the service decided to run one request."""

    request: RunRequest
    workers: int
    source: str  # "static" | "calibrated" | "client"
    notes: tuple[str, ...] = ()
    parallel: str = "auto"  # the pinned distribution tier ("auto" = unpinned)

    def to_json(self) -> dict:
        return {
            "workers": self.workers,
            "parallel": self.parallel,
            "source": self.source,
            "notes": list(self.notes),
        }


def _requested_workers(request: RunRequest) -> int | None:
    """The worker count the client asked for (None = unspecified)."""
    if request.kind == "atpg":
        return None if request.atpg is None else request.atpg.workers
    return None if request.selection is None else request.selection.workers


def _requested_parallel(request: RunRequest) -> str:
    """The distribution tier the client asked for ("auto" = unspecified)."""
    if request.kind == "atpg":
        config = request.atpg
    else:
        config = request.selection
    return "auto" if config is None else config.parallel


def _threads_viable(profile: MachineProfile | None) -> bool:
    """Whether the thread tier is worth pinning jobs to on this machine.

    Without a calibrated profile, optimistically yes — the static
    resolution underneath (:func:`~repro.sim.workerpool.
    resolve_work_distribution`) still collapses threads to serial on a
    single-core box or a non-native backend, so the pin is safe either
    way.  With a measurement, trust it.
    """
    if profile is None or not profile.calibrated:
        return True
    best = max(profile.fault_thread_speedup, profile.candidate_thread_speedup)
    return best >= SHARD_SPEEDUP_THRESHOLD


def plan_execution(
    request: RunRequest,
    profile: MachineProfile | None,
    lanes: int = 1,
) -> ExecutionPlan:
    """Resolve ``request``'s execution through the machine profile.

    Without a profile the request runs exactly as the client wrote it.
    With one, the profile's measurement wins: ``workers in (None, 0)``
    becomes the measured recommendation, and an explicit shard request on
    a machine where calibration measured sharding as a loss is planned
    down to serial (the request is rewritten so the static thresholds
    underneath never see the losing worker count).

    ``lanes`` is the service's executor-lane count.  Beyond one lane,
    jobs whose tier is ``processes`` — or ``auto``, which could resolve
    to it — are pinned to ``threads`` (when viable, see
    :func:`_threads_viable`) or ``serial``: concurrent jobs must not
    contend for the shared worker pool, whose parent-side dispatch
    protocol serves one dispatch at a time.
    """
    requested = _requested_workers(request)
    mode = _requested_parallel(request)
    notes = []
    if profile is None:
        # No measurement to apply: the request passes through untouched
        # (lane pinning below still rewrites it when it must).
        planned = requested if requested not in (None, 0) else 1
        requested = planned
        source = "client"
    else:
        planned = profile.resolve_workers(requested)
        source = profile.source
        if requested in (None, 0):
            notes.append(
                f"auto workers -> {planned} ({profile.source} profile)"
            )
        elif planned != requested:
            notes.append(
                f"profile overrode workers {requested} -> {planned}: "
                + "; ".join(profile.notes or ("measured serial wins",))
            )
    if lanes > 1 and planned > 1 and mode in ("auto", "processes"):
        pinned = "threads" if _threads_viable(profile) else "serial"
        notes.append(
            f"lanes={lanes}: tier {mode!r} pinned to {pinned!r} "
            "(concurrent jobs must stay off the shared worker pool)"
        )
        mode = pinned
        if pinned == "serial":
            planned = 1
    if planned != requested:
        request = request.with_workers(planned)
    if mode != _requested_parallel(request):
        request = request.with_parallel(mode)
    return ExecutionPlan(
        request=request,
        workers=planned,
        source=source,
        notes=tuple(notes),
        parallel=mode,
    )


@dataclass
class FairScheduler:
    """Per-tenant FIFO queues drained round-robin.

    ``push(tenant, item)`` appends to the tenant's queue; ``pop()``
    returns the next ``(tenant, item)`` in round-robin order over the
    tenants that currently have work.  A tenant is visited once per
    rotation no matter how deep its queue is.
    """

    _queues: dict[str, deque] = field(default_factory=dict)
    _ring: deque = field(default_factory=deque)

    def push(self, tenant: str, item) -> None:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            # Joins the rotation at the back: existing waiters go first.
            self._ring.append(tenant)
        queue.append(item)

    def pop(self):
        """Next ``(tenant, item)`` or ``None`` when idle."""
        while self._ring:
            tenant = self._ring.popleft()
            queue = self._queues.get(tenant)
            if not queue:
                continue
            item = queue.popleft()
            if queue:
                # Still has work: rejoin the rotation at the back.
                self._ring.append(tenant)
            return tenant, item
        return None

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def pending(self) -> dict[str, int]:
        """``{tenant: queued jobs}`` for observability endpoints."""
        return {
            tenant: len(queue)
            for tenant, queue in sorted(self._queues.items())
            if queue
        }
