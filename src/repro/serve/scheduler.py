"""Fair scheduling and profile-based execution planning.

Two concerns live here, both deliberately free of asyncio so they are
trivially unit-testable:

* :class:`FairScheduler` — per-tenant FIFO queues drained round-robin.
  Each tenant keeps its own submission order, but the *next* job always
  comes from the tenant that has waited longest since last being served,
  so a tenant submitting a hundred jobs cannot starve a tenant
  submitting one.
* :func:`plan_execution` — rewrite a :class:`~repro.core.request.RunRequest`
  so its worker counts come from the *measured*
  :class:`~repro.sim.autotune.MachineProfile` instead of whatever static
  default the client happened to ship.  This is where the calibration
  pass earns its keep: a client asking for ``workers=4`` on a machine
  whose profile measured sharding at 0.2x gets planned down to serial,
  and a client leaving ``workers=0`` ("auto") gets the measured
  recommendation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.request import RunRequest
from repro.sim.autotune import MachineProfile


@dataclass(frozen=True)
class ExecutionPlan:
    """How the service decided to run one request."""

    request: RunRequest
    workers: int
    source: str  # "static" | "calibrated" | "client"
    notes: tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {
            "workers": self.workers,
            "source": self.source,
            "notes": list(self.notes),
        }


def _requested_workers(request: RunRequest) -> int | None:
    """The worker count the client asked for (None = unspecified)."""
    if request.kind == "atpg":
        return None if request.atpg is None else request.atpg.workers
    return None if request.selection is None else request.selection.workers


def plan_execution(
    request: RunRequest, profile: MachineProfile | None
) -> ExecutionPlan:
    """Resolve ``request``'s worker counts through the machine profile.

    Without a profile the request runs exactly as the client wrote it.
    With one, the profile's measurement wins: ``workers in (None, 0)``
    becomes the measured recommendation, and an explicit shard request on
    a machine where calibration measured sharding as a loss is planned
    down to serial (the request is rewritten so the static thresholds
    underneath never see the losing worker count).
    """
    requested = _requested_workers(request)
    if profile is None:
        return ExecutionPlan(
            request=request,
            workers=1 if requested in (None, 0) else requested,
            source="client",
        )
    planned = profile.resolve_workers(requested)
    notes = []
    if requested in (None, 0):
        notes.append(
            f"auto workers -> {planned} ({profile.source} profile)"
        )
    elif planned != requested:
        notes.append(
            f"profile overrode workers {requested} -> {planned}: "
            + "; ".join(profile.notes or ("measured serial wins",))
        )
    if planned != requested:
        request = request.with_workers(planned)
    return ExecutionPlan(
        request=request,
        workers=planned,
        source=profile.source,
        notes=tuple(notes),
    )


@dataclass
class FairScheduler:
    """Per-tenant FIFO queues drained round-robin.

    ``push(tenant, item)`` appends to the tenant's queue; ``pop()``
    returns the next ``(tenant, item)`` in round-robin order over the
    tenants that currently have work.  A tenant is visited once per
    rotation no matter how deep its queue is.
    """

    _queues: dict[str, deque] = field(default_factory=dict)
    _ring: deque = field(default_factory=deque)

    def push(self, tenant: str, item) -> None:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            # Joins the rotation at the back: existing waiters go first.
            self._ring.append(tenant)
        queue.append(item)

    def pop(self):
        """Next ``(tenant, item)`` or ``None`` when idle."""
        while self._ring:
            tenant = self._ring.popleft()
            queue = self._queues.get(tenant)
            if not queue:
                continue
            item = queue.popleft()
            if queue:
                # Still has work: rejoin the rotation at the back.
                self._ring.append(tenant)
            return tenant, item
        return None

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def pending(self) -> dict[str, int]:
        """``{tenant: queued jobs}`` for observability endpoints."""
        return {
            tenant: len(queue)
            for tenant, queue in sorted(self._queues.items())
            if queue
        }
