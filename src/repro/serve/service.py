"""The asynchronous job service: one warm session, many tenants.

:class:`JobService` is the in-process heart of BIST-as-a-service.  It
owns exactly one :class:`repro.Session` (``own_caches=True`` — service
shutdown releases the worker pools and trace caches) and executes every
submitted :class:`~repro.core.request.RunRequest` against it, so all
tenants share compiled circuits, program LRUs and good-machine traces:
the second request for a circuit — from *any* tenant — reuses the
fault-free trace the first one computed, visible as ``trace_stats``
hits in its result.

Jobs run on ``lanes`` concurrent executor threads (default one).  The
session is concurrency-safe — registries are lock-guarded and scope
frames are per thread — and ctypes releases the GIL for the native
kernels' whole C calls, so two lanes really do overlap on the hot
loops.  What lanes may *not* share is the persistent process
:class:`~repro.sim.workerpool.WorkerPool` (one parent dispatch at a
time), so the planner pins every job of a multi-lane service to the
in-kernel thread tier or to serial
(:func:`~repro.serve.scheduler.plan_execution` with ``lanes=N``).
Submission, status polling and completion waits are all
``asyncio``-friendly and the order of dispatch is the per-tenant
round-robin of :class:`~repro.serve.scheduler.FairScheduler`, never raw
FIFO.

At :meth:`start`, the service resolves its machine profile via
:func:`repro.sim.autotune.profile_for_startup` — load the persisted
calibration if present, else measure (quick mode), else fall back to
the static defaults — and every job's worker counts are planned through
it (:func:`~repro.serve.scheduler.plan_execution`).
"""

from __future__ import annotations

import asyncio
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.request import RunRequest, RunResult
from repro.core.session import Session
from repro.errors import ReproError
from repro.serve.scheduler import ExecutionPlan, FairScheduler, plan_execution
from repro.sim.autotune import MachineProfile

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted request and everything known about its execution."""

    id: str
    tenant: str
    request: RunRequest
    plan: ExecutionPlan
    status: str = "queued"
    result: RunResult | None = None
    error: str | None = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def to_json(self) -> dict:
        """The wire form of the job (what ``GET /jobs/<id>`` returns)."""
        payload = {
            "id": self.id,
            "tenant": self.tenant,
            "status": self.status,
            "plan": self.plan.to_json(),
        }
        if self.result is not None:
            payload["result"] = self.result.to_json()
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobService:
    """Accept jobs from many tenants; run them on one warm session.

    Usage::

        service = JobService()
        await service.start()
        job_id = await service.submit("tenant-a", request)
        job = await service.wait(job_id)
        await service.stop()

    ``profile`` pins a pre-built machine profile (tests use this);
    without one, :meth:`start` resolves it with
    :func:`~repro.sim.autotune.profile_for_startup` (``autotune=False``
    skips measurement and uses the static profile, for callers that
    cannot afford a calibration pass).  ``lanes`` is the number of jobs
    that may execute concurrently (each on its own executor thread over
    the one warm session); beyond one lane, jobs are planned away from
    the shared process pool — see :mod:`repro.serve.scheduler`.
    """

    def __init__(
        self,
        profile: MachineProfile | None = None,
        autotune: bool = True,
        quick_calibration: bool = True,
        profile_path=None,
        lanes: int = 1,
    ) -> None:
        if lanes < 1:
            raise ReproError(f"a JobService needs >= 1 lane (got {lanes})")
        self._pinned_profile = profile
        self._autotune = autotune
        self._quick = quick_calibration
        self._profile_path = profile_path
        self._lanes = int(lanes)
        self._session: Session | None = None
        self._scheduler = FairScheduler()
        self._jobs: dict[str, Job] = {}
        self._counter = 0
        self._completed = 0
        self._failed = 0
        self._per_tenant: dict[str, int] = {}
        self._wakeup: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._running: set[asyncio.Task] = set()
        self._executor: ThreadPoolExecutor | None = None
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    @property
    def profile(self) -> MachineProfile | None:
        return None if self._session is None else self._session.profile

    @property
    def lanes(self) -> int:
        return self._lanes

    async def start(self) -> None:
        """Resolve the machine profile, warm the session, start dispatching."""
        if self._started:
            return
        loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self._lanes, thread_name_prefix="repro-serve"
        )
        profile = self._pinned_profile
        if profile is None:
            if self._autotune:
                from repro.sim.autotune import profile_for_startup

                # Calibration fault-simulates; keep it off the event loop.
                profile = await loop.run_in_executor(
                    self._executor,
                    lambda: profile_for_startup(
                        path=self._profile_path, quick=self._quick
                    ),
                )
            else:
                from repro.sim.autotune import static_profile

                profile = static_profile()
        self._session = Session(profile=profile, own_caches=True)
        self._wakeup = asyncio.Event()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatch"
        )
        self._started = True

    async def stop(self) -> None:
        """Drain nothing, cancel the dispatcher, release the session."""
        if not self._started or self._stopping:
            return
        self._stopping = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for task in list(self._running):
            task.cancel()
        if self._running:
            await asyncio.gather(*self._running, return_exceptions=True)
        self._running.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._session is not None:
            self._session.close()
            self._session = None
        self._started = False
        self._stopping = False

    async def __aenter__(self) -> "JobService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Submission and queries
    # ------------------------------------------------------------------
    async def submit(self, tenant: str, request: RunRequest) -> str:
        """Queue ``request`` for ``tenant``; returns the job id."""
        if not self._started or self._session is None:
            raise ReproError("JobService.submit before start()")
        if not tenant:
            raise ReproError("a job needs a non-empty tenant name")
        self._counter += 1
        job = Job(
            id=f"job-{self._counter:06d}",
            tenant=tenant,
            request=request,
            plan=plan_execution(
                request, self._session.profile, lanes=self._lanes
            ),
        )
        self._jobs[job.id] = job
        self._scheduler.push(tenant, job)
        self._wakeup.set()
        return job.id

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return job

    async def wait(self, job_id: str) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.get(job_id)
        await job.done.wait()
        return job

    async def run(self, tenant: str, request: RunRequest) -> RunResult:
        """Submit, wait, and return the result (raises on job failure)."""
        job = await self.wait(await self.submit(tenant, request))
        if job.status == "failed":
            raise ReproError(f"job {job.id} failed: {job.error}")
        assert job.result is not None
        return job.result

    def stats(self) -> dict:
        """Service counters for the ``/stats`` endpoint."""
        profile = self.profile
        return {
            "started": self._started,
            "lanes": self._lanes,
            "jobs_submitted": self._counter,
            "jobs_completed": self._completed,
            "jobs_failed": self._failed,
            "jobs_running": len(self._running),
            "jobs_queued": len(self._scheduler),
            "queued_by_tenant": self._scheduler.pending(),
            "completed_by_tenant": dict(sorted(self._per_tenant.items())),
            "profile": None if profile is None else profile.to_json(),
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        """Keep up to ``lanes`` jobs in flight, fair-ordered, forever.

        The loop only *launches* work: each popped job becomes its own
        task so a long job on one lane never delays dispatch to a free
        lane.  It sleeps when the queue is empty or every lane is busy;
        submissions and job completions both set the wakeup event.
        """
        while True:
            if len(self._running) >= self._lanes:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            entry = self._scheduler.pop()
            if entry is None:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            _, job = entry
            task = asyncio.create_task(
                self._run_job(job), name=f"repro-serve-{job.id}"
            )
            self._running.add(task)
            task.add_done_callback(self._lane_freed)

    def _lane_freed(self, task: asyncio.Task) -> None:
        self._running.discard(task)
        if self._wakeup is not None:
            self._wakeup.set()

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.status = "running"
        try:
            job.result = await loop.run_in_executor(
                self._executor, self._session.run, job.plan.request
            )
            job.status = "done"
            self._completed += 1
            self._per_tenant[job.tenant] = (
                self._per_tenant.get(job.tenant, 0) + 1
            )
        except asyncio.CancelledError:
            job.status = "failed"
            job.error = "service stopped"
            job.done.set()
            raise
        except Exception:
            job.status = "failed"
            job.error = traceback.format_exc(limit=8)
            self._failed += 1
        job.done.set()
