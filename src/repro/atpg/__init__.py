"""Sequential ATPG substrate (substitute for STRATEGATE [11] + [12]).

The paper consumes a deterministic test sequence ``T0`` produced by the
STRATEGATE test generator and compacted by vector-restoration static
compaction.  Neither tool is available, so this package provides a
from-scratch substitute with the same contract: given a circuit, produce a
reasonably short sequence ``T0`` with good stuck-at coverage, plus a
static compactor that shortens it without losing coverage.

Phases of :func:`generate_t0`:

1. **random phase** — candidate batches of random vectors, keeping
   extensions that detect new faults;
2. **greedy phase** — several candidate extensions per step, keeping the
   best (a light-weight stand-in for STRATEGATE's GA over vectors);
3. **genetic phase** — a per-fault genetic algorithm over whole sequences
   for the remaining hard faults, with a state-divergence fitness in the
   spirit of STRATEGATE's dynamic state traversal;
4. **truncation + static compaction** — drop useless tail vectors, then
   omission-based compaction (the role of [12]).
"""

from repro.atpg.config import AtpgConfig
from repro.atpg.engine import AtpgResult, generate_t0
from repro.atpg.compaction import compact_sequence, CompactionStats

__all__ = [
    "AtpgConfig",
    "AtpgResult",
    "generate_t0",
    "compact_sequence",
    "CompactionStats",
]
