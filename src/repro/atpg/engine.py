"""Top-level test generation: produce ``T0`` for a circuit.

See the package docstring for the phase structure.  The engine works
against the collapsed fault universe, keeps per-fault machine state in a
:class:`~repro.sim.faultsim.FaultSimSession` so that growing the sequence
is linear in its final length, and reports per-phase statistics so the
experiment harness can show where coverage came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atpg.compaction import CompactionStats, compact_sequence
from repro.atpg.config import AtpgConfig
from repro.atpg.genetic import attack_fault
from repro.atpg.random_gen import random_sequence, weighted_sequence
from repro.atpg.restoration import RestorationStats, restoration_compact
from repro.circuit.netlist import Circuit
from repro.core.ops import concat
from repro.core.sequence import TestSequence
from repro.core.session import Session, use_session
from repro.faults.universe import FaultUniverse
from repro.sim.compiled import CompiledCircuit
from repro.util.rng import SplitMix64, derive_seed

#: Bit-probability mix for the weighted-random greedy candidates.
_WEIGHTS = (0.5, 0.25, 0.75, 0.1, 0.9)


@dataclass
class AtpgResult:
    """``T0`` and how it was obtained."""

    circuit_name: str
    sequence: TestSequence
    total_faults: int
    detected: int
    detected_random: int = 0
    detected_greedy: int = 0
    detected_genetic: int = 0
    genetic_attempts: int = 0
    compaction: CompactionStats | RestorationStats | None = None
    phase_log: list[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 0.0
        return self.detected / self.total_faults

    @property
    def length(self) -> int:
        return len(self.sequence)


def generate_t0(
    circuit: Circuit | CompiledCircuit,
    config: AtpgConfig | None = None,
    universe: FaultUniverse | None = None,
    session: Session | None = None,
) -> AtpgResult:
    """Generate a deterministic test sequence for ``circuit``."""
    config = config or AtpgConfig()
    compiled = (
        circuit if isinstance(circuit, CompiledCircuit) else CompiledCircuit(circuit)
    )
    if universe is None:
        universe = FaultUniverse(compiled.circuit)
    with use_session(session) as sess:
        simulator = sess.fault_simulator(
            compiled,
            backend=config.backend,
            workers=config.workers,
            parallel=config.parallel,
        )
        width = compiled.num_inputs
        all_faults = list(universe.faults())
        session = simulator.session(all_faults)
        sequence = TestSequence.empty(width)
        result = AtpgResult(
            circuit_name=compiled.circuit.name,
            sequence=sequence,
            total_faults=len(all_faults),
            detected=0,
        )

        def commit(extension: TestSequence) -> int:
            nonlocal sequence
            sequence = concat(sequence, extension)
            return len(session.commit(extension))

        # ------------------------------------------------------------------
        # Phase 1: plain random extension.
        # ------------------------------------------------------------------
        rng = SplitMix64(derive_seed(config.seed, 0xA7B6))
        unproductive = 0
        while (
            session.num_remaining
            and unproductive < config.random_patience
            and len(sequence) + config.random_chunk <= config.max_length
        ):
            gained = commit(random_sequence(rng, width, config.random_chunk))
            result.detected_random += gained
            unproductive = 0 if gained else unproductive + 1
        result.phase_log.append(
            f"random: len={len(sequence)} detected={result.detected_random}"
        )

        # ------------------------------------------------------------------
        # Phase 2: greedy candidate selection with weighted randomness.
        # ------------------------------------------------------------------
        greedy_rng = SplitMix64(derive_seed(config.seed, 0x93ED))
        unproductive = 0
        while (
            session.num_remaining
            and unproductive < config.greedy_patience
            and len(sequence) + config.greedy_chunk <= config.max_length
        ):
            best_gain = 0
            best_extension: TestSequence | None = None
            for candidate_index in range(config.greedy_candidates):
                weight = _WEIGHTS[candidate_index % len(_WEIGHTS)]
                extension = weighted_sequence(
                    greedy_rng, width, config.greedy_chunk, weight
                )
                gain = session.peek(extension)
                if gain > best_gain:
                    best_gain = gain
                    best_extension = extension
            if best_extension is None:
                unproductive += 1
                continue
            result.detected_greedy += commit(best_extension)
            unproductive = 0
        result.phase_log.append(
            f"greedy: len={len(sequence)} detected={result.detected_greedy}"
        )

        # ------------------------------------------------------------------
        # Phase 3: genetic attack on the hardest remaining faults.
        # Candidates are evaluated stand-alone (all-X start) by the GA, so a
        # successful candidate is appended and the session advanced over it.
        # ------------------------------------------------------------------
        if session.num_remaining and config.genetic_targets > 0:
            targets = sorted(session.remaining_faults)[: config.genetic_targets]
            still_remaining = set(session.remaining_faults)
            for salt, fault in enumerate(targets):
                if fault not in still_remaining:
                    continue  # covered as a side effect of an earlier attack
                if len(sequence) + 2 * config.genetic_sequence_length > config.max_length:
                    break
                outcome = attack_fault(compiled, fault, config, salt=salt)
                result.genetic_attempts += 1
                if outcome.succeeded and outcome.sequence is not None:
                    result.detected_genetic += commit(outcome.sequence)
                    still_remaining = set(session.remaining_faults)
            result.phase_log.append(
                f"genetic: len={len(sequence)} detected={result.detected_genetic} "
                f"attempts={result.genetic_attempts}"
            )

        # ------------------------------------------------------------------
        # Phase 4: static compaction (reference [12] role).
        # ------------------------------------------------------------------
        if len(sequence) and config.run_compaction:
            if config.compaction_method == "restoration":
                sequence, stats = restoration_compact(
                    compiled,
                    sequence,
                    all_faults,
                    backend=config.backend,
                    workers=config.workers,
                    chunking=config.chunking,
                    parallel=config.parallel,
                    session=sess,
                )
                result.compaction = stats
                result.phase_log.append(
                    f"restoration: {stats.original_length} -> {stats.final_length} "
                    f"({stats.restoration_events} events)"
                )
            elif config.compaction_method == "omission":
                sequence, stats = compact_sequence(
                    compiled,
                    sequence,
                    all_faults,
                    seed=derive_seed(config.seed, 0xC0DE),
                    max_rounds=config.compaction_rounds,
                    backend=config.backend,
                    workers=config.workers,
                    parallel=config.parallel,
                    session=sess,
                )
                result.compaction = stats
                result.phase_log.append(
                    f"omission: {stats.original_length} -> {stats.final_length}"
                )

        final = simulator.run(sequence, all_faults)
        result.sequence = sequence
        result.detected = final.num_detected
        return result
