"""Configuration for the ATPG substrate."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.sim.backend import DEFAULT_BACKEND
from repro.sim.scanplan import CHUNKING_MODES, DEFAULT_CHUNKING
from repro.sim.workerpool import PARALLEL_MODES


@dataclass(frozen=True)
class AtpgConfig:
    """Knobs for :func:`repro.atpg.engine.generate_t0`.

    The defaults suit the quick benchmark suite; the full suite and the
    examples tighten or loosen them explicitly.

    Attributes:
        seed: master seed; every phase derives independent substreams.
        random_chunk: vectors appended per random-phase extension attempt.
        random_patience: consecutive unproductive random extensions before
            moving to the greedy phase.
        greedy_candidates: candidate extensions evaluated per greedy step.
        greedy_chunk: vectors per greedy candidate.
        greedy_patience: consecutive unproductive greedy steps before the
            genetic phase.
        max_length: hard cap on ``len(T0)``.
        genetic_targets: max number of hard faults the GA attacks.
        genetic_population: GA population size.
        genetic_generations: GA generations per target fault.
        genetic_sequence_length: GA candidate sequence length.
        run_compaction: run static compaction at the end.
        compaction_method: ``"restoration"`` (vector restoration, the
            reference [12] approach — default), or ``"omission"``
            (try-delete-resimulate; thorough but quadratic).
        compaction_rounds: max full scan rounds of the omission compactor.
        backend: simulation backend name (see
            :func:`repro.sim.backend.available_backends`), or ``"auto"``
            to pick python vs numpy per circuit size and batch width.
        workers: worker processes (or thread lanes, under
            ``parallel="threads"``) for distributed fault simulation
            (:mod:`repro.sim.sharding`), borrowing the session's
            persistent worker pool; ``1`` is serial, ``0`` means one per
            CPU.  Never changes results, only throughput.  (The
            restoration compactor's candidate scans stay serial: each
            scan batch holds at most ``search_batch_width`` candidates,
            below the candidate axis's one-pass sharding floor.)
        parallel: work-distribution tier for multi-worker simulation
            (see :data:`repro.sim.workerpool.PARALLEL_MODES`):
            ``"auto"`` / ``"serial"`` / ``"threads"`` /
            ``"processes"``.  Results are bit-identical across tiers.
        chunking: worker-chunk boundary mode for any sharded candidate
            scan (``"cost"`` / ``"count"``, see
            :mod:`repro.sim.scanplan`); forwarded to the restoration
            compactor's sequence simulator.  Pure throughput knob —
            results are bit-identical either way.
    """

    seed: int = 20_1999
    random_chunk: int = 8
    random_patience: int = 6
    greedy_candidates: int = 6
    greedy_chunk: int = 8
    greedy_patience: int = 4
    max_length: int = 1200
    genetic_targets: int = 24
    genetic_population: int = 10
    genetic_generations: int = 12
    genetic_sequence_length: int = 24
    run_compaction: bool = True
    compaction_method: str = "restoration"
    compaction_rounds: int = 2
    backend: str = DEFAULT_BACKEND
    workers: int = 1
    chunking: str = DEFAULT_CHUNKING
    parallel: str = "auto"

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per CPU)")
        if self.parallel not in PARALLEL_MODES:
            raise ValueError(
                f"parallel must be one of {PARALLEL_MODES}, got "
                f"{self.parallel!r}"
            )
        if self.chunking not in CHUNKING_MODES:
            raise ValueError(
                f"chunking must be one of {CHUNKING_MODES}, got "
                f"{self.chunking!r}"
            )
        if self.max_length < 1:
            raise ValueError("max_length must be positive")
        if self.random_chunk < 1 or self.greedy_chunk < 1:
            raise ValueError("extension chunks must be positive")
        if self.genetic_population < 2:
            raise ValueError("genetic_population must be at least 2")
        if self.compaction_method not in ("restoration", "omission"):
            raise ValueError(
                f"unknown compaction method {self.compaction_method!r}"
            )

    # ------------------------------------------------------------------
    # Round-trips: JSON (the service wire format) and CLI namespaces
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Plain-dict form for the request/result JSON round-trip."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "AtpgConfig":
        """Inverse of :meth:`to_json` (validation re-runs in __post_init__)."""
        return cls(**payload)

    @classmethod
    def from_cli_args(cls, args) -> "AtpgConfig":
        """Build from an argparse namespace carrying the shared CLI flags."""
        return cls(
            seed=getattr(args, "seed", 20_1999),
            max_length=getattr(args, "max_length", 1200),
            backend=args.backend,
            workers=args.workers,
            chunking=args.chunking,
            parallel=getattr(args, "parallel", "auto"),
        )
