"""Single-fault observation simulator for ATPG guidance.

The genetic phase needs a *gradient*: how close does a candidate sequence
come to detecting a target fault?  Plain detected/not-detected gives no
signal, so this simulator runs the good and faulty machines together (one
slot each) and reports, per time unit, how many flip-flops hold
definitely-different values in the two machines — the classic
state-divergence measure STRATEGATE-style generators steer by — plus the
detection time if the fault propagates to a primary output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sequence import TestSequence
from repro.faults.model import Fault
from repro.sim.compiled import CompiledCircuit
from repro.sim.kernel import build_run_ops, eval_combinational, source_stem_patches


@dataclass(frozen=True)
class FaultObservation:
    """Guidance data for one (fault, sequence) pair."""

    detected_at: int | None
    max_state_divergence: int
    final_state_divergence: int
    divergence_area: int  # sum of per-cycle divergences

    @property
    def detected(self) -> bool:
        return self.detected_at is not None


class FaultObserver:
    """Runs good+faulty machines and measures state divergence."""

    def __init__(self, compiled: CompiledCircuit) -> None:
        self._compiled = compiled
        self._good_ops = build_run_ops(compiled, None)

    def observe(self, fault: Fault, sequence: TestSequence) -> FaultObservation:
        compiled = self._compiled
        plan = compiled.compile_plan([fault])
        faulty_ops = build_run_ops(compiled, plan)
        src_patches = source_stem_patches(compiled, plan)
        dff_patches = sorted(plan.dff_pin.items())
        po_patches = plan.po_pin

        n = compiled.num_signals
        GH = [0] * n
        GL = [0] * n
        FH = [0] * n
        FL = [0] * n
        pi_indices = compiled.pi_indices
        po_indices = compiled.po_indices
        flop_pairs = compiled.flop_pairs
        good_state: list[tuple[int, int]] = [(0, 0)] * len(flop_pairs)
        faulty_state: list[tuple[int, int]] = [(0, 0)] * len(flop_pairs)

        detected_at: int | None = None
        max_divergence = 0
        area = 0
        divergence = 0

        for t, vector in enumerate(sequence):
            for position, pi_index in enumerate(pi_indices):
                if vector[position]:
                    GH[pi_index] = FH[pi_index] = 1
                    GL[pi_index] = FL[pi_index] = 0
                else:
                    GH[pi_index] = FH[pi_index] = 0
                    GL[pi_index] = FL[pi_index] = 1
            for position, (q_index, _) in enumerate(flop_pairs):
                GH[q_index], GL[q_index] = good_state[position]
                FH[q_index], FL[q_index] = faulty_state[position]
            for signal_index, sa1, sa0 in src_patches:
                FH[signal_index] = (FH[signal_index] | sa1) & ~sa0
                FL[signal_index] = (FL[signal_index] | sa0) & ~sa1

            eval_combinational(self._good_ops, GH, GL)
            eval_combinational(faulty_ops, FH, FL)

            if detected_at is None:
                for position, po_index in enumerate(po_indices):
                    fh = FH[po_index]
                    fl = FL[po_index]
                    patch = po_patches.get(position)
                    if patch is not None:
                        sa1, sa0 = patch
                        fh = (fh | sa1) & ~sa0
                        fl = (fl | sa0) & ~sa1
                    if (GH[po_index] and fl) or (GL[po_index] and fh):
                        detected_at = t
                        break

            good_state = [(GH[d], GL[d]) for _, d in flop_pairs]
            next_faulty = [(FH[d], FL[d]) for _, d in flop_pairs]
            for position, (sa1, sa0) in dff_patches:
                h, l = next_faulty[position]
                next_faulty[position] = ((h | sa1) & ~sa0, (l | sa0) & ~sa1)
            faulty_state = next_faulty

            divergence = 0
            for (gh, gl), (fh, fl) in zip(good_state, faulty_state):
                if (gh and fl) or (gl and fh):
                    divergence += 1
            max_divergence = max(max_divergence, divergence)
            area += divergence
            if detected_at is not None:
                break

        return FaultObservation(
            detected_at=detected_at,
            max_state_divergence=max_divergence,
            final_state_divergence=divergence,
            divergence_area=area,
        )
