"""Random-vector helpers shared by the ATPG phases."""

from __future__ import annotations

from repro.core.sequence import TestSequence
from repro.util.rng import SplitMix64


def random_vector(rng: SplitMix64, width: int) -> list[int]:
    """One uniformly random binary input vector."""
    return [rng.next_u64() & 1 for _ in range(width)]


def random_sequence(rng: SplitMix64, width: int, length: int) -> TestSequence:
    """A sequence of ``length`` uniformly random vectors."""
    return TestSequence([random_vector(rng, width) for _ in range(length)])


def weighted_sequence(
    rng: SplitMix64, width: int, length: int, ones_probability: float
) -> TestSequence:
    """A random sequence with biased bit probability.

    Biased vectors help activate faults deep in AND/OR trees, a standard
    weighted-random-pattern trick; the greedy phase mixes several weights.
    """
    return TestSequence(
        [rng.sample_bits(width, ones_probability) for _ in range(length)]
    )


def mutate_sequence(
    rng: SplitMix64, sequence: TestSequence, bit_flip_probability: float
) -> TestSequence:
    """Flip each bit independently with the given probability (GA mutation)."""
    mutated = []
    for vector in sequence:
        mutated.append(
            [
                bit ^ 1 if rng.random() < bit_flip_probability else bit
                for bit in vector
            ]
        )
    return TestSequence(mutated)


def crossover(
    rng: SplitMix64, left: TestSequence, right: TestSequence
) -> TestSequence:
    """Single-point crossover at a vector boundary (GA recombination)."""
    if len(left) == 0 or len(right) == 0:
        return left if len(left) else right
    cut_left = rng.randint(0, len(left))
    cut_right = rng.randint(0, len(right))
    vectors = left.vectors()[:cut_left] + right.vectors()[cut_right:]
    if not vectors:
        vectors = left.vectors()[:1]
    return TestSequence(vectors)
