"""Static compaction of a test sequence (the role of reference [12]).

Reference [12] shortens a sequence by *vector restoration*: starting from
an empty sequence, it restores only the vectors needed to re-detect every
fault, hardest first.  We implement the same contract with two combined
techniques that are simpler to verify:

* **tail truncation** — cut everything after the last first-detection
  (exactly optimal for the suffix; restoration would never keep it);
* **omission passes** — try deleting vectors one at a time (round-robin
  over positions, seeded order), keeping a deletion whenever full fault
  simulation shows the detected set is preserved.

The result is a shorter sequence with *identical or larger* detected
fault set, which is all the downstream scheme requires of ``T0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sequence import TestSequence
from repro.core.session import Session, use_session
from repro.faults.model import Fault
from repro.sim.compiled import CompiledCircuit
from repro.util.rng import SplitMix64, derive_seed


@dataclass(frozen=True)
class CompactionStats:
    """What the compactor did."""

    original_length: int
    truncated_length: int
    final_length: int
    omissions_accepted: int
    simulations: int


def compact_sequence(
    compiled: CompiledCircuit,
    sequence: TestSequence,
    faults: list[Fault],
    seed: int = 12_1999,
    max_rounds: int = 2,
    backend: str | None = None,
    workers: int = 1,
    parallel: str | None = None,
    session: Session | None = None,
) -> tuple[TestSequence, CompactionStats]:
    """Shorten ``sequence`` while preserving coverage of ``faults``.

    ``faults`` is typically the collapsed universe; coverage preservation
    is judged on the set of faults detected, not on detection times.
    """
    with use_session(session) as sess:
        simulator = sess.fault_simulator(
            compiled, backend=backend, workers=workers, parallel=parallel
        )
        simulations = 0

        baseline = simulator.run(sequence, faults)
        simulations += 1
        target_detected = set(baseline.detection_time)
        original_length = len(sequence)

        # Tail truncation: nothing after the last first-detection can add
        # coverage, and removing it cannot remove coverage.
        if baseline.detection_time:
            last_useful = max(baseline.detection_time.values())
            if last_useful + 1 < len(sequence):
                sequence = sequence.subsequence(0, last_useful)
        truncated_length = len(sequence)

        # Omission passes.
        rng = SplitMix64(derive_seed(seed, len(sequence)))
        accepted = 0
        for _ in range(max_rounds):
            if len(sequence) <= 1:
                break
            improved = False
            order = list(range(len(sequence)))
            rng.shuffle(order)
            # Positions shift as vectors are removed; work on a mutable list
            # of vectors and re-derive candidate sequences per attempt.
            for position in order:
                if position >= len(sequence) or len(sequence) <= 1:
                    continue
                candidate = sequence.omit(position)
                result = simulator.run(candidate, sorted(target_detected))
                simulations += 1
                if set(result.detection_time) >= target_detected:
                    sequence = candidate
                    accepted += 1
                    improved = True
            if not improved:
                break

        stats = CompactionStats(
            original_length=original_length,
            truncated_length=truncated_length,
            final_length=len(sequence),
            omissions_accepted=accepted,
            simulations=simulations,
        )
        return sequence, stats
