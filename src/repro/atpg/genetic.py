"""Per-fault genetic search for hard-to-detect faults.

A small GA over whole input sequences, steered by the state-divergence
fitness of :mod:`repro.atpg.observe` — the same signal family STRATEGATE's
dynamic state traversal uses.  The GA is only invoked for faults the
random and greedy phases leave undetected, and only for a bounded number
of targets, so its cost stays a small fraction of the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.config import AtpgConfig
from repro.atpg.observe import FaultObserver
from repro.atpg.random_gen import crossover, mutate_sequence, random_sequence
from repro.core.sequence import TestSequence
from repro.faults.model import Fault
from repro.sim.compiled import CompiledCircuit
from repro.util.rng import SplitMix64, derive_seed

#: Fitness reward for actual detection; dwarfs any divergence score.
_DETECTION_REWARD = 1_000_000


@dataclass(frozen=True)
class GeneticOutcome:
    """Result of one GA run for one target fault."""

    fault: Fault
    sequence: TestSequence | None
    generations_used: int
    evaluations: int

    @property
    def succeeded(self) -> bool:
        return self.sequence is not None


def _fitness(observer: FaultObserver, fault: Fault, candidate: TestSequence) -> int:
    observation = observer.observe(fault, candidate)
    if observation.detected:
        # Earlier detection is better (leaves room for truncation).
        return _DETECTION_REWARD + (len(candidate) - observation.detected_at)
    return (
        observation.max_state_divergence * 1000
        + observation.final_state_divergence * 100
        + observation.divergence_area
    )


def attack_fault(
    compiled: CompiledCircuit,
    fault: Fault,
    config: AtpgConfig,
    salt: int,
) -> GeneticOutcome:
    """Run the GA for one fault; returns a detecting sequence if found."""
    rng = SplitMix64(derive_seed(config.seed, 0x6E6, salt))
    observer = FaultObserver(compiled)
    width = compiled.num_inputs
    population = [
        random_sequence(rng, width, config.genetic_sequence_length)
        for _ in range(config.genetic_population)
    ]
    evaluations = 0
    scores = []
    for candidate in population:
        score = _fitness(observer, fault, candidate)
        evaluations += 1
        if score >= _DETECTION_REWARD:
            return GeneticOutcome(fault, candidate, 0, evaluations)
        scores.append(score)

    for generation in range(1, config.genetic_generations + 1):
        ranked = sorted(
            range(len(population)), key=lambda i: scores[i], reverse=True
        )
        elite = [population[i] for i in ranked[: max(2, len(ranked) // 3)]]
        next_population = list(elite)
        while len(next_population) < config.genetic_population:
            parent_a = elite[rng.randint(0, len(elite) - 1)]
            parent_b = population[rng.randint(0, len(population) - 1)]
            child = crossover(rng, parent_a, parent_b)
            if len(child) > 2 * config.genetic_sequence_length:
                child = child.subsequence(0, 2 * config.genetic_sequence_length - 1)
            child = mutate_sequence(rng, child, bit_flip_probability=2.0 / max(1, width))
            next_population.append(child)
        population = next_population
        scores = []
        for candidate in population:
            score = _fitness(observer, fault, candidate)
            evaluations += 1
            if score >= _DETECTION_REWARD:
                return GeneticOutcome(fault, candidate, generation, evaluations)
            scores.append(score)
    return GeneticOutcome(fault, None, config.genetic_generations, evaluations)
