"""Vector-restoration static compaction (reference [12] substitute).

The algorithm of Pomeranz & Reddy's ICCD'97 compaction paper, as the DAC'99
paper uses it for ``T0``:

1. Fault-simulate ``T0``; record ``udet(f)`` for every detected fault.
2. Start from an *empty* set of kept vector positions.
3. Repeatedly take the undetected-by-kept fault ``f`` with the highest
   ``udet``; *restore* the contiguous window ``T0[j .. udet(f)]`` for the
   largest ``j`` such that the kept vectors (in original order) detect
   ``f``.  The window search is batched through the parallel-sequence
   simulator, exactly like Procedure 2's ``ustart`` search.
4. Fault-simulate the kept vectors against all still-uncovered faults and
   drop everything detected; loop until all faults are covered.

The result is ``T0`` restricted to the kept positions — never longer, and
by construction it detects every fault ``T0`` detects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sequence import TestSequence
from repro.core.session import Session, use_session
from repro.errors import AtpgError
from repro.faults.model import Fault
from repro.sim.compiled import CompiledCircuit
from repro.sim.scanplan import DEFAULT_CHUNKING


@dataclass(frozen=True)
class RestorationStats:
    """Diagnostics of one restoration-compaction run."""

    original_length: int
    final_length: int
    restoration_events: int
    window_candidates: int

    @property
    def ratio(self) -> float:
        if self.original_length == 0:
            return 1.0
        return self.final_length / self.original_length


def _candidate(
    t0: TestSequence, kept: set[int], window_start: int, window_end: int
) -> TestSequence:
    """T0 restricted to kept positions plus the window, in original order."""
    positions = sorted(kept | set(range(window_start, window_end + 1)))
    return TestSequence([t0[p] for p in positions])


def restoration_compact(
    compiled: CompiledCircuit,
    t0: TestSequence,
    faults: list[Fault],
    search_batch_width: int = 24,
    backend: str | None = None,
    workers: int = 1,
    chunking: str = DEFAULT_CHUNKING,
    parallel: str | None = None,
    session: Session | None = None,
) -> tuple[TestSequence, RestorationStats]:
    """Compact ``t0`` by vector restoration, preserving its coverage."""
    with use_session(session) as sess:
        fault_simulator = sess.fault_simulator(
            compiled, backend=backend, workers=workers, parallel=parallel
        )
        sequence_simulator = sess.sequence_simulator(
            compiled,
            batch_width=search_batch_width,
            backend=backend,
            workers=workers,
            chunking=chunking,
            parallel=parallel,
        )
        baseline = fault_simulator.run(t0, faults)
        udet = dict(baseline.detection_time)
        if not udet:
            return TestSequence.empty(t0.width), RestorationStats(len(t0), 0, 0, 0)

        uncovered = sorted(udet, key=lambda f: (-udet[f], str(f)))
        kept: set[int] = set()
        events = 0
        candidates_tried = 0

        while uncovered:
            target = uncovered[0]
            end = udet[target]
            # Window search: largest j in [0, end] such that kept + window
            # detects the target.  j = 0 always works (full prefix intact).
            found_j: int | None = None
            next_j = end
            while next_j >= 0 and found_j is None:
                batch_js = list(range(next_j, max(-1, next_j - search_batch_width), -1))
                candidates = [_candidate(t0, kept, j, end) for j in batch_js]
                outcomes = sequence_simulator.detects(target, candidates)
                candidates_tried += len(candidates)
                for j, detected in zip(batch_js, outcomes):
                    if detected:
                        found_j = j
                        break
                next_j = batch_js[-1] - 1
            if found_j is None:
                raise AtpgError(
                    f"restoration could not re-detect {target} even with the "
                    "full prefix restored — simulator inconsistency"
                )
            kept |= set(range(found_j, end + 1))
            events += 1

            current = TestSequence([t0[p] for p in sorted(kept)])
            sim = fault_simulator.run(current, uncovered)
            covered = set(sim.detection_time)
            if target not in covered:
                raise AtpgError(
                    f"restored window for {target} lost detection in re-simulation"
                )
            uncovered = [f for f in uncovered if f not in covered]

        final = TestSequence([t0[p] for p in sorted(kept)])
        stats = RestorationStats(
            original_length=len(t0),
            final_length=len(final),
            restoration_events=events,
            window_candidates=candidates_tried,
        )
        return final, stats
