"""Command line interface: ``repro-bist`` / ``python -m repro``.

Subcommands:

* ``info`` — list available circuits and their statistics.
* ``atpg`` — generate a test sequence ``T0`` for a circuit.
* ``run`` — run the load-and-expand scheme on one circuit.
* ``tables`` — regenerate the paper's Tables 3-5 for a suite.
* ``figure1`` — regenerate Figure 1 for one circuit.
"""

from __future__ import annotations

import argparse
import sys

from repro.atpg.config import AtpgConfig
from repro.atpg.engine import generate_t0
from repro.circuit.analysis import circuit_stats
from repro.circuits.catalog import available_circuits, load_circuit, paper_t0_s27
from repro.core.config import SelectionConfig
from repro.core.ops import ExpansionConfig
from repro.core.scheme import LoadAndExpandScheme
from repro.harness.figures import render_figure1
from repro.harness.runner import run_suite
from repro.sim.backend import (
    AUTO_BACKEND,
    DEFAULT_BACKEND,
    backend_unavailable_reason,
    registry_backends,
)
from repro.sim.scanplan import CHUNKING_MODES, DEFAULT_CHUNKING
from repro.util.text import format_table


def _cmd_info(args: argparse.Namespace) -> int:
    rows = []
    for name in available_circuits():
        stats = circuit_stats(load_circuit(name))
        rows.append(
            [
                name,
                stats.num_inputs,
                stats.num_outputs,
                stats.num_flops,
                stats.num_gates,
                stats.depth,
            ]
        )
    print(
        format_table(
            ["circuit", "inputs", "outputs", "flops", "gates", "depth"],
            rows,
            title="Available circuits",
        )
    )
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    circuit = load_circuit(args.circuit)
    config = AtpgConfig(
        seed=args.seed,
        max_length=args.max_length,
        backend=args.backend,
        workers=args.workers,
        chunking=args.chunking,
    )
    result = generate_t0(circuit, config)
    print(
        f"{result.circuit_name}: {result.detected}/{result.total_faults} faults "
        f"({result.coverage:.1%}), length {result.length}"
    )
    for line in result.phase_log:
        print("  " + line)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for row in result.sequence.to_strings():
                handle.write(row + "\n")
        print(f"T0 written to {args.output}")
    return 0


def _get_t0(args: argparse.Namespace, circuit) -> object:
    if args.circuit == "s27" and not args.atpg_t0:
        return paper_t0_s27()
    config = AtpgConfig(
        seed=args.seed,
        max_length=args.max_length,
        backend=args.backend,
        workers=args.workers,
        chunking=args.chunking,
    )
    return generate_t0(circuit, config).sequence


def _cmd_run(args: argparse.Namespace) -> int:
    circuit = load_circuit(args.circuit)
    t0 = _get_t0(args, circuit)
    scheme = LoadAndExpandScheme(circuit)
    config = SelectionConfig.for_backend(
        args.backend,
        expansion=ExpansionConfig(repetitions=args.n),
        seed=args.seed,
        workers=args.workers,
        chunking=args.chunking,
    )
    run = scheme.run(t0, config)
    result = run.result
    print(
        f"{result.circuit_name} n={result.repetitions}: "
        f"T0 len {result.t0_length}, faults {result.detected_by_t0}/"
        f"{result.total_faults} detected by T0"
    )
    print(
        f"  before compaction: |S|={result.num_sequences_before} "
        f"tot={result.total_length_before} max={result.max_length_before}"
    )
    print(
        f"  after  compaction: |S|={result.num_sequences_after} "
        f"tot={result.total_length_after} max={result.max_length_after}"
    )
    print(
        f"  ratios: tot/len={result.total_ratio:.2f} max/len={result.max_ratio:.2f}; "
        f"applied at-speed vectors: {result.applied_test_length}"
    )
    print(f"  coverage preserved: {result.coverage_preserved}")
    if args.figure:
        print()
        print(render_figure1(run))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    n_values = tuple(args.n) if args.n else None
    result = run_suite(
        args.suite,
        n_values=n_values,
        progress=print,
        backend=args.backend,
        workers=args.workers,
    )
    print()
    print(result.tables())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import write_experiments_report

    result = run_suite(
        args.suite, progress=print, backend=args.backend, workers=args.workers
    )
    write_experiments_report(result, args.output)
    print(f"report written to {args.output}")
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    circuit = load_circuit(args.circuit)
    t0 = _get_t0(args, circuit)
    scheme = LoadAndExpandScheme(circuit)
    config = SelectionConfig.for_backend(
        args.backend,
        expansion=ExpansionConfig(repetitions=args.n),
        seed=args.seed,
        workers=args.workers,
        chunking=args.chunking,
    )
    run = scheme.run(t0, config)
    print(render_figure1(run))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bist",
        description=(
            "Reproduction of Pomeranz & Reddy (DAC 1999): built-in test "
            "sequence generation by loading and expansion of test subsequences"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--backend",
            choices=registry_backends() + [AUTO_BACKEND],
            default=DEFAULT_BACKEND,
            help=(
                "simulation backend (results are identical across "
                "backends; 'numpy' is the vectorized engine, 'native' "
                "the compiled C kernel — fastest everywhere but "
                "toy-sized circuits when a C compiler is present; "
                "'auto' picks the fastest available engine per circuit "
                "size and batch width)"
            ),
        )
        command.add_argument(
            "--workers",
            type=int,
            default=1,
            help=(
                "worker processes for process-sharded simulation on both "
                "hot axes: parallel-fault simulation and Procedure 2's "
                "candidate detection (1 = serial, 0 = one per CPU; both "
                "axes share one persistent pool, results are identical "
                "for any worker count, and small fault universes or "
                "candidate sets always run serially)"
            ),
        )
        command.add_argument(
            "--chunking",
            choices=list(CHUNKING_MODES),
            default=DEFAULT_CHUNKING,
            help=(
                "worker-chunk boundaries for sharded candidate scans: "
                "'cost' balances simulated-step budgets (the right shape "
                "for Procedure 2's window ramps), 'count' is the "
                "historical equal-candidate plan; results are identical "
                "either way"
            ),
        )

    sub.add_parser("info", help="list available circuits").set_defaults(
        func=_cmd_info
    )

    atpg = sub.add_parser("atpg", help="generate a test sequence T0")
    atpg.add_argument("--circuit", required=True)
    atpg.add_argument("--seed", type=int, default=20_1999)
    atpg.add_argument("--max-length", type=int, default=600)
    atpg.add_argument("--output", help="write T0 vectors to a file")
    add_backend_flag(atpg)
    atpg.set_defaults(func=_cmd_atpg)

    run = sub.add_parser("run", help="run the load-and-expand scheme")
    run.add_argument("--circuit", required=True)
    run.add_argument("--n", type=int, default=4, help="repetition count n")
    run.add_argument("--seed", type=int, default=1999)
    run.add_argument("--max-length", type=int, default=600)
    run.add_argument(
        "--atpg-t0",
        action="store_true",
        help="use ATPG-generated T0 even for s27 (default: paper's T0)",
    )
    run.add_argument("--figure", action="store_true", help="print Figure 1")
    add_backend_flag(run)
    run.set_defaults(func=_cmd_run)

    tables = sub.add_parser("tables", help="regenerate Tables 3-5 for a suite")
    tables.add_argument(
        "--suite", choices=["quick", "standard", "full"], default=None
    )
    tables.add_argument(
        "--n", type=int, nargs="*", help="override the repetition sweep"
    )
    add_backend_flag(tables)
    tables.set_defaults(func=_cmd_tables)

    figure = sub.add_parser("figure1", help="regenerate Figure 1")
    figure.add_argument("--circuit", required=True)
    figure.add_argument("--n", type=int, default=4)
    figure.add_argument("--seed", type=int, default=1999)
    figure.add_argument("--max-length", type=int, default=600)
    figure.add_argument("--atpg-t0", action="store_true")
    add_backend_flag(figure)
    figure.set_defaults(func=_cmd_figure1)

    report = sub.add_parser(
        "report", help="run a suite and write the EXPERIMENTS.md report"
    )
    report.add_argument(
        "--suite", choices=["quick", "standard", "full"], default=None
    )
    report.add_argument("--output", default="EXPERIMENTS.md")
    add_backend_flag(report)
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Registered-but-unusable backends (e.g. 'native' without a C
    # compiler, or hidden via REPRO_NO_NATIVE) are valid argparse choices
    # so the reason reaches the user instead of a bare "invalid choice".
    name = getattr(args, "backend", None)
    if name is not None and name != AUTO_BACKEND:
        reason = backend_unavailable_reason(name)
        if reason is not None:
            parser.error(f"--backend {name}: {reason}")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
