"""Command line interface: ``repro-bist`` / ``python -m repro``.

Subcommands:

* ``info`` — list available circuits and their statistics.
* ``atpg`` — generate a test sequence ``T0`` for a circuit.
* ``run`` — run the load-and-expand scheme on one circuit.
* ``tables`` — regenerate the paper's Tables 3-5 for a suite.
* ``figure1`` — regenerate Figure 1 for one circuit.
* ``calibrate`` — measure this machine and persist an autotuning profile.
* ``serve`` — run the BIST-as-a-service HTTP front end.

Execution subcommands (``atpg``, ``run``, ``figure1``) all build the
same :class:`~repro.core.request.RunRequest` the HTTP service accepts
and execute it through one :class:`repro.Session` — the CLI is just
another client of the unified request/result API, so ``--json`` output
here is byte-for-byte the ``result`` payload a served job returns.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.atpg.config import AtpgConfig
from repro.circuit.analysis import circuit_stats
from repro.circuits.catalog import available_circuits, load_circuit
from repro.core.config import SelectionConfig
from repro.core.request import RunRequest
from repro.core.session import Session
from repro.harness.figures import render_figure1
from repro.harness.runner import run_suite
from repro.sim.autotune import load_profile
from repro.sim.backend import (
    AUTO_BACKEND,
    DEFAULT_BACKEND,
    backend_unavailable_reason,
    registry_backends,
)
from repro.sim.scanplan import CHUNKING_MODES, DEFAULT_CHUNKING
from repro.sim.workerpool import PARALLEL_MODES
from repro.util.text import format_table


def _session_for(args: argparse.Namespace) -> Session:
    """The session an execution subcommand runs under.

    ``--profile`` attaches the persisted machine profile (optionally
    from an explicit path) so calibration overrides the static worker
    thresholds; without the flag the session is profile-free and
    behaves exactly like the historical static code paths.
    """
    profile = None
    if getattr(args, "profile", None) is not None:
        profile = load_profile(args.profile or None)
        if profile is None:
            print("no machine profile found; run `repro-bist calibrate` first")
    return Session(profile=profile)


def _cmd_info(args: argparse.Namespace) -> int:
    rows = []
    for name in available_circuits():
        stats = circuit_stats(load_circuit(name))
        rows.append(
            [
                name,
                stats.num_inputs,
                stats.num_outputs,
                stats.num_flops,
                stats.num_gates,
                stats.depth,
            ]
        )
    print(
        format_table(
            ["circuit", "inputs", "outputs", "flops", "gates", "depth"],
            rows,
            title="Available circuits",
        )
    )
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    request = RunRequest(
        kind="atpg",
        circuit=args.circuit,
        atpg=AtpgConfig.from_cli_args(args),
    )
    with _session_for(args) as session:
        outcome = session.run_detailed(request)
    if args.json:
        print(json.dumps(outcome.result.to_json(), indent=2, sort_keys=True))
        return 0
    result = outcome.atpg
    print(
        f"{result.circuit_name}: {result.detected}/{result.total_faults} faults "
        f"({result.coverage:.1%}), length {result.length}"
    )
    for line in result.phase_log:
        print("  " + line)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for row in result.sequence.to_strings():
                handle.write(row + "\n")
        print(f"T0 written to {args.output}")
    return 0


def _scheme_request(args: argparse.Namespace) -> RunRequest:
    """The one flag-to-request path ``run`` and ``figure1`` share."""
    return RunRequest(
        kind="scheme",
        circuit=args.circuit,
        selection=SelectionConfig.from_cli_args(args),
        atpg=AtpgConfig.from_cli_args(args),
        use_paper_t0=not args.atpg_t0,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    with _session_for(args) as session:
        outcome = session.run_detailed(_scheme_request(args))
    if args.json:
        print(json.dumps(outcome.result.to_json(), indent=2, sort_keys=True))
        return 0
    run = outcome.scheme_run
    result = run.result
    print(
        f"{result.circuit_name} n={result.repetitions}: "
        f"T0 len {result.t0_length}, faults {result.detected_by_t0}/"
        f"{result.total_faults} detected by T0"
    )
    print(
        f"  before compaction: |S|={result.num_sequences_before} "
        f"tot={result.total_length_before} max={result.max_length_before}"
    )
    print(
        f"  after  compaction: |S|={result.num_sequences_after} "
        f"tot={result.total_length_after} max={result.max_length_after}"
    )
    print(
        f"  ratios: tot/len={result.total_ratio:.2f} max/len={result.max_ratio:.2f}; "
        f"applied at-speed vectors: {result.applied_test_length}"
    )
    print(f"  coverage preserved: {result.coverage_preserved}")
    if args.figure:
        print()
        print(render_figure1(run))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    n_values = tuple(args.n) if args.n else None
    result = run_suite(
        args.suite,
        n_values=n_values,
        progress=print,
        backend=args.backend,
        workers=args.workers,
        parallel=args.parallel,
    )
    print()
    print(result.tables())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import write_experiments_report

    result = run_suite(
        args.suite,
        progress=print,
        backend=args.backend,
        workers=args.workers,
        parallel=args.parallel,
    )
    write_experiments_report(result, args.output)
    print(f"report written to {args.output}")
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    with _session_for(args) as session:
        outcome = session.run_detailed(_scheme_request(args))
    print(render_figure1(outcome.scheme_run))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.sim.autotune import calibrate

    profile = calibrate(quick=not args.full)
    print(json.dumps(profile.to_json(), indent=2, sort_keys=True))
    for note in profile.notes:
        print(f"  note: {note}")
    if not args.no_save:
        path = profile.save(args.output or None)
        print(f"profile saved to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import HttpFrontend, JobService

    async def main() -> None:
        service = JobService(
            autotune=not args.no_autotune,
            quick_calibration=not args.full_calibration,
            lanes=args.lanes,
        )
        async with service:
            profile = service.profile
            if profile is not None:
                print(
                    f"machine profile: {profile.source} "
                    f"(workers={profile.workers}, backend={profile.backend})"
                )
            async with HttpFrontend(service, args.host, args.port) as http:
                print(f"serving on {http.address} (lanes={service.lanes})")
                try:
                    await asyncio.Event().wait()  # until interrupted
                except asyncio.CancelledError:
                    pass

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bist",
        description=(
            "Reproduction of Pomeranz & Reddy (DAC 1999): built-in test "
            "sequence generation by loading and expansion of test subsequences"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--backend",
            choices=registry_backends() + [AUTO_BACKEND],
            default=DEFAULT_BACKEND,
            help=(
                "simulation backend (results are identical across "
                "backends; 'numpy' is the vectorized engine, 'native' "
                "the compiled C kernel — fastest everywhere but "
                "toy-sized circuits when a C compiler is present; "
                "'auto' picks the fastest available engine per circuit "
                "size and batch width)"
            ),
        )
        command.add_argument(
            "--workers",
            type=int,
            default=1,
            help=(
                "worker processes for process-sharded simulation on both "
                "hot axes: parallel-fault simulation and Procedure 2's "
                "candidate detection (1 = serial, 0 = one per CPU; both "
                "axes share one persistent pool, results are identical "
                "for any worker count, and small fault universes or "
                "candidate sets always run serially)"
            ),
        )
        command.add_argument(
            "--parallel",
            choices=list(PARALLEL_MODES),
            default="auto",
            help=(
                "work-distribution tier for --workers > 1: 'threads' "
                "splits each native-kernel batch across in-process "
                "thread lanes, 'processes' uses the shard worker pool, "
                "'serial' forces one lane, and 'auto' (default) lets "
                "the machine profile / heuristics decide; results are "
                "identical across tiers"
            ),
        )
        command.add_argument(
            "--chunking",
            choices=list(CHUNKING_MODES),
            default=DEFAULT_CHUNKING,
            help=(
                "worker-chunk boundaries for sharded candidate scans: "
                "'cost' balances simulated-step budgets (the right shape "
                "for Procedure 2's window ramps), 'count' is the "
                "historical equal-candidate plan; results are identical "
                "either way"
            ),
        )
        command.add_argument(
            "--profile",
            nargs="?",
            const="",
            default=None,
            metavar="PATH",
            help=(
                "resolve worker counts through the persisted machine "
                "profile (see `calibrate`); optional PATH overrides the "
                "default profile location"
            ),
        )

    sub.add_parser("info", help="list available circuits").set_defaults(
        func=_cmd_info
    )

    atpg = sub.add_parser("atpg", help="generate a test sequence T0")
    atpg.add_argument("--circuit", required=True)
    atpg.add_argument("--seed", type=int, default=20_1999)
    atpg.add_argument("--max-length", type=int, default=600)
    atpg.add_argument("--output", help="write T0 vectors to a file")
    atpg.add_argument(
        "--json",
        action="store_true",
        help="print the RunResult JSON (the serving wire format)",
    )
    add_backend_flag(atpg)
    atpg.set_defaults(func=_cmd_atpg)

    run = sub.add_parser("run", help="run the load-and-expand scheme")
    run.add_argument("--circuit", required=True)
    run.add_argument("--n", type=int, default=4, help="repetition count n")
    run.add_argument("--seed", type=int, default=1999)
    run.add_argument("--max-length", type=int, default=600)
    run.add_argument(
        "--atpg-t0",
        action="store_true",
        help="use ATPG-generated T0 even for s27 (default: paper's T0)",
    )
    run.add_argument("--figure", action="store_true", help="print Figure 1")
    run.add_argument(
        "--json",
        action="store_true",
        help="print the RunResult JSON (the serving wire format)",
    )
    add_backend_flag(run)
    run.set_defaults(func=_cmd_run)

    tables = sub.add_parser("tables", help="regenerate Tables 3-5 for a suite")
    tables.add_argument(
        "--suite", choices=["quick", "standard", "full"], default=None
    )
    tables.add_argument(
        "--n", type=int, nargs="*", help="override the repetition sweep"
    )
    add_backend_flag(tables)
    tables.set_defaults(func=_cmd_tables)

    figure = sub.add_parser("figure1", help="regenerate Figure 1")
    figure.add_argument("--circuit", required=True)
    figure.add_argument("--n", type=int, default=4)
    figure.add_argument("--seed", type=int, default=1999)
    figure.add_argument("--max-length", type=int, default=600)
    figure.add_argument("--atpg-t0", action="store_true")
    add_backend_flag(figure)
    figure.set_defaults(func=_cmd_figure1)

    report = sub.add_parser(
        "report", help="run a suite and write the EXPERIMENTS.md report"
    )
    report.add_argument(
        "--suite", choices=["quick", "standard", "full"], default=None
    )
    report.add_argument("--output", default="EXPERIMENTS.md")
    add_backend_flag(report)
    report.set_defaults(func=_cmd_report)

    calibrate = sub.add_parser(
        "calibrate",
        help="measure serial-vs-sharded crossovers and persist the profile",
    )
    calibrate.add_argument(
        "--full",
        action="store_true",
        help="calibrate on a larger circuit and stimulus (slower, finer)",
    )
    calibrate.add_argument(
        "--output", help="profile path (default: REPRO_PROFILE or ~/.cache)"
    )
    calibrate.add_argument(
        "--no-save", action="store_true", help="measure and print only"
    )
    calibrate.set_defaults(func=_cmd_calibrate)

    serve = sub.add_parser(
        "serve", help="run the BIST-as-a-service HTTP front end"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8199)
    serve.add_argument(
        "--no-autotune",
        action="store_true",
        help="skip profile load/calibration; use static defaults",
    )
    serve.add_argument(
        "--full-calibration",
        action="store_true",
        help="use the full (slow) calibration when measuring at startup",
    )
    serve.add_argument(
        "--lanes",
        type=int,
        default=1,
        help=(
            "concurrent executor lanes over the warm session; beyond 1, "
            "jobs are planned onto the thread tier or serial (never the "
            "shared process pool)"
        ),
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Registered-but-unusable backends (e.g. 'native' without a C
    # compiler, or hidden via REPRO_NO_NATIVE) are valid argparse choices
    # so the reason reaches the user instead of a bare "invalid choice".
    name = getattr(args, "backend", None)
    if name is not None and name != AUTO_BACKEND:
        reason = backend_unavailable_reason(name)
        if reason is not None:
            parser.error(f"--backend {name}: {reason}")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
