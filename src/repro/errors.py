"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """A circuit netlist is structurally invalid (dangling nets, cycles...)."""


class BenchFormatError(NetlistError):
    """An ISCAS-89 ``.bench`` file could not be parsed."""


class SimulationError(ReproError):
    """A simulator was driven with inconsistent inputs or configuration."""


class FaultModelError(ReproError):
    """A fault refers to a line or site that does not exist in the circuit."""


class SelectionError(ReproError):
    """Procedure 1 / Procedure 2 could not make progress on a fault."""


class AtpgError(ReproError):
    """Test generation failed in a way that is not a normal 'fault aborted'."""


class HardwareModelError(ReproError):
    """The BIST hardware model was configured or driven inconsistently."""


class CatalogError(ReproError):
    """An unknown benchmark circuit name was requested from the catalog."""
