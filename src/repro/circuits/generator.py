"""Seeded generator of ISCAS-like synchronous sequential circuits.

The ISCAS-89 netlists other than ``s27`` are not redistributable inside
this repository, so the benchmark suite substitutes synthetic circuits with
matched interface and size profiles (same number of PIs, POs, flip-flops
and gates as the corresponding ISCAS-89 circuit).  The generator is fully
deterministic given a seed.

Design choices that matter for the reproduction:

* **Acyclic by construction** — gate ``k`` only reads signals created
  before it, so combinational cycles are impossible; sequential feedback
  arises through the flip-flops.
* **Initializable by construction** — each flip-flop's D input is a
  dedicated 2-input gate with one *direct primary input* operand whose
  controlling value forces the gate output to a binary value.  Random input
  sequences therefore flush the unknown initial state quickly, which the
  paper's detection semantics (both machines start all-X) require for
  meaningful fault coverage.
* **No dead logic** — a fix-up pass wires every otherwise-unloaded gate
  into a later gate (or exposes it as a PO), so every fault site is at
  least structurally connected to an observation point, as in the real
  ISCAS netlists.
* **ISCAS-like composition** — fan-in is mostly 2 with some 3/4, the type
  mix is NAND/NOR-heavy with inverters and a few XORs, and fan-out follows
  the heavy-tailed pattern of real netlists (a few high-fan-out stems).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.circuit.types import GateType
from repro.util.rng import SplitMix64

#: (gate type, weight) for the bulk of the combinational logic.
_TYPE_WEIGHTS = [
    (GateType.NAND, 24),
    (GateType.NOR, 18),
    (GateType.AND, 16),
    (GateType.OR, 14),
    (GateType.NOT, 18),
    (GateType.BUF, 4),
    (GateType.XOR, 6),
]

#: (fan-in, weight) for multi-input gates.
_FANIN_WEIGHTS = [(2, 60), (3, 25), (4, 15)]

#: Gate types that accept extra inputs during the dead-logic fix-up.
_EXTENDABLE = {GateType.AND, GateType.NAND, GateType.OR, GateType.NOR}


@dataclass(frozen=True)
class SyntheticSpec:
    """Size profile of a synthetic circuit."""

    name: str
    num_inputs: int
    num_outputs: int
    num_flops: int
    num_gates: int
    seed: int

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ValueError("a circuit needs at least one primary input")
        if self.num_outputs < 1:
            raise ValueError("a circuit needs at least one primary output")
        if self.num_gates < self.num_flops + 1:
            raise ValueError(
                "num_gates must leave room for one driver gate per flop "
                f"(need > {self.num_flops}, got {self.num_gates})"
            )


def _weighted_choice(rng: SplitMix64, table: list[tuple[object, int]]) -> object:
    total = sum(weight for _, weight in table)
    pick = rng.randint(0, total - 1)
    for item, weight in table:
        pick -= weight
        if pick < 0:
            return item
    return table[-1][0]  # pragma: no cover - unreachable


def generate_circuit(spec: SyntheticSpec) -> Circuit:
    """Generate a validated synthetic circuit for ``spec``."""
    rng = SplitMix64(spec.seed)
    input_names = [f"I{i}" for i in range(spec.num_inputs)]
    flop_names = [f"Q{i}" for i in range(spec.num_flops)]
    d_names = [f"D{i}" for i in range(spec.num_flops)]

    # Gate records as mutable lists: (name, type, [operands]).
    records: list[tuple[str, GateType, list[str]]] = []
    pool: list[str] = list(input_names) + list(flop_names)
    gate_names: list[str] = []
    creation_index: dict[str, int] = {}

    def pick_operand(recent_bias: float) -> str:
        # A small direct-PI tap keeps even flop-heavy circuits controllable.
        if input_names and rng.random() < 0.15:
            return input_names[rng.randint(0, len(input_names) - 1)]
        if gate_names and rng.random() < recent_bias:
            window = max(1, len(gate_names) // 4)
            return gate_names[
                rng.randint(len(gate_names) - window, len(gate_names) - 1)
            ]
        return pool[rng.randint(0, len(pool) - 1)]

    body_gate_count = spec.num_gates - spec.num_flops
    for index in range(body_gate_count):
        name = f"N{index}"
        gate_type = _weighted_choice(rng, _TYPE_WEIGHTS)
        fanin = (
            1
            if gate_type in (GateType.NOT, GateType.BUF)
            else _weighted_choice(rng, _FANIN_WEIGHTS)
        )
        operands: list[str] = []
        for _ in range(fanin):
            operand = pick_operand(recent_bias=0.25)
            retries = 0
            while operand in operands and retries < 4:
                operand = pick_operand(recent_bias=0.1)
                retries += 1
            operands.append(operand)
        records.append((name, gate_type, operands))
        creation_index[name] = index
        gate_names.append(name)
        pool.append(name)

    # Flop D drivers.  Flops are organized into shift-register chains with
    # XOR-rich stage logic (nonlinear feedback shift registers): chain
    # heads are driven from a primary input, so the state is controllable
    # and initializable, and XOR stages preserve information, so random
    # stimulus traverses a rich, reachable state space — the property that
    # makes the real ISCAS controllers random-testable.
    d_types = [GateType.NAND, GateType.NOR, GateType.AND, GateType.OR]
    chain_position = 0  # 0 = head of a chain
    chain_remaining = 0
    for index, d_name in enumerate(d_names):
        if chain_remaining == 0:
            chain_remaining = rng.randint(3, 8)
            chain_position = 0
        if chain_position == 0:
            # Chain head: PI-driven through a controlling-value gate, so
            # the PI alone can force the head binary and the X initial
            # state flushes down the chain.
            pi = input_names[index % len(input_names)]
            other = pick_operand(recent_bias=0.5)
            if other == pi and len(pool) > 1:
                other = pool[rng.randint(0, len(pool) - 1)]
            gate_type = d_types[rng.randint(0, len(d_types) - 1)]
            records.append((d_name, gate_type, [pi, other]))
        else:
            previous_q = flop_names[index - 1]
            other = pick_operand(recent_bias=0.3)
            if other == previous_q and len(pool) > 1:
                other = pool[rng.randint(0, len(pool) - 1)]
            if rng.random() < 0.65:
                records.append((d_name, GateType.XOR, [previous_q, other]))
            else:
                gate_type = d_types[rng.randint(0, len(d_types) - 1)]
                records.append((d_name, gate_type, [previous_q, other]))
        chain_position += 1
        chain_remaining -= 1
        creation_index[d_name] = body_gate_count + index

    # Primary outputs: late body gates, preferring currently-unloaded ones.
    loaded: set[str] = set()
    for _, _, operands in records:
        loaded.update(operands)
    unloaded_late = [g for g in reversed(gate_names) if g not in loaded]
    outputs: list[str] = []
    for name in unloaded_late:
        if len(outputs) == spec.num_outputs:
            break
        outputs.append(name)
    for name in reversed(gate_names):
        if len(outputs) == spec.num_outputs:
            break
        if name not in outputs:
            outputs.append(name)
    for name in flop_names + input_names:
        if len(outputs) == spec.num_outputs:
            break
        if name not in outputs:
            outputs.append(name)

    # Dead-logic fix-up: every body gate that is neither loaded nor a PO
    # gets wired as an extra input of a later extendable gate; if none
    # exists it becomes an additional PO.
    loaded = set(outputs)
    for _, _, operands in records:
        loaded.update(operands)
    by_name = {name: (name, t, ops) for name, t, ops in records}
    extendable_order = [
        name
        for name, gate_type, _ in records
        if gate_type in _EXTENDABLE
    ]
    for name in gate_names:
        if name in loaded:
            continue
        later = [
            candidate
            for candidate in extendable_order
            if creation_index[candidate] > creation_index[name]
            and len(by_name[candidate][2]) < 6
        ]
        if later:
            target = later[rng.randint(0, len(later) - 1)]
            by_name[target][2].append(name)
        else:
            outputs.append(name)
        loaded.add(name)

    builder = CircuitBuilder(spec.name)
    for pi in input_names:
        builder.add_input(pi)
    for q, d in zip(flop_names, d_names):
        builder.add_flop(q, d)
    for name, gate_type, operands in records:
        builder.add_gate(name, gate_type, operands)
    for po in outputs:
        builder.add_output(po)
    return builder.build()
