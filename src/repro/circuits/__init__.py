"""Benchmark circuits: the real ISCAS-89 ``s27`` plus a synthetic family.

The paper evaluates on twelve ISCAS-89 circuits.  Only ``s27`` (the
worked-example circuit, fully specified in the literature) ships verbatim;
the remaining netlists are not redistributable here, so the catalog
provides seeded *synthetic* circuits whose PI/PO/flop/gate counts match the
corresponding ISCAS-89 entries.  See DESIGN.md §3 for the substitution
argument.
"""

from repro.circuits.catalog import (
    PAPER_CIRCUITS,
    available_circuits,
    load_circuit,
    paper_t0_s27,
)
from repro.circuits.generator import SyntheticSpec, generate_circuit

__all__ = [
    "PAPER_CIRCUITS",
    "available_circuits",
    "load_circuit",
    "paper_t0_s27",
    "SyntheticSpec",
    "generate_circuit",
]
