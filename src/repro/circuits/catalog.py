"""Catalog of benchmark circuits used by the experiments.

``s27`` is the genuine ISCAS-89 netlist (it appears in full in the
literature, including the paper's own worked example).  Every other entry
is a synthetic stand-in generated with a pinned seed and a size profile
matched to the corresponding ISCAS-89 circuit; see DESIGN.md §3.
"""

from __future__ import annotations

from importlib import resources

from repro.circuit.bench_io import parse_bench
from repro.circuit.netlist import Circuit
from repro.circuits.generator import SyntheticSpec, generate_circuit
from repro.core.sequence import TestSequence
from repro.errors import CatalogError

#: Size profiles of the ISCAS-89 circuits evaluated in the paper
#: (inputs, outputs, flip-flops, gates).  Published interface counts.
_ISCAS_PROFILES: dict[str, tuple[int, int, int, int]] = {
    "s298": (3, 6, 14, 119),
    "s344": (9, 11, 15, 160),
    "s382": (3, 6, 21, 158),
    "s400": (3, 6, 21, 162),
    "s526": (3, 6, 21, 193),
    "s641": (35, 24, 19, 379),
    "s820": (18, 19, 5, 289),
    "s1196": (14, 14, 18, 529),
    "s1423": (17, 5, 74, 657),
    "s1488": (8, 19, 6, 653),
    "s5378": (35, 49, 179, 2779),
    "s35932": (35, 320, 1728, 16065),
}

#: Pinned generator seeds, one per synthetic circuit.  Chosen by a small
#: offline search (8 candidate seeds per profile, keeping the circuit with
#: the best 300-vector random-pattern fault coverage); the three largest
#: circuits use the first candidate seed directly.
_SEEDS: dict[str, int] = {
    "s298": 19992986,
    "s344": 19993445,
    "s382": 19993825,
    "s400": 19994001,
    "s526": 19995264,
    "s641": 19996417,
    "s820": 19998201,
    "s1196": 20001963,
    "s1488": 20004884,
    "s1423": 20004230,
    "s5378": 20043780,
    "s35932": 20349320,
}

#: The circuits of the paper's evaluation, in Table 3 order.
PAPER_CIRCUITS: tuple[str, ...] = (
    "s298",
    "s344",
    "s382",
    "s400",
    "s526",
    "s641",
    "s820",
    "s1196",
    "s1423",
    "s1488",
    "s5378",
    "s35932",
)


def available_circuits() -> list[str]:
    """Names accepted by :func:`load_circuit`."""
    return ["s27"] + [f"syn{name[1:]}" for name in PAPER_CIRCUITS]


def load_circuit(name: str) -> Circuit:
    """Load a benchmark circuit by name.

    ``"s27"`` loads the embedded real netlist.  ``"syn298"`` (etc.) loads
    the synthetic stand-in for the ISCAS-89 circuit of the same number.
    ``"s298"`` (etc.) is accepted as an alias for the synthetic stand-in so
    harness code can use the paper's names directly.
    """
    if name == "s27":
        text = (
            resources.files("repro.circuits")
            .joinpath("data/s27.bench")
            .read_text(encoding="utf-8")
        )
        return parse_bench(text, name="s27")
    key = name
    if key.startswith("syn"):
        key = "s" + key[3:]
    if key not in _ISCAS_PROFILES:
        raise CatalogError(
            f"unknown circuit {name!r}; available: {available_circuits()}"
        )
    inputs, outputs, flops, gates = _ISCAS_PROFILES[key]
    spec = SyntheticSpec(
        name=f"syn{key[1:]}",
        num_inputs=inputs,
        num_outputs=outputs,
        num_flops=flops,
        num_gates=gates,
        seed=_SEEDS[key],
    )
    return generate_circuit(spec)


def paper_t0_s27() -> TestSequence:
    """The 10-vector ``s27`` test sequence of the paper's Table 2.

    Vector bits are in PI order ``(G0, G1, G2, G3)``.
    """
    rows = [
        "0111",
        "1001",
        "0111",
        "1001",
        "0100",
        "1011",
        "1001",
        "0000",
        "0000",
        "1011",
    ]
    return TestSequence.from_strings(rows)
