"""The paper's published numbers (Tables 3, 4 and 5), for comparison.

Stored verbatim so every regenerated table can print ``paper`` columns
next to ``measured`` columns.  Absolute agreement is not expected — the
substrate circuits for everything except ``s27`` are synthetic stand-ins
and ``T0`` comes from our own ATPG — but the *shape* (ratios below 1,
max-length a small fraction of ``|T0|``, compaction dropping sequences)
must hold; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperTable3Row:
    circuit: str
    total_faults: int
    detected: int
    t0_length: int
    n: int
    num_sequences_before: int
    total_length_before: int
    max_length_before: int
    num_sequences_after: int
    total_length_after: int
    max_length_after: int


@dataclass(frozen=True)
class PaperTable4Row:
    circuit: str
    normalized_procedure1: float
    normalized_compaction: float


@dataclass(frozen=True)
class PaperTable5Row:
    circuit: str
    t0_length: int
    n: int
    num_sequences: int
    total_length: int
    total_ratio: float
    max_length: int
    max_ratio: float
    test_length: int


PAPER_TABLE3: dict[str, PaperTable3Row] = {
    row.circuit: row
    for row in [
        PaperTable3Row("s298", 308, 265, 117, 16, 7, 42, 17, 4, 27, 17),
        PaperTable3Row("s344", 342, 329, 57, 8, 7, 19, 6, 5, 14, 6),
        PaperTable3Row("s382", 399, 364, 516, 16, 9, 337, 94, 5, 272, 94),
        PaperTable3Row("s400", 421, 380, 611, 16, 6, 261, 100, 5, 259, 100),
        PaperTable3Row("s526", 555, 454, 1006, 16, 12, 717, 122, 9, 637, 122),
        PaperTable3Row("s641", 467, 404, 101, 16, 20, 42, 8, 13, 29, 8),
        PaperTable3Row("s820", 850, 814, 491, 4, 54, 534, 15, 45, 454, 15),
        PaperTable3Row("s1196", 1242, 1239, 238, 4, 110, 152, 2, 100, 137, 2),
        PaperTable3Row("s1423", 1515, 1414, 1024, 8, 24, 464, 82, 21, 422, 82),
        PaperTable3Row("s1488", 1486, 1444, 455, 8, 19, 254, 44, 15, 220, 44),
        PaperTable3Row("s5378", 4603, 3639, 646, 8, 43, 348, 29, 38, 326, 29),
        PaperTable3Row("s35932", 39094, 35100, 257, 8, 20, 406, 32, 6, 77, 32),
    ]
}

PAPER_TABLE4: dict[str, PaperTable4Row] = {
    row.circuit: row
    for row in [
        PaperTable4Row("s298", 30.62, 64.59),
        PaperTable4Row("s344", 10.99, 19.16),
        PaperTable4Row("s382", 308.27, 137.66),
        PaperTable4Row("s400", 224.93, 147.31),
        PaperTable4Row("s526", 328.57, 93.67),
        PaperTable4Row("s641", 43.76, 62.44),
        PaperTable4Row("s820", 83.03, 71.49),
        PaperTable4Row("s1196", 13.27, 47.14),
        PaperTable4Row("s1423", 103.10, 56.45),
        PaperTable4Row("s1488", 41.16, 77.17),
        PaperTable4Row("s5378", 9.46, 20.74),
        PaperTable4Row("s35932", 6.71, 16.08),
    ]
}

PAPER_TABLE5: dict[str, PaperTable5Row] = {
    row.circuit: row
    for row in [
        PaperTable5Row("s298", 117, 16, 4, 27, 0.23, 17, 0.15, 3456),
        PaperTable5Row("s344", 57, 8, 5, 14, 0.25, 6, 0.11, 896),
        PaperTable5Row("s382", 516, 16, 5, 272, 0.53, 94, 0.18, 34816),
        PaperTable5Row("s400", 611, 16, 5, 259, 0.42, 100, 0.16, 33152),
        PaperTable5Row("s526", 1006, 16, 9, 637, 0.63, 122, 0.12, 81536),
        PaperTable5Row("s641", 101, 16, 13, 29, 0.29, 8, 0.08, 3712),
        PaperTable5Row("s820", 491, 4, 45, 454, 0.92, 15, 0.03, 14528),
        PaperTable5Row("s1196", 238, 4, 100, 137, 0.58, 2, 0.01, 4384),
        PaperTable5Row("s1423", 1024, 8, 21, 422, 0.41, 82, 0.08, 27008),
        PaperTable5Row("s1488", 455, 8, 15, 220, 0.48, 44, 0.10, 14080),
        PaperTable5Row("s5378", 646, 8, 38, 326, 0.50, 29, 0.04, 20864),
        PaperTable5Row("s35932", 257, 8, 6, 77, 0.30, 32, 0.12, 4928),
    ]
}

#: Average ratios reported in the last row of the paper's Table 5.
PAPER_AVERAGE_TOTAL_RATIO = 0.46
PAPER_AVERAGE_MAX_RATIO = 0.10
