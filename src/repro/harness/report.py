"""EXPERIMENTS.md generation: paper-vs-measured for every table/figure.

``write_experiments_report`` runs (or reuses) a suite result and renders
the complete markdown report the repository ships as EXPERIMENTS.md.
Regenerate with::

    python -m repro report --suite quick
"""

from __future__ import annotations

from repro.harness.figures import render_figure1
from repro.harness.paper_data import (
    PAPER_AVERAGE_MAX_RATIO,
    PAPER_AVERAGE_TOTAL_RATIO,
)
from repro.harness.runner import SuiteResult
from repro.harness.tables import render_table3, render_table4, render_table5


def build_experiments_markdown(suite: SuiteResult) -> str:
    """Render the full EXPERIMENTS.md content for one suite run."""
    records = suite.records
    total_ratios = [r.best_run.result.total_ratio for r in records]
    max_ratios = [r.best_run.result.max_ratio for r in records]
    average_total = sum(total_ratios) / len(total_ratios) if total_ratios else 0.0
    average_max = sum(max_ratios) / len(max_ratios) if max_ratios else 0.0

    lines: list[str] = []
    lines.append("# EXPERIMENTS — paper vs measured")
    lines.append("")
    lines.append(
        "Reproduction of every table and figure in Pomeranz & Reddy, DAC 1999. "
        f"Suite: `{suite.suite_name}` (set `REPRO_SUITE` and re-run "
        "`python -m repro report` or the benchmarks to regenerate)."
    )
    lines.append("")
    lines.append("## Reading guide")
    lines.append("")
    lines.append(
        "- `s27` is the real ISCAS-89 netlist driven by the paper's own T0 "
        "(Table 2); every s27 number is expected to match the paper exactly "
        "and does (see `tests/test_paper_s27.py`)."
    )
    lines.append(
        "- `synNNN` circuits are synthetic stand-ins with ISCAS-matched "
        "size profiles, driven by our ATPG's T0 (DESIGN.md §3). For them the "
        "comparison is *shape*: ratios < 1, small max-length, compaction "
        "dropping sequences, coverage always preserved. Absolute fault "
        "counts and lengths differ by construction."
    )
    lines.append(
        "- Rows starting with `paper:` are the published values for the "
        "ISCAS circuit the synthetic stand-in mirrors."
    )
    lines.append("")

    lines.append("## Table 3 — selection results before/after compaction")
    lines.append("")
    lines.append("```")
    lines.append(render_table3(records))
    lines.append("```")
    lines.append("")
    lines.append(
        "Shape checks: static compaction never increases |S|, total length "
        "or max length; coverage of the T0-detected fault set is preserved "
        "on every row (asserted programmatically in `bench_table3.py`)."
    )
    lines.append("")

    lines.append("## Table 4 — normalized run times")
    lines.append("")
    lines.append("```")
    lines.append(render_table4(records))
    lines.append("```")
    lines.append("")
    lines.append(
        "Times are normalized by the time to fault-simulate T0, exactly as "
        "in the paper, which cancels the pure-Python constant factor. As in "
        "the paper, Procedure 1 costs one to three orders of magnitude more "
        "than a single T0 simulation; our values differ because our batched "
        "window search changes the constant (fewer, wider simulations)."
    )
    lines.append("")

    lines.append("## Table 5 — comparison with T0")
    lines.append("")
    lines.append("```")
    lines.append(render_table5(records))
    lines.append("```")
    lines.append("")
    lines.append(
        f"Measured averages: total ratio {average_total:.2f} (paper "
        f"{PAPER_AVERAGE_TOTAL_RATIO:.2f}), max ratio {average_max:.2f} "
        f"(paper {PAPER_AVERAGE_MAX_RATIO:.2f}). The headline claims hold: "
        "the scheme loads a fraction of T0 and stores a small fraction at "
        "any time, at identical fault coverage; applied at-speed length is "
        "8·n·(total loaded)."
    )
    lines.append("")

    lines.append("## Figure 1 — subsequences on the T0 timeline")
    lines.append("")
    for record in records:
        lines.append("```")
        lines.append(render_figure1(record.best_run))
        lines.append("```")
        lines.append("")

    lines.append("## Per-circuit notes")
    lines.append("")
    for record in records:
        result = record.best_run.result
        experiment = record.experiment
        source = (
            "paper Table 2 T0"
            if experiment.t0_source == "paper"
            else "ATPG-generated T0"
        )
        lines.append(
            f"- **{record.circuit_name}** ({source}, len {result.t0_length}): "
            f"{result.detected_by_t0}/{result.total_faults} faults detected by T0; "
            f"best n={result.repetitions}; |S| {result.num_sequences_before}"
            f"→{result.num_sequences_after}; total {result.total_length_before}"
            f"→{result.total_length_after}; max {result.max_length_after}; "
            f"coverage preserved: {result.coverage_preserved}."
        )
    lines.append("")
    return "\n".join(lines)


def write_experiments_report(suite: SuiteResult, path: str) -> None:
    """Write the report for ``suite`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(build_experiments_markdown(suite))
