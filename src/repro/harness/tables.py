"""Renderers for the paper's Tables 3, 4 and 5, paper vs measured.

Each function takes the experiment records of a suite run and returns the
table as a string in the same row/column layout as the paper, with the
published values interleaved (marked ``paper:``) where a paper row exists
for the circuit.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentRecord
from repro.harness.paper_data import (
    PAPER_AVERAGE_MAX_RATIO,
    PAPER_AVERAGE_TOTAL_RATIO,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
)
from repro.util.text import format_table


def render_table3(records: list[ExperimentRecord]) -> str:
    """Table 3: selection results before and after static compaction."""
    headers = [
        "circuit",
        "faults tot",
        "det",
        "len",
        "n",
        "|S|",
        "tot len",
        "max len",
        "|S| ac",
        "tot ac",
        "max ac",
    ]
    rows: list[list[object]] = []
    for record in records:
        run = record.best_run
        result = run.result
        rows.append(
            [
                record.circuit_name,
                result.total_faults,
                result.detected_by_t0,
                result.t0_length,
                result.repetitions,
                result.num_sequences_before,
                result.total_length_before,
                result.max_length_before,
                result.num_sequences_after,
                result.total_length_after,
                result.max_length_after,
            ]
        )
        paper = PAPER_TABLE3.get(record.paper_name)
        if paper is not None:
            rows.append(
                [
                    f"  paper:{paper.circuit}",
                    paper.total_faults,
                    paper.detected,
                    paper.t0_length,
                    paper.n,
                    paper.num_sequences_before,
                    paper.total_length_before,
                    paper.max_length_before,
                    paper.num_sequences_after,
                    paper.total_length_after,
                    paper.max_length_after,
                ]
            )
    return format_table(headers, rows, title="Table 3: experimental results")


def render_table4(records: list[ExperimentRecord]) -> str:
    """Table 4: normalized run times (divided by the T0 simulation time)."""
    headers = ["circuit", "Proc.1", "comp."]
    rows: list[list[object]] = []
    for record in records:
        result = record.best_run.result
        rows.append(
            [
                record.circuit_name,
                result.normalized_procedure1_time,
                result.normalized_compaction_time,
            ]
        )
        paper = PAPER_TABLE4.get(record.paper_name)
        if paper is not None:
            rows.append(
                [
                    f"  paper:{paper.circuit}",
                    paper.normalized_procedure1,
                    paper.normalized_compaction,
                ]
            )
    return format_table(headers, rows, title="Table 4: normalized run times")


def render_table5(records: list[ExperimentRecord]) -> str:
    """Table 5: comparison with T0 (ratios and applied test length)."""
    headers = [
        "circuit",
        "len",
        "n",
        "|S|",
        "tot len",
        "tot/len",
        "max len",
        "max/len",
        "test len",
    ]
    rows: list[list[object]] = []
    total_ratios: list[float] = []
    max_ratios: list[float] = []
    for record in records:
        result = record.best_run.result
        total_ratios.append(result.total_ratio)
        max_ratios.append(result.max_ratio)
        rows.append(
            [
                record.circuit_name,
                result.t0_length,
                result.repetitions,
                result.num_sequences_after,
                result.total_length_after,
                result.total_ratio,
                result.max_length_after,
                result.max_ratio,
                result.applied_test_length,
            ]
        )
        paper = PAPER_TABLE5.get(record.paper_name)
        if paper is not None:
            rows.append(
                [
                    f"  paper:{paper.circuit}",
                    paper.t0_length,
                    paper.n,
                    paper.num_sequences,
                    paper.total_length,
                    paper.total_ratio,
                    paper.max_length,
                    paper.max_ratio,
                    paper.test_length,
                ]
            )
    if total_ratios:
        rows.append(
            [
                "average",
                "",
                "",
                "",
                "",
                sum(total_ratios) / len(total_ratios),
                "",
                sum(max_ratios) / len(max_ratios),
                "",
            ]
        )
        rows.append(
            [
                "  paper:average",
                "",
                "",
                "",
                "",
                PAPER_AVERAGE_TOTAL_RATIO,
                "",
                PAPER_AVERAGE_MAX_RATIO,
                "",
            ]
        )
    return format_table(headers, rows, title="Table 5: comparison with T0")
