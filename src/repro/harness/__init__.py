"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness.suite import SuiteSpec, suite_circuits, resolve_suite
from repro.harness.experiment import (
    CircuitExperiment,
    ExperimentRecord,
    run_circuit_experiment,
)
from repro.harness.paper_data import PAPER_TABLE3, PAPER_TABLE4, PAPER_TABLE5
from repro.harness.tables import render_table3, render_table4, render_table5
from repro.harness.figures import figure1_intervals, render_figure1
from repro.harness.runner import run_suite

__all__ = [
    "SuiteSpec",
    "suite_circuits",
    "resolve_suite",
    "CircuitExperiment",
    "ExperimentRecord",
    "run_circuit_experiment",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "render_table3",
    "render_table4",
    "render_table5",
    "figure1_intervals",
    "render_figure1",
    "run_suite",
]
