"""Figure 1 regeneration: selected subsequences on the ``T0`` timeline.

The paper's Figure 1 is a conceptual diagram showing subsequences
``S1, S2, S3`` as intervals of ``T0``.  We regenerate it as *measured*
data: the ``[ustart, udet]`` window of every selected subsequence drawn
over the ``T0`` axis, which also visualizes the headline effect — the
selected windows cover well under all of ``T0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheme import SchemeRun


@dataclass(frozen=True)
class SubsequenceInterval:
    """One selected subsequence's position on the T0 axis."""

    index: int
    start: int
    end: int
    final_length: int  # after omission, <= window length

    @property
    def window_length(self) -> int:
        return self.end - self.start + 1


def figure1_intervals(run: SchemeRun) -> list[SubsequenceInterval]:
    """The measured intervals behind Figure 1 for one scheme run."""
    return [
        SubsequenceInterval(
            index=entry.index,
            start=entry.ustart,
            end=entry.udet,
            final_length=entry.length,
        )
        for entry in run.selection.sequences
    ]


def render_figure1(run: SchemeRun, axis_width: int = 72) -> str:
    """ASCII rendering of Figure 1 for one scheme run."""
    t0_length = run.result.t0_length
    if t0_length == 0:
        return "(empty T0)"
    scale = axis_width / t0_length
    lines = [
        f"Figure 1: subsequences of T0 (circuit {run.result.circuit_name}, "
        f"n={run.result.repetitions})",
        "T0  |" + "-" * axis_width + f"|  len={t0_length}",
    ]
    for interval in figure1_intervals(run):
        left = int(interval.start * scale)
        width = max(1, int(interval.window_length * scale))
        width = min(width, axis_width - left)
        bar = " " * left + "=" * width
        lines.append(
            f"S{interval.index:<3}|{bar.ljust(axis_width)}|  "
            f"[{interval.start},{interval.end}] kept {interval.final_length}"
        )
    covered = set()
    for interval in figure1_intervals(run):
        covered.update(range(interval.start, interval.end + 1))
    lines.append(
        f"window coverage of T0: {len(covered)}/{t0_length} time units "
        f"({len(covered) / t0_length:.0%})"
    )
    return "\n".join(lines)
