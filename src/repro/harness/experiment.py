"""Per-circuit experiment: T0 generation, the n-sweep, best-n selection.

Mirrors Section 4 of the paper: four runs with ``n in {2, 4, 8, 16}``,
reporting the run with the best ``n`` — "the one that results in the
smallest maximum sequence length of any sequence in S, and the smallest
total length of all the sequences in S, at the lowest run time (in this
order)".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.atpg.engine import AtpgResult, generate_t0
from repro.circuits.catalog import load_circuit, paper_t0_s27
from repro.core.config import SelectionConfig
from repro.core.ops import ExpansionConfig
from repro.core.scheme import LoadAndExpandScheme, SchemeRun
from repro.core.sequence import TestSequence
from repro.core.session import Session, use_session
from repro.sim.backend import DEFAULT_BACKEND
from repro.faults.universe import FaultUniverse
from repro.harness.suite import SuiteSpec
from repro.sim.compiled import CompiledCircuit

#: Process-wide cache of generated T0s, keyed by (circuit, atpg config).
_T0_CACHE: dict[tuple, AtpgResult] = {}


@dataclass
class CircuitExperiment:
    """Prepared inputs of one circuit's experiment."""

    spec: SuiteSpec
    compiled: CompiledCircuit
    universe: FaultUniverse
    t0: TestSequence
    t0_source: str  # "paper" (s27) or "atpg"
    atpg_result: AtpgResult | None


@dataclass
class ExperimentRecord:
    """All n-sweep results for one circuit plus the best run."""

    experiment: CircuitExperiment
    runs: dict[int, SchemeRun] = field(default_factory=dict)

    @property
    def circuit_name(self) -> str:
        return self.experiment.compiled.circuit.name

    @property
    def paper_name(self) -> str:
        return self.experiment.spec.paper_name

    @property
    def best_n(self) -> int:
        """The paper's best-n rule over the sweep."""
        def key(n: int):
            result = self.runs[n].result
            return (
                result.max_length_after,
                result.total_length_after,
                result.procedure1_seconds,
            )

        return min(self.runs, key=key)

    @property
    def best_run(self) -> SchemeRun:
        return self.runs[self.best_n]


def prepare_experiment(
    spec: SuiteSpec,
    backend: str | None = None,
    workers: int | None = None,
    parallel: str | None = None,
    session: Session | None = None,
) -> CircuitExperiment:
    """Load the circuit and obtain its ``T0``."""
    circuit = load_circuit(spec.circuit)
    if session is not None:
        compiled = session.compile(circuit)
    else:
        compiled = CompiledCircuit(circuit)
    universe = FaultUniverse(circuit)
    if spec.circuit == "s27":
        return CircuitExperiment(
            spec=spec,
            compiled=compiled,
            universe=universe,
            t0=paper_t0_s27(),
            t0_source="paper",
            atpg_result=None,
        )
    overrides = {}
    if backend is not None:
        overrides["backend"] = backend
    if workers is not None:
        overrides["workers"] = workers
    if parallel is not None:
        overrides["parallel"] = parallel
    atpg_config = replace(spec.atpg, **overrides) if overrides else spec.atpg
    # workers/parallel only change throughput, never the generated
    # sequence, so normalize them out of the cache key: a workers=4
    # sweep after a workers=1 sweep reuses the identical T0.
    cache_key = (spec.circuit, replace(atpg_config, workers=1, parallel="auto"))
    if cache_key not in _T0_CACHE:
        _T0_CACHE[cache_key] = generate_t0(
            compiled, atpg_config, universe=universe, session=session
        )
    atpg = _T0_CACHE[cache_key]
    return CircuitExperiment(
        spec=spec,
        compiled=compiled,
        universe=universe,
        t0=atpg.sequence,
        t0_source="atpg",
        atpg_result=atpg,
    )


def run_circuit_experiment(
    spec: SuiteSpec,
    n_values: tuple[int, ...] | None = None,
    selection_seed: int = 1999,
    backend: str | None = None,
    workers: int | None = None,
    parallel: str | None = None,
    session: Session | None = None,
) -> ExperimentRecord:
    """Run the full n-sweep for one suite entry."""
    with use_session(session) as sess:
        experiment = prepare_experiment(
            spec, backend=backend, workers=workers, parallel=parallel, session=sess
        )
        record = ExperimentRecord(experiment=experiment)
        scheme = LoadAndExpandScheme(experiment.compiled)
        for n in n_values or spec.n_values:
            config = SelectionConfig.for_backend(
                backend or DEFAULT_BACKEND,
                expansion=ExpansionConfig(repetitions=n),
                seed=selection_seed,
                workers=workers if workers is not None else 1,
                parallel=parallel or "auto",
            )
            record.runs[n] = scheme.run(experiment.t0, config, session=sess)
    return record
