"""Top-level suite runner used by the benchmarks and the CLI."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.session import Session, use_session
from repro.harness.experiment import ExperimentRecord, run_circuit_experiment
from repro.harness.suite import SuiteSpec, resolve_suite
from repro.harness.tables import render_table3, render_table4, render_table5


@dataclass
class SuiteResult:
    """All experiment records of one suite run."""

    suite_name: str
    records: list[ExperimentRecord] = field(default_factory=list)

    def tables(self) -> str:
        """All three tables, ready to print."""
        parts = [
            render_table3(self.records),
            "",
            render_table4(self.records),
            "",
            render_table5(self.records),
        ]
        return "\n".join(parts)


def run_suite(
    suite_name: str | None = None,
    n_values: tuple[int, ...] | None = None,
    progress=None,
    backend: str | None = None,
    workers: int | None = None,
    parallel: str | None = None,
    session: Session | None = None,
) -> SuiteResult:
    """Run every experiment in a suite.

    ``progress`` is an optional callable taking a status string; the CLI
    passes ``print``.  ``backend`` selects the simulation backend,
    ``workers`` the fault-simulation lane/process count and ``parallel``
    the distribution tier for every experiment (results are backend-,
    worker- and tier-independent).  All experiments run
    under one :class:`~repro.core.session.Session` (the caller's, or an
    ephemeral one), sharing compiled circuits and trace caches across
    the whole sweep.
    """
    specs: tuple[SuiteSpec, ...] = resolve_suite(suite_name)
    result = SuiteResult(suite_name=suite_name or "quick")
    with use_session(session) as sess:
        for spec in specs:
            if progress is not None:
                progress(f"[{spec.circuit}] generating T0 and running n-sweep ...")
            record = run_circuit_experiment(
                spec,
                n_values=n_values,
                backend=backend,
                workers=workers,
                parallel=parallel,
                session=sess,
            )
            result.records.append(record)
            if progress is not None:
                best = record.best_run.result
                progress(
                    f"[{spec.circuit}] done: n={best.repetitions} "
                    f"|S|={best.num_sequences_after} tot={best.total_length_after} "
                    f"max={best.max_length_after} (T0 len {best.t0_length})"
                )
    return result
