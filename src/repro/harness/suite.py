"""Benchmark suite definitions.

The paper evaluates twelve ISCAS-89 circuits.  A pure-Python fault
simulator cannot run the three largest at full scale in interactive time,
so the harness defines three nested suites; the active one is chosen by
the ``REPRO_SUITE`` environment variable (``quick`` default / ``standard``
/ ``full``).

``s27`` is included in every suite as the ground-truth circuit (real
netlist, the paper's own ``T0``), even though it is not a Table 3 row.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.atpg.config import AtpgConfig

#: Paper repetition sweep (Section 4).
PAPER_N_VALUES = (2, 4, 8, 16)


@dataclass(frozen=True)
class SuiteSpec:
    """One suite entry: a circuit plus its experiment parameters."""

    circuit: str  # catalog name: "s27" or "syn298" etc.
    paper_name: str  # paper row it maps to ("s298"...), or "" for s27
    n_values: tuple[int, ...] = PAPER_N_VALUES
    atpg: AtpgConfig = AtpgConfig()


def _entry(paper_name: str, max_length: int, genetic_targets: int = 24) -> SuiteSpec:
    return SuiteSpec(
        circuit=f"syn{paper_name[1:]}",
        paper_name=paper_name,
        atpg=AtpgConfig(max_length=max_length, genetic_targets=genetic_targets),
    )


QUICK_SUITE: tuple[SuiteSpec, ...] = (
    SuiteSpec(circuit="s27", paper_name="", atpg=AtpgConfig(max_length=100)),
    _entry("s298", 600),
    _entry("s344", 600),
    _entry("s382", 600),
    _entry("s400", 600),
)

STANDARD_SUITE: tuple[SuiteSpec, ...] = QUICK_SUITE + (
    _entry("s526", 800),
    _entry("s641", 800),
    _entry("s820", 800),
)

FULL_SUITE: tuple[SuiteSpec, ...] = STANDARD_SUITE + (
    _entry("s1196", 800, genetic_targets=12),
    _entry("s1488", 800, genetic_targets=12),
    _entry("s1423", 1000, genetic_targets=8),
    _entry("s5378", 1000, genetic_targets=4),
    _entry("s35932", 400, genetic_targets=0),
)

_SUITES = {
    "quick": QUICK_SUITE,
    "standard": STANDARD_SUITE,
    "full": FULL_SUITE,
}


def resolve_suite(name: str | None = None) -> tuple[SuiteSpec, ...]:
    """The suite for ``name`` (default: ``REPRO_SUITE`` env, else quick)."""
    if name is None:
        name = os.environ.get("REPRO_SUITE", "quick")
    try:
        return _SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown suite {name!r}; choose from {sorted(_SUITES)}"
        ) from None


def suite_circuits(name: str | None = None) -> list[str]:
    """Circuit catalog names in the resolved suite."""
    return [spec.circuit for spec in resolve_suite(name)]
