"""Ternary (0/1/X) logic values and their bit-parallel encoding."""

from repro.logic.values import ZERO, ONE, X, Ternary, ternary_not, ternary_and, ternary_or
from repro.logic.encoding import (
    ALL_ONES,
    pack_slots,
    unpack_slots,
    slot_mask,
)

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "Ternary",
    "ternary_not",
    "ternary_and",
    "ternary_or",
    "ALL_ONES",
    "pack_slots",
    "unpack_slots",
    "slot_mask",
]
