"""Bit-parallel two-word encoding of ternary values.

A *slot* is one independent simulated machine (one fault in parallel-fault
mode, or one candidate input sequence in parallel-sequence mode).  A signal
carries, for a batch of ``width`` slots, two Python integers used as bit
masks:

* ``H`` — bit ``i`` set iff the signal is 1 in slot ``i``;
* ``L`` — bit ``i`` set iff the signal is 0 in slot ``i``.

A slot where neither bit is set holds X.  Both bits set is an illegal state
that the simulators never produce (asserted in the reference cross-checks).

Gate evaluation in this encoding is branch-free::

    AND :  H = H_a & H_b          L = L_a | L_b
    OR  :  H = H_a | H_b          L = L_a & L_b
    NOT :  H = L_a                L = H_a

Python integers are arbitrary precision, so a batch may hold hundreds of
slots; wider batches amortize the interpreter overhead of the gate loop.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.logic.values import ONE, X, ZERO, Ternary

#: Sentinel meaning "mask with every slot bit set" for a given width.
ALL_ONES = -1  # documented sentinel; real masks are computed via full_mask()


def full_mask(width: int) -> int:
    """Return a mask with bits ``0 .. width-1`` all set."""
    if width <= 0:
        raise ValueError(f"batch width must be positive, got {width}")
    return (1 << width) - 1


def slot_mask(slot: int) -> int:
    """Return the single-bit mask for slot index ``slot``."""
    if slot < 0:
        raise ValueError(f"slot index must be non-negative, got {slot}")
    return 1 << slot


def pack_slots(values: Sequence[Ternary]) -> tuple[int, int]:
    """Pack per-slot ternary values into an ``(H, L)`` word pair."""
    high = 0
    low = 0
    for index, value in enumerate(values):
        if value is ONE:
            high |= 1 << index
        elif value is ZERO:
            low |= 1 << index
    return high, low


def unpack_slots(high: int, low: int, width: int) -> list[Ternary]:
    """Unpack an ``(H, L)`` word pair into ``width`` ternary values."""
    values = []
    for index in range(width):
        bit = 1 << index
        if high & bit:
            values.append(ONE)
        elif low & bit:
            values.append(ZERO)
        else:
            values.append(X)
    return values


def broadcast(value: Ternary, width: int) -> tuple[int, int]:
    """Return the ``(H, L)`` pair holding ``value`` in every slot."""
    mask = full_mask(width)
    if value is ONE:
        return mask, 0
    if value is ZERO:
        return 0, mask
    return 0, 0


def pack_bit_columns(bits: Iterable[int]) -> int:
    """Pack an iterable of 0/1 ints into a mask, bit ``i`` from element ``i``."""
    mask = 0
    for index, bit in enumerate(bits):
        if bit:
            mask |= 1 << index
    return mask
