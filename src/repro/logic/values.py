"""Scalar ternary logic.

Synchronous sequential circuits are simulated from the *all-unspecified*
(all-X) state, exactly as the paper defines detection: a fault is detected
by a (sub)sequence only if both the fault-free and the faulty machine start
in the unknown state and some primary output takes complementary *binary*
values in the two machines at some time unit.

The scalar representation here is the human-friendly one used at API
boundaries (test vectors, printed responses).  The simulators use the
two-word (H, L) bit-parallel encoding from :mod:`repro.logic.encoding`.
"""

from __future__ import annotations

from enum import IntEnum


class Ternary(IntEnum):
    """One logic value: 0, 1 or unknown (X)."""

    ZERO = 0
    ONE = 1
    X = 2

    def __str__(self) -> str:  # pragma: no cover - trivial
        return {Ternary.ZERO: "0", Ternary.ONE: "1", Ternary.X: "X"}[self]

    @classmethod
    def from_char(cls, char: str) -> "Ternary":
        """Parse a single character ``0``, ``1``, ``x`` or ``X``."""
        if char == "0":
            return cls.ZERO
        if char == "1":
            return cls.ONE
        if char in ("x", "X"):
            return cls.X
        raise ValueError(f"not a ternary character: {char!r}")


ZERO = Ternary.ZERO
ONE = Ternary.ONE
X = Ternary.X


def ternary_not(value: Ternary) -> Ternary:
    """Ternary NOT: X stays X."""
    if value is X:
        return X
    return ONE if value is ZERO else ZERO


def ternary_and(left: Ternary, right: Ternary) -> Ternary:
    """Ternary AND: 0 is controlling, X otherwise propagates."""
    if left is ZERO or right is ZERO:
        return ZERO
    if left is X or right is X:
        return X
    return ONE


def ternary_or(left: Ternary, right: Ternary) -> Ternary:
    """Ternary OR: 1 is controlling, X otherwise propagates."""
    if left is ONE or right is ONE:
        return ONE
    if left is X or right is X:
        return X
    return ZERO


def ternary_xor(left: Ternary, right: Ternary) -> Ternary:
    """Ternary XOR: any X input makes the output X."""
    if left is X or right is X:
        return X
    return ONE if left != right else ZERO
