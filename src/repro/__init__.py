"""repro — reproduction of Pomeranz & Reddy, DAC 1999.

"Built-In Test Sequence Generation for Synchronous Sequential Circuits
Based on Loading and Expansion of Test Subsequences."

Public API quick reference::

    from repro import (
        load_circuit, parse_bench, CircuitBuilder,      # circuits
        FaultUniverse,                                   # faults
        FaultSimulator, LogicSimulator,                  # simulation
        available_backends,                              # sim backends
        TestSequence, ExpansionConfig, expand,           # sequences
        SelectionConfig, LoadAndExpandScheme,            # the paper's scheme
    )

Every simulator accepts ``backend="python"`` (default, dependency-free)
or ``backend="numpy"`` (vectorized); results are bit-identical.  Both hot
axes additionally scale across processes with identical results:
``make_fault_simulator`` shards large fault universes and
``make_sequence_simulator`` shards Procedure 2's candidate scans, over
one persistent per-session worker pool — the ``workers=`` knob on
:class:`SelectionConfig` / ``AtpgConfig`` drives both.
"""

from repro.circuit import CircuitBuilder, Circuit, GateType, parse_bench, parse_bench_file
from repro.circuits import load_circuit, paper_t0_s27, available_circuits
from repro.core import (
    ExpansionConfig,
    LoadAndExpandScheme,
    SelectionConfig,
    TestSequence,
    complement,
    concat,
    expand,
    expanded_length,
    repeat,
    reverse,
    select_subsequences,
    shift_left,
    statically_compact,
)
from repro.errors import ReproError
from repro.faults import Fault, FaultSite, FaultUniverse, collapse_faults
from repro.sim import (
    ExplicitPlan,
    FaultSimulator,
    GoodTraceCache,
    LogicSimulator,
    OmissionPlan,
    ScanPlan,
    SequenceBatchSimulator,
    ShardedFaultSimulator,
    ShardedSequenceBatchSimulator,
    SimBackend,
    WindowRampPlan,
    available_backends,
    close_trace_caches,
    close_worker_pools,
    get_backend,
    get_trace_cache,
    make_fault_simulator,
    make_sequence_simulator,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "GateType",
    "parse_bench",
    "parse_bench_file",
    "load_circuit",
    "paper_t0_s27",
    "available_circuits",
    "TestSequence",
    "ExpansionConfig",
    "expand",
    "expanded_length",
    "repeat",
    "complement",
    "shift_left",
    "reverse",
    "concat",
    "SelectionConfig",
    "select_subsequences",
    "statically_compact",
    "LoadAndExpandScheme",
    "ReproError",
    "Fault",
    "FaultSite",
    "FaultUniverse",
    "collapse_faults",
    "FaultSimulator",
    "LogicSimulator",
    "SequenceBatchSimulator",
    "ShardedFaultSimulator",
    "ShardedSequenceBatchSimulator",
    "ScanPlan",
    "WindowRampPlan",
    "OmissionPlan",
    "ExplicitPlan",
    "GoodTraceCache",
    "get_trace_cache",
    "close_trace_caches",
    "make_fault_simulator",
    "make_sequence_simulator",
    "close_worker_pools",
    "SimBackend",
    "available_backends",
    "get_backend",
    "__version__",
]
